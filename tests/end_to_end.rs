//! Workspace-level integration tests: the whole stack from workload
//! generation through the Atropos runtime to cancellation and reporting,
//! exercised across crates exactly the way the benchmark harness uses it.

use atropos_scenarios::{all_cases, calibrate, run_with, ControllerKind, RunConfig};

fn rc() -> RunConfig {
    RunConfig::quick(7)
}

#[test]
fn every_case_baseline_is_healthy() {
    let config = rc();
    let results = atropos_scenarios::runner::parallel_map(all_cases(), |case| {
        let b = calibrate(&case, &config);
        (case.id, case.base_qps, b)
    });
    for (id, base_qps, b) in results {
        let tput = b.summary.throughput_qps();
        assert!(
            tput > base_qps * 0.95,
            "{id}: baseline throughput {tput:.0} below offered {base_qps}"
        );
        assert_eq!(b.summary.dropped, 0, "{id}: baseline dropped requests");
        assert!(b.slo_ns > b.summary.p99_ns, "{id}: SLO below baseline p99");
    }
}

#[test]
fn atropos_mitigates_every_case() {
    let config = rc();
    let results = atropos_scenarios::runner::parallel_map(all_cases(), |case| {
        let b = calibrate(&case, &config);
        let none = run_with(&case, ControllerKind::None, &config, &b);
        let atropos = run_with(&case, ControllerKind::Atropos, &config, &b);
        (case.id, none, atropos)
    });
    for (id, none, atropos) in results {
        // The uncontrolled run must actually be degraded — otherwise the
        // case reproduces nothing. c2, c9 and c15 accumulate their noisy
        // requests gradually (weighted arrivals of multi-second holders)
        // and only develop within the full-length runs; the full-config
        // fidelity tests in `crates/scenarios` cover them.
        let slow_building = id == "c2" || id == "c9" || id == "c15";
        assert!(
            slow_building || none.normalized.throughput < 0.97 || none.normalized.p99 > 3.0,
            "{id}: uncontrolled run not degraded (tput {:.2}, p99 {:.1})",
            none.normalized.throughput,
            none.normalized.p99
        );
        // Throughput within 8% of baseline and never materially worse
        // than uncontrolled.
        assert!(
            atropos.normalized.throughput > 0.9,
            "{id}: atropos kept only {:.2} of baseline throughput",
            atropos.normalized.throughput
        );
        assert!(
            atropos.normalized.throughput >= none.normalized.throughput - 0.05,
            "{id}: atropos ({:.2}) worse than uncontrolled ({:.2})",
            atropos.normalized.throughput,
            none.normalized.throughput
        );
        // Targeted cancellation, minimal drops (paper: <0.01%; we allow
        // an order of safety margin for the compressed timeline).
        assert!(
            atropos.normalized.drop_rate < 0.005,
            "{id}: drop rate {:.4}",
            atropos.normalized.drop_rate
        );
        // Tail latency no worse than the uncontrolled run.
        assert!(
            atropos.normalized.p99 <= none.normalized.p99 * 1.5 + 2.0,
            "{id}: atropos p99 {:.1} vs uncontrolled {:.1}",
            atropos.normalized.p99,
            none.normalized.p99
        );
    }
}

#[test]
fn atropos_beats_every_comparison_system_on_average() {
    // A coarse version of Figure 9's headline: averaged over a sample of
    // cases, Atropos' normalized throughput exceeds each alternative's.
    let config = rc();
    let picks = ["c1", "c5", "c9", "c12", "c16"];
    let cases: Vec<_> = all_cases()
        .into_iter()
        .filter(|c| picks.contains(&c.id))
        .collect();
    let kinds = ControllerKind::comparison_set();
    let results = atropos_scenarios::runner::parallel_map(cases, |case| {
        let b = calibrate(&case, &config);
        kinds
            .iter()
            .map(|&k| run_with(&case, k, &config, &b).normalized.throughput)
            .collect::<Vec<_>>()
    });
    let n = results.len() as f64;
    let mut avgs = vec![0.0f64; kinds.len()];
    for r in &results {
        for (i, v) in r.iter().enumerate() {
            avgs[i] += v / n;
        }
    }
    let atropos = avgs[0];
    for (i, k) in kinds.iter().enumerate().skip(1) {
        assert!(
            atropos > avgs[i],
            "Atropos avg {:.2} not above {} avg {:.2}",
            atropos,
            k.label(),
            avgs[i]
        );
    }
    assert!(atropos > 0.9, "Atropos average {atropos:.2}");
}

#[test]
fn policy_ablation_multi_objective_never_loses_badly() {
    let config = rc();
    let picks = ["c1", "c11"];
    let cases: Vec<_> = all_cases()
        .into_iter()
        .filter(|c| picks.contains(&c.id))
        .collect();
    let results = atropos_scenarios::runner::parallel_map(cases, |case| {
        let b = calibrate(&case, &config);
        let multi = run_with(&case, ControllerKind::Atropos, &config, &b);
        let heur = run_with(&case, ControllerKind::AtroposHeuristic, &config, &b);
        (case.id, multi, heur)
    });
    for (id, multi, heur) in results {
        assert!(
            multi.normalized.throughput >= heur.normalized.throughput - 0.05,
            "{id}: multi-objective {:.2} vs heuristic {:.2}",
            multi.normalized.throughput,
            heur.normalized.throughput
        );
    }
}

#[test]
fn metrics_snapshot_is_internally_consistent_across_cases() {
    // Every case run under the decision-trace observer must produce a
    // metrics snapshot whose counters satisfy the structural relations
    // the pipeline guarantees: at most one detection per tick, a blame
    // preceding every policy cancel, and a histogram that accounts for
    // exactly the completed cancellations. `consistency_errors` encodes
    // those relations; this asserts them end-to-end rather than on
    // synthetic events. With `E2E_METRICS_OUT=<dir>` set, each case's
    // snapshot is also written as JSON (the CI build artifact).
    let config = rc();
    let out_dir = std::env::var("E2E_METRICS_OUT").ok();
    let results = atropos_scenarios::runner::parallel_map(all_cases(), |case| {
        let b = calibrate(&case, &config);
        let run = atropos_scenarios::run_atropos_observed(&case, &config, &b);
        (case.id, run.metrics, run.episodes.len())
    });
    for (id, m, n_episodes) in results {
        let errs = m.consistency_errors();
        assert!(errs.is_empty(), "{id}: inconsistent metrics: {errs:?}");
        assert!(m.ticks > 0, "{id}: observer saw no ticks");
        assert!(m.detections <= m.ticks, "{id}: detections > ticks");
        assert!(m.blames <= m.detections, "{id}: blames > detections");
        assert!(
            m.cancels_issued_policy <= m.blames,
            "{id}: policy cancels {} > blames {}",
            m.cancels_issued_policy,
            m.blames
        );
        let hist: u64 = m.time_to_cancel_buckets.iter().sum();
        assert_eq!(
            hist, m.cancels_completed,
            "{id}: TTC histogram holds {hist} samples but {} cancels completed",
            m.cancels_completed
        );
        if m.cancels_issued_policy + m.cancels_issued_operator > 0 {
            assert!(n_episodes > 0, "{id}: cancels issued but no episodes");
        }
        // The exporters must render every relation-bearing counter.
        let text = m.prometheus_text();
        for metric in [
            "atropos_ticks",
            "atropos_detections",
            "atropos_cancels_issued",
        ] {
            assert!(text.contains(metric), "{id}: {metric} missing:\n{text}");
        }
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create E2E_METRICS_OUT dir");
            let path = std::path::Path::new(dir).join(format!("{id}_metrics.json"));
            std::fs::write(&path, m.to_json()).expect("write metrics snapshot");
        }
    }
}

#[test]
fn runs_are_deterministic_for_equal_seeds() {
    let case = all_cases().into_iter().next().expect("c1");
    let config = rc();
    let b1 = calibrate(&case, &config);
    let b2 = calibrate(&case, &config);
    assert_eq!(b1.summary.completed, b2.summary.completed);
    assert_eq!(b1.summary.p99_ns, b2.summary.p99_ns);
    let r1 = run_with(&case, ControllerKind::Atropos, &config, &b1);
    let r2 = run_with(&case, ControllerKind::Atropos, &config, &b2);
    assert_eq!(r1.summary.completed, r2.summary.completed);
    assert_eq!(r1.summary.canceled, r2.summary.canceled);
    assert_eq!(r1.summary.p99_ns, r2.summary.p99_ns);
}

#[test]
fn different_seeds_still_mitigate() {
    let case = all_cases().into_iter().next().expect("c1");
    for seed in [1u64, 99, 2026] {
        let config = RunConfig::quick(seed);
        let b = calibrate(&case, &config);
        let r = run_with(&case, ControllerKind::Atropos, &config, &b);
        assert!(
            r.normalized.throughput > 0.9,
            "seed {seed}: kept only {:.2}",
            r.normalized.throughput
        );
    }
}
