//! Minimal offline replacement for the `serde` API surface this workspace
//! uses.
//!
//! The build environment has no registry access, so instead of the real
//! serde's visitor-based zero-copy machinery, this shim defines a single
//! JSON-shaped [`Value`] tree and two one-method traits:
//! [`Serialize::to_value`] and [`Deserialize::from_value`]. The companion
//! `serde_derive` shim generates impls of these traits for plain structs
//! and unit-variant enums (the only shapes in this workspace), and the
//! `serde_json` shim renders/parses `Value` as JSON text.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree, shared by `serde` and `serde_json`.
///
/// Object keys keep insertion order (a `Vec` of pairs, not a map) so the
/// rendered JSON is stable and human-diffable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An insertion-ordered key/value map.
    Object(Vec<(String, Value)>),
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer (covers `u128`).
    U(u128),
    /// Negative integer.
    I(i128),
    /// Floating point.
    F(f64),
}

/// Error produced by [`Deserialize::from_value`] (and JSON parsing).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u128))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::U(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Number(Number::I(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i128;
                if n >= 0 {
                    Value::Number(Number::U(n as u128))
                } else {
                    Value::Number(Number::I(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::U(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Number(Number::I(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::F(n)) => Ok(*n as $t),
                    Value::Number(Number::U(n)) => Ok(*n as $t),
                    Value::Number(Number::I(n)) => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

/// `&'static str` deserializes by leaking the owned string. This exists
/// only so `#[derive(Deserialize)]` compiles on static-table row types
/// (e.g. the survey's `AppEntry`); those tables are tiny and deserialized
/// at most once per process, so the leak is bounded and intentional.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Result<Vec<T>, Error> = items.iter().map(T::from_value).collect();
                parsed.map(|vec| vec.try_into().expect("length checked against N above"))
            }
            other => Err(Error::msg(format!("expected array of {N}, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expect = [$(stringify!($idx)),+].len();
                        if items.len() != expect {
                            return Err(Error::msg(format!(
                                "expected {expect}-tuple, got array of {}", items.len())));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Looks up a field in an object value (used by derived `Deserialize`).
pub fn __get_field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, Error> {
    match v {
        Value::Object(pairs) => pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, val)| val)
            .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
        other => Err(Error::msg(format!("expected object, got {other:?}"))),
    }
}

/// Indexes into an array value (used by derived `Deserialize` for tuple
/// structs).
pub fn __get_index(v: &Value, idx: usize) -> Result<&Value, Error> {
    match v {
        Value::Array(items) => items
            .get(idx)
            .ok_or_else(|| Error::msg(format!("missing tuple element {idx}"))),
        other => Err(Error::msg(format!("expected array, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        let v: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&v.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_value(&Some(7u64).to_value()).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn u128_roundtrip() {
        let big = u128::MAX - 5;
        assert_eq!(u128::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn collections_roundtrip() {
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()).unwrap(), xs);
        let t = (1u64, "a".to_string(), true);
        assert_eq!(<(u64, String, bool)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert!(matches!(__get_field(&v, "a"), Ok(Value::Bool(true))));
        assert!(__get_field(&v, "b").is_err());
    }
}
