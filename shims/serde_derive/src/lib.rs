//! Offline `#[derive(Serialize, Deserialize)]` for the shimmed `serde`.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not
//! available offline, so this macro parses the item's token stream by
//! hand. It supports exactly the shapes present in this workspace:
//!
//! - structs with named fields,
//! - tuple structs (newtype structs serialize transparently, wider
//!   tuples as arrays, matching upstream serde_json's encoding),
//! - unit structs,
//! - enums whose variants are all unit variants (encoded as the variant
//!   name string).
//!
//! Generics, data-carrying enum variants, and `#[serde(...)]` attributes
//! are rejected with a compile-time panic so unsupported shapes fail
//! loudly instead of silently misencoding.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named { name: String, fields: Vec<String> },
    Tuple { name: String, arity: usize },
    Unit { name: String },
    Enum { name: String, variants: Vec<String> },
}

/// Derives `serde::Serialize` (shim version: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Named { fields, .. } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::Tuple { arity: 1, .. } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple { arity, .. } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::Unit { .. } => "::serde::Value::Null".to_string(),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::String(\
                         ::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let name = shape_name(&shape);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` (shim version: `fn from_value(&Value)`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Named { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::__get_field(v, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple { name, arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| {
                    format!("::serde::Deserialize::from_value(::serde::__get_index(v, {i})?)?")
                })
                .collect();
            format!("::std::result::Result::Ok({name}({}))", items.join(", "))
        }
        Shape::Unit { name } => format!("::std::result::Result::Ok({name})"),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {},\n\
                         other => ::std::result::Result::Err(::serde::Error::msg(\
                             ::std::format!(\"unknown variant `{{}}` for {name}\", other))),\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"expected string for {name}, got {{:?}}\", other))),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    let name = shape_name(&shape);
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl failed to parse")
}

fn shape_name(shape: &Shape) -> &str {
    match shape {
        Shape::Named { name, .. }
        | Shape::Tuple { name, .. }
        | Shape::Unit { name }
        | Shape::Enum { name, .. } => name,
    }
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Named {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Tuple {
                name,
                arity: count_tuple_fields(g.stream()),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit { name },
            other => panic!("serde_derive shim: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                variants: parse_unit_variants(g.stream(), &name),
                name,
            },
            other => panic!("serde_derive shim: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

/// Advances past attributes (`#[...]`, including doc comments) and
/// visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from a named-struct body, skipping each field's
/// type (commas nested in angle brackets don't terminate a field).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after `{field}`, got {other}"),
        }
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

/// Counts fields in a tuple-struct body (top-level commas, angle-bracket
/// aware, tolerating a trailing comma).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

/// Extracts variant names from an enum body, requiring every variant to
/// be a unit variant.
fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name in {enum_name}, got {other}"),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive shim: enum {enum_name} has data-carrying variant \
                 `{variant}`; only unit variants are supported"
            ),
            Some(other) => {
                panic!("serde_derive shim: unexpected token after {enum_name}::{variant}: {other}")
            }
        }
        variants.push(variant);
    }
    variants
}
