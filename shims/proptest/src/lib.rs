//! Minimal offline replacement for the `proptest` API surface this
//! workspace uses.
//!
//! Differences from upstream proptest, deliberately accepted:
//!
//! - no shrinking: a failing case panics with the sampled inputs'
//!   assertion message but is not minimized;
//! - sampling is driven by a per-test deterministic RNG (seeded from the
//!   test's name), so failures reproduce exactly across runs and
//!   machines — there is no persistence file;
//! - a fixed case count ([`CASES`]) instead of a runtime config.
//!
//! The surface — `Strategy`/`prop_map`/`boxed`, ranges, tuples, `Just`,
//! `any`, `prop::collection::vec`, `prop_oneof!`, `proptest!`,
//! `prop_assert!`/`prop_assert_eq!` — matches what the workspace's
//! property tests import.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of sampled cases per property.
pub const CASES: usize = 64;

/// Deterministic RNG driving the sampling of every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds a generator from a test's name so each property gets a
    /// distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, folded into a fixed offset basis.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            inner: StdRng::seed_from_u64(h),
        }
    }

    fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy (result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

/// Strategy over the full value space of `T` (see [`Arbitrary`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy combinators addressed as `prop::...` by convention.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with length drawn from a range.
        pub struct VecStrategy<S> {
            elem: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = if self.len.start + 1 >= self.len.end {
                    self.len.start
                } else {
                    rng.inner.gen_range(self.len.clone())
                };
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// Length specifications accepted by [`vec`]: an exact `usize`
        /// or a `Range<usize>`.
        pub trait IntoSizeRange {
            /// Converts to a half-open length range.
            fn into_size_range(self) -> std::ops::Range<usize>;
        }

        impl IntoSizeRange for usize {
            fn into_size_range(self) -> std::ops::Range<usize> {
                self..self + 1
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn into_size_range(self) -> std::ops::Range<usize> {
                self
            }
        }

        impl IntoSizeRange for std::ops::RangeInclusive<usize> {
            fn into_size_range(self) -> std::ops::Range<usize> {
                *self.start()..self.end() + 1
            }
        }

        /// Builds a vector strategy: elements from `elem`, length drawn
        /// uniformly from `len`.
        pub fn vec<S: Strategy>(elem: S, len: impl IntoSizeRange) -> VecStrategy<S> {
            VecStrategy {
                elem,
                len: len.into_size_range(),
            }
        }
    }
}

/// Support types for the [`prop_oneof!`] macro.
pub mod strategy {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// Uniform choice among boxed strategies of one value type.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion (panics on failure; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { ::std::assert!($($args)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { ::std::assert_eq!($($args)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { ... }`
/// becomes a `#[test]` that samples [`CASES`] inputs deterministically.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::CASES {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Glob-import surface matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, f in 0.0f64..1.0, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn vec_and_oneof_compose(
            mut xs in prop::collection::vec(prop_oneof![1u64..5, Just(9u64),], 0..20),
        ) {
            xs.sort_unstable();
            for x in xs {
                prop_assert!((1..5).contains(&x) || x == 9, "got {x}");
            }
        }

        #[test]
        fn map_applies(v in (0u64..4, 0u64..4).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(v < 34);
            prop_assert_eq!(v, v);
        }
    }
}
