#![allow(clippy::vec_init_then_push)] // the json! muncher pushes into a fresh Vec by construction

//! Minimal offline replacement for the `serde_json` API surface this
//! workspace uses: `Value`, `json!`, `to_value`, `to_string`,
//! `to_string_pretty`, `from_str`, and an `Error` convertible to
//! `std::io::Error`.
//!
//! The value tree itself lives in the `serde` shim so derived impls and
//! JSON rendering share one representation.

pub use serde::{Number, Value};

/// Error from JSON parsing or value conversion.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Lets `serde_json` results propagate through `std::io::Result` with
/// `?`, as the upstream crate allows.
impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Converts any serializable value into a [`Value`] tree.
///
/// Infallible in this shim (the upstream failure modes — non-string map
/// keys, unserializable floats — cannot be expressed through the shimmed
/// data model).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to a pretty JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, level, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, level + 1);
        }),
        Value::Object(pairs) => write_seq(out, indent, level, pairs.len(), '{', '}', |out, i| {
            write_string(out, &pairs[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &pairs[i].1, indent, level + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) => {
            if f.is_finite() {
                // `{}` on f64 round-trips (shortest representation) and
                // renders integral floats without an exponent.
                out.push_str(&f.to_string());
            } else {
                // Upstream serde_json also degrades non-finite to null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let n = 0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(n).ok_or_else(|| Error::new("bad surrogate"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(u) = rest.parse::<u128>() {
                    if u == 0 {
                        return Ok(Value::Number(Number::U(0)));
                    }
                    if let Ok(i) = text.parse::<i128>() {
                        return Ok(Value::Number(Number::I(i)));
                    }
                }
            } else if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::Number(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

/// Builds a [`Value`] from JSON-like syntax, converting interpolated
/// expressions through [`serde::Serialize`].
#[macro_export]
macro_rules! json {
    // Internal object muncher: `@object <vec ident> <remaining tts>`.
    (@object $obj:ident) => {};
    (@object $obj:ident , $($rest:tt)*) => {
        $crate::json!(@object $obj $($rest)*)
    };
    (@object $obj:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $($crate::json!(@object $obj $($rest)*);)?
    };
    (@object $obj:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $($crate::json!(@object $obj $($rest)*);)?
    };
    (@object $obj:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $($crate::json!(@object $obj $($rest)*);)?
    };
    (@object $obj:ident $key:literal : $value:expr , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::to_value(&$value)));
        $crate::json!(@object $obj $($rest)*);
    };
    (@object $obj:ident $key:literal : $value:expr) => {
        $obj.push(($key.to_string(), $crate::to_value(&$value)));
    };
    // Internal array muncher: `@array <vec ident> <remaining tts>`.
    (@array $vec:ident) => {};
    (@array $vec:ident , $($rest:tt)*) => {
        $crate::json!(@array $vec $($rest)*)
    };
    (@array $vec:ident null $(, $($rest:tt)*)?) => {
        $vec.push($crate::Value::Null);
        $($crate::json!(@array $vec $($rest)*);)?
    };
    (@array $vec:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!({ $($inner)* }));
        $($crate::json!(@array $vec $($rest)*);)?
    };
    (@array $vec:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!([ $($inner)* ]));
        $($crate::json!(@array $vec $($rest)*);)?
    };
    (@array $vec:ident $value:expr , $($rest:tt)*) => {
        $vec.push($crate::to_value(&$value));
        $crate::json!(@array $vec $($rest)*);
    };
    (@array $vec:ident $value:expr) => {
        $vec.push($crate::to_value(&$value));
    };
    // Public entry points.
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut vec: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json!(@array vec $($tt)*);
        $crate::Value::Array(vec)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut obj: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json!(@object obj $($tt)*);
        $crate::Value::Object(obj)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_rendering() {
        let v = json!({"k": 1, "s": "a\"b", "xs": [1, 2.5, null, true]});
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"k":1,"s":"a\"b","xs":[1,2.5,null,true]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"k\": 1"), "pretty was: {pretty}");
    }

    #[test]
    fn parse_roundtrip() {
        let v = json!({
            "nested": {"a": [1, -2, 3.5]},
            "text": "line\nbreak",
            "flag": false,
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v: Value = from_str(r#""aA😀\t""#).unwrap();
        assert_eq!(v, Value::String("aA\u{1F600}\t".to_string()));
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<u128>(&u128::MAX.to_string()).unwrap(), u128::MAX);
    }

    #[test]
    fn json_macro_interpolates_expressions() {
        let rows: Vec<Value> = (0..2).map(|i| json!({"i": i})).collect();
        let label = String::from("run");
        let v = json!({"rows": rows, "label": label, "rate": 0.5_f64, "n": 3_u64});
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"rows":[{"i":0},{"i":1}],"label":"run","rate":0.5,"n":3}"#
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn error_converts_to_io_error() {
        fn inner() -> std::io::Result<String> {
            Ok(to_string_pretty(&json!({"k": 1}))?)
        }
        assert!(inner().unwrap().contains("\"k\": 1"));
    }
}
