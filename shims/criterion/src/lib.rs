//! Minimal offline replacement for the `criterion` API surface this
//! workspace uses.
//!
//! It keeps criterion's structure — groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `criterion_group!`/
//! `criterion_main!` — but swaps the statistics engine for a simple
//! time-bounded sampler. Every benchmark prints two lines:
//!
//! - a human-readable `group/name  time: ... ns/iter`,
//! - a machine-readable `BENCHRESULT {"id":"group/name", ...}` consumed
//!   by `scripts/bench_snapshot.sh`.
//!
//! Each benchmark is bounded to a fraction of a second so the full suite
//! stays fast on small CI machines.

use std::time::{Duration, Instant};

/// Filter/option handling for the benchmark binary's CLI arguments.
///
/// `cargo bench -- <substring>` runs only benchmarks whose `group/name`
/// id contains the substring; criterion-style flags (`--bench`, `--quiet`
/// and friends) are ignored.
fn cli_filter() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

/// Top-level benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: cli_filter(),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }
}

/// Throughput annotation: lets reports derive elements/second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts to the flat string id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of related benchmarks sharing a name prefix and options.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of measurement samples (also scales this
    /// shim's per-benchmark time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.run(&full, &mut f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.run(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is
    /// per-benchmark in this shim).
    pub fn finish(self) {}

    fn run(&mut self, full_id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.criterion.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        // Budget scales mildly with sample_size: criterion's default 100
        // maps to ~240ms of measurement per benchmark.
        let measure_ns = (self.sample_size as u64).clamp(10, 200) * 2_400_000;
        let mut b = Bencher {
            budget: Duration::from_nanos(measure_ns),
            ns_per_iter: f64::NAN,
            iters: 0,
        };
        f(&mut b);
        let ns = b.ns_per_iter;
        println!("{full_id:<55} time: {:>12} /iter", format_ns(ns));
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!(",\"elements_per_sec\":{:.1}", n as f64 * 1e9 / ns)
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!(",\"bytes_per_sec\":{:.1}", n as f64 * 1e9 / ns)
            }
            _ => String::new(),
        };
        println!(
            "BENCHRESULT {{\"id\":\"{full_id}\",\"ns_per_iter\":{ns:.2},\"iters\":{}{throughput}}}",
            b.iters
        );
    }
}

fn format_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Measures `routine` with the same adaptive-batch loop
/// [`Bencher::iter`] uses and returns the mean ns/iter, for callers
/// (e.g. regression-guard tests) that need the figure programmatically
/// and comparable to `BENCHRESULT` output.
pub fn measure_ns_per_iter<O, R: FnMut() -> O>(budget: Duration, routine: R) -> f64 {
    let mut b = Bencher {
        budget,
        ns_per_iter: f64::NAN,
        iters: 0,
    };
    b.iter(routine);
    b.ns_per_iter
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` by running it in adaptively sized batches
    /// until the time budget is exhausted; records the mean ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes >= ~200µs, so
        // Instant overhead is amortized to noise.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let d = t.elapsed();
            if d >= Duration::from_micros(200) || batch >= (1 << 24) {
                break;
            }
            batch *= 4;
        }
        // Measure.
        let mut total_iters: u64 = 0;
        let mut best_ns_per_iter = f64::INFINITY;
        let start = Instant::now();
        let mut total_ns: u128 = 0;
        while start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let d = t.elapsed().as_nanos();
            total_ns += d;
            total_iters += batch;
            let per = d as f64 / batch as f64;
            if per < best_ns_per_iter {
                best_ns_per_iter = per;
            }
        }
        if total_iters == 0 {
            // Budget elapsed during calibration (very slow routine): fall
            // back to a single timed call.
            let t = Instant::now();
            std::hint::black_box(routine());
            total_ns = t.elapsed().as_nanos();
            total_iters = 1;
        }
        self.iters = total_iters;
        self.ns_per_iter = total_ns as f64 / total_iters as f64;
    }
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("t");
        g.sample_size(10);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("absent".to_string()),
        };
        let mut g = c.benchmark_group("t");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| ());
            ran = true;
        });
        g.finish();
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
    }
}
