//! Minimal drop-in replacement for the `parking_lot` API surface this
//! workspace uses, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors tiny shims for its external dependencies. This one provides
//! `Mutex`, `RwLock` and `Condvar` with parking_lot's panic-free,
//! non-poisoning guard API (`lock()` returns the guard directly; a
//! poisoned std lock is recovered rather than propagated, matching
//! parking_lot's semantics of not poisoning at all).

use std::sync::TryLockError;
use std::time::Duration;

/// A mutual exclusion primitive (non-poisoning `lock()` API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed; the borrow checker guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed (rather than a
    /// notification).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with this shim's [`Mutex`] (parking_lot's
/// `&mut MutexGuard` API, non-poisoning).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Runs `f` on the std guard taken out of `guard`, putting the guard
    /// `f` returns back in place. `std`'s condvar consumes and returns the
    /// guard while parking_lot mutates it in place; the `ptr::read`/`write`
    /// pair bridges the two. Safe because `f` (a condvar wait) only returns
    /// by yielding a live guard for the same mutex, and the poisoned-guard
    /// branch recovers rather than unwinding, so the moved-out slot is
    /// always rewritten before anyone can observe it.
    fn bridge<'a, T, R>(
        guard: &mut MutexGuard<'a, T>,
        f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> (std::sync::MutexGuard<'a, T>, R),
    ) -> R {
        unsafe {
            let std_guard = std::ptr::read(&guard.inner);
            let (new_guard, out) = f(std_guard);
            std::ptr::write(&mut guard.inner, new_guard);
            out
        }
    }

    /// Blocks until another thread calls [`Condvar::notify_one`] or
    /// [`Condvar::notify_all`]. Spurious wakeups are possible, as with any
    /// condition variable.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        Self::bridge(guard, |g| {
            let g = match self.inner.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            (g, ())
        });
    }

    /// Blocks until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        Self::bridge(guard, |g| match self.inner.wait_timeout(g, timeout) {
            Ok((g, t)) => (
                g,
                WaitTimeoutResult {
                    timed_out: t.timed_out(),
                },
            ),
            Err(p) => {
                let (g, t) = p.into_inner();
                (
                    g,
                    WaitTimeoutResult {
                        timed_out: t.timed_out(),
                    },
                )
            }
        })
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        assert!(t.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        drop(g);
        assert!(
            m.try_lock().is_some(),
            "guard must still be live after wait"
        );
    }

    #[test]
    fn condvar_notify_all_wakes_everyone() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pair = pair.clone();
            handles.push(std::thread::spawn(move || {
                let (m, cv) = &*pair;
                let mut n = m.lock();
                while *n == 0 {
                    cv.wait(&mut n);
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = 1;
            cv.notify_all();
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
