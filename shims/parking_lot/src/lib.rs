//! Minimal drop-in replacement for the `parking_lot` API surface this
//! workspace uses, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors tiny shims for its external dependencies. This one provides
//! `Mutex` and `RwLock` with parking_lot's panic-free, non-poisoning
//! guard API (`lock()` returns the guard directly; a poisoned std lock is
//! recovered rather than propagated, matching parking_lot's semantics of
//! not poisoning at all).

use std::sync::TryLockError;

/// A mutual exclusion primitive (non-poisoning `lock()` API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed; the borrow checker guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
