//! Minimal offline replacement for the `rand` 0.8 API surface used by this
//! workspace: `RngCore`, `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::
//! seed_from_u64` and `rngs::StdRng`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a fast,
//! high-quality, *seed-stable* generator. Streams differ from upstream
//! rand's ChaCha12-based `StdRng`, which is fine for this repository: all
//! determinism contracts are "equal seeds ⇒ equal streams *within this
//! build*", never cross-library bit-compatibility.

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Widening multiply: uniform enough for simulation work and
                // branch-free (bias < 2^-64 per draw).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + hi
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly (as rand's `Standard`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed; equal seeds yield equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
