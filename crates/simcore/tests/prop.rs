//! Property-based tests for the simulation kernel.

use atropos_sim::rng::Zipf;
use atropos_sim::{EventQueue, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// The event queue pops in (time, insertion) order regardless of the
    /// scheduling order.
    #[test]
    fn event_queue_is_totally_ordered(times in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut popped = 0;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "order violated");
            }
            last = Some((t, i));
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Canceling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_removes_exactly_the_canceled(
        times in prop::collection::vec(0u64..1_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_nanos(t), i)))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, tok) in &tokens {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                prop_assert!(q.cancel(*tok));
            } else {
                expect.push(*i);
            }
        }
        let mut got: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            got.push(i);
        }
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Equal seeds produce identical streams across every sampler.
    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.below(1 << 40), b.below(1 << 40));
            prop_assert_eq!(a.exp(3.0).to_bits(), b.exp(3.0).to_bits());
            prop_assert_eq!(a.lognormal(5.0, 0.5).to_bits(), b.lognormal(5.0, 0.5).to_bits());
        }
    }

    /// Zipf samples stay inside the support for any shape.
    #[test]
    fn zipf_in_support(n in 1usize..5_000, theta in 0.0f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, theta);
        let mut rng = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Exponential samples are non-negative and have the right order of
    /// magnitude for any positive mean.
    #[test]
    fn exp_positive(mean in 1e-3f64..1e9, seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let mut acc = 0.0;
        for _ in 0..256 {
            let x = rng.exp(mean);
            prop_assert!(x >= 0.0 && x.is_finite());
            acc += x;
        }
        let sample_mean = acc / 256.0;
        prop_assert!(sample_mean > mean * 0.5 && sample_mean < mean * 2.0,
            "mean {mean}, sample {sample_mean}");
    }

    /// SimTime subtraction saturates rather than wrapping.
    #[test]
    fn simtime_sub_saturates(a in any::<u64>(), b in any::<u64>()) {
        let d = SimTime::from_nanos(a) - SimTime::from_nanos(b);
        prop_assert_eq!(d.as_nanos(), a.saturating_sub(b));
    }
}
