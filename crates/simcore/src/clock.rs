//! Time sources.
//!
//! The Atropos runtime reads timestamps through the [`Clock`] trait so the
//! same framework code runs against virtual time in the simulator and
//! against the monotonic OS clock in a real process (the paper's C/C++
//! implementation uses `rdtsc`; [`SystemClock`] is the portable analog).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::time::SimTime;

/// A monotonic nanosecond time source.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds. Must be monotonic non-decreasing.
    fn now_ns(&self) -> u64;

    /// Current time as a [`SimTime`].
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns())
    }
}

/// A virtual clock advanced by the simulation engine.
///
/// Cloning shares the underlying time cell, so the simulator and every
/// component holding the clock observe the same instant.
///
/// # Examples
///
/// ```
/// use atropos_sim::{Clock, VirtualClock, SimTime};
///
/// let c = VirtualClock::new();
/// let c2 = c.clone();
/// c.advance_to(SimTime::from_millis(5));
/// assert_eq!(c2.now_ns(), 5_000_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock to `t`.
    ///
    /// Going backwards is a simulation bug; the clock saturates at its
    /// current value rather than rewinding (events at equal times are fine).
    pub fn advance_to(&self, t: SimTime) {
        self.now.fetch_max(t.as_nanos(), Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// The process-monotonic clock, for running Atropos in real programs.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemClock {
    /// Creates a clock whose zero is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_starts_at_zero() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn virtual_clock_is_shared_between_clones() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c.advance_to(SimTime::from_secs(1));
        assert_eq!(c2.now_ns(), 1_000_000_000);
    }

    #[test]
    fn virtual_clock_never_rewinds() {
        let c = VirtualClock::new();
        c.advance_to(SimTime::from_secs(2));
        c.advance_to(SimTime::from_secs(1));
        assert_eq!(c.now(), SimTime::from_secs(2));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn arc_clock_delegates() {
        let c: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        assert_eq!(c.now_ns(), 0);
    }

    /// One shared [`SystemClock`] read from many threads at once: every
    /// thread must observe a non-decreasing sequence, and readings must
    /// advance (the clock actually ticks under contention). This is the
    /// exact access pattern of the live harness, where workers, the load
    /// generator and the supervisor all stamp from one clock.
    #[test]
    fn system_clock_is_monotonic_under_concurrent_readers() {
        let clock = Arc::new(SystemClock::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let clock = clock.clone();
                std::thread::spawn(move || {
                    let mut prev = clock.now_ns();
                    let first = prev;
                    for _ in 0..50_000 {
                        let now = clock.now_ns();
                        assert!(now >= prev, "clock went backwards: {now} < {prev}");
                        prev = now;
                    }
                    (first, prev)
                })
            })
            .collect();
        for h in handles {
            let (first, last) = h.join().expect("reader panicked");
            assert!(last > first, "clock never advanced across 50k reads");
        }
    }

    /// `Arc<SystemClock>` and `Arc<dyn Clock>` both forward through the
    /// blanket impl, against the same origin as the inner clock.
    #[test]
    fn arc_forwarding_preserves_system_clock_readings() {
        let inner = Arc::new(SystemClock::new());
        let concrete: Arc<SystemClock> = inner.clone();
        let dynamic: Arc<dyn Clock> = inner.clone();
        let a = concrete.now_ns();
        let b = dynamic.now_ns();
        let c = inner.now_ns();
        // Same origin, read in order: forwarding adds no offset and keeps
        // monotonicity across the three views.
        assert!(b >= a);
        assert!(c >= b);
        assert_eq!(concrete.now().as_nanos() > 0, concrete.now_ns() > 0);
    }
}
