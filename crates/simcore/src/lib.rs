#![warn(missing_docs)]

//! Deterministic discrete-event simulation kernel.
//!
//! The paper evaluates Atropos inside six real applications on a cloud
//! testbed. This reproduction replaces that testbed with a discrete-event
//! simulator: all concurrency is virtual, runs are bit-for-bit reproducible
//! from a seed, and an offered-load sweep that would take hours of wall
//! clock finishes in seconds.
//!
//! The kernel is intentionally tiny:
//!
//! - [`time::SimTime`]: nanosecond-resolution virtual time,
//! - [`clock::Clock`]: the time source abstraction shared with the `atropos`
//!   framework crate (virtual in simulation, monotonic in real processes),
//! - [`rng::SimRng`]: a seeded RNG with the samplers workloads need
//!   (exponential inter-arrivals, zipf keys, lognormal service times),
//! - [`engine::EventQueue`]: a total-ordered future event list,
//! - [`fault::FaultSite`] / [`fault::TickJitter`]: seeded fault-decision
//!   hooks the chaos harness drives its deterministic fault injection
//!   with.
//!
//! Application behaviour (servers, locks, buffer pools) lives in the
//! `atropos-app` crate on top of this kernel.

pub mod clock;
pub mod engine;
pub mod fault;
pub mod rng;
pub mod time;

pub use clock::{Clock, SystemClock, VirtualClock};
pub use engine::EventQueue;
pub use fault::{FaultSite, TickJitter};
pub use rng::SimRng;
pub use time::SimTime;
