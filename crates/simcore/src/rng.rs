//! Seeded random number generation for workloads.
//!
//! Every experiment run is parameterized by a single `u64` seed. `SimRng`
//! wraps `rand::rngs::StdRng` (a seed-stable ChaCha-based generator) and
//! provides the samplers the workload generators need: exponential
//! inter-arrival gaps for open-loop Poisson traffic, lognormal service
//! times, and Zipf-distributed key popularity.

use rand::{Rng, RngCore, SeedableRng};

/// A deterministic RNG with workload-oriented samplers.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: rand::rngs::StdRng,
}

impl SimRng {
    /// Creates an RNG from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent RNG for a named sub-stream.
    ///
    /// Forking lets e.g. the arrival process and the service-time process
    /// consume randomness independently, so adding a draw to one does not
    /// perturb the other (critical when comparing controllers on the same
    /// seed).
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let s = self.inner.next_u64() ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
        SimRng::new(s)
    }

    /// Uniform `u64` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Exponential sample with the given mean (inter-arrival gap of a
    /// Poisson process with rate `1/mean`).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        // Inverse transform; guard the log against u == 0.
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Lognormal sample with the given *median* `m` and shape `sigma`.
    ///
    /// Service times in real systems are right-skewed; the paper's
    /// lightweight queries cluster tightly while heavy ones form the tail.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        assert!(median > 0.0, "median must be positive");
        median * (sigma * self.normal()).exp()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        lo + (hi - lo) * self.f64()
    }
}

/// Zipf distribution over `{0, .., n-1}` with exponent `theta`.
///
/// Precomputes the CDF once so sampling is a binary search; this is the key
/// popularity model for buffer-pool and cache workloads (a small hot set
/// plus a long cold tail, which is what makes LRU thrash under dump
/// queries).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(theta >= 0.0, "theta must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Draws one rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("NaN in CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_independent_of_later_draws() {
        let mut root1 = SimRng::new(7);
        let mut fork1 = root1.fork(1);
        let mut root2 = SimRng::new(7);
        let mut fork2 = root2.fork(1);
        // Consuming the root after forking must not affect the fork.
        let _ = root2.f64();
        for _ in 0..16 {
            assert_eq!(fork1.below(1 << 20), fork2.below(1 << 20));
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = SimRng::new(3);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn exp_is_nonnegative() {
        let mut rng = SimRng::new(4);
        for _ in 0..10_000 {
            assert!(rng.exp(0.001) >= 0.0);
        }
    }

    #[test]
    fn normal_mean_and_var() {
        let mut rng = SimRng::new(5);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = SimRng::new(6);
        let mut xs: Vec<f64> = (0..20_001).map(|_| rng.lognormal(10.0, 1.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 10.0).abs() < 0.5, "median {median}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
    }

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let z = Zipf::new(100, 0.99);
        let mut rng = SimRng::new(9);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99] * 10);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SimRng::new(10);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn zipf_samples_stay_in_support() {
        let z = Zipf::new(3, 2.0);
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn zipf_rejects_empty_support() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        let mut rng = SimRng::new(12);
        let _ = rng.below(0);
    }
}
