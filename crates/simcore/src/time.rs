//! Nanosecond-resolution virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is a thin newtype over `u64` with saturating subtraction so
/// interval arithmetic around time zero cannot underflow.
///
/// # Examples
///
/// ```
/// use atropos_sim::SimTime;
///
/// let t = SimTime::from_millis(2) + SimTime::from_micros(500);
/// assert_eq!(t.as_nanos(), 2_500_000);
/// assert_eq!(SimTime::ZERO - t, SimTime::ZERO); // saturating
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds a time from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "time must be finite and >= 0");
        SimTime((s * 1e9).round() as u64)
    }

    /// This time as nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition (useful with [`SimTime::MAX`] deadlines).
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturating: a difference that would underflow yields [`SimTime::ZERO`].
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.1}µs", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    fn arithmetic_and_saturation() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(b - a, SimTime::from_secs(2));
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(a), SimTime::MAX);
        let mut t = a;
        t += a;
        assert_eq!(t, SimTime::from_secs(2));
    }

    #[test]
    fn roundtrip_secs_f64() {
        let t = SimTime::from_secs_f64(1.2345);
        assert!((t.as_secs_f64() - 1.2345).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(2).to_string(), "2.0µs");
        assert_eq!(SimTime::from_millis(3).to_string(), "3.00ms");
        assert_eq!(SimTime::from_secs(4).to_string(), "4.000s");
    }

    #[test]
    fn ordering_is_by_nanos() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}
