//! Seeded fault-decision hooks for chaos testing.
//!
//! The chaos harness (`atropos-chaos`) perturbs the Atropos event
//! protocol — dropping frees, delaying ingest batches, failing cancel
//! initiators, skewing tick timing — and every perturbation must be a
//! pure function of the run seed so a failing fault plan replays
//! bit-for-bit. This module provides the two seeded primitives the
//! injector builds on:
//!
//! - [`FaultSite`]: one place faults can fire, with a firing probability
//!   and a budget (maximum number of firings), drawn against a
//!   [`SimRng`] sub-stream forked per site so adding a site never
//!   perturbs another site's decisions;
//! - [`TickJitter`]: a bounded, seeded skew applied to tick timing.
//!
//! Keeping these in the simulation kernel (rather than the chaos crate)
//! mirrors how the workload samplers live here: anything that consumes
//! randomness during a deterministic run must come from the kernel's
//! seed-stable streams.

use crate::rng::SimRng;

/// One fault-injection site: fires with `probability` per decision, at
/// most `budget` times over the run.
///
/// Each site forks its own RNG sub-stream, so decision sequences are
/// independent across sites and stable when sites are added or removed —
/// the property fault-plan shrinking relies on (removing one fault from a
/// plan must not re-randomize the remaining faults).
#[derive(Debug, Clone)]
pub struct FaultSite {
    rng: SimRng,
    probability: f64,
    budget: u64,
    fired: u64,
    decisions: u64,
}

impl FaultSite {
    /// Creates a site on its own sub-stream of `root`, identified by
    /// `stream` (use a distinct constant per fault kind).
    pub fn new(root: &mut SimRng, stream: u64, probability: f64, budget: u64) -> Self {
        Self {
            rng: root.fork(stream),
            probability,
            budget,
            fired: 0,
            decisions: 0,
        }
    }

    /// A site that never fires (the identity fault).
    pub fn disabled() -> Self {
        Self {
            rng: SimRng::new(0),
            probability: 0.0,
            budget: 0,
            fired: 0,
            decisions: 0,
        }
    }

    /// Decides whether the fault fires at this call site.
    ///
    /// Always consumes one RNG draw (even when the budget is exhausted),
    /// so the decision sequence for call `n` depends only on the seed and
    /// `n` — not on how many earlier calls fired.
    pub fn fires(&mut self) -> bool {
        self.decisions += 1;
        let hit = self.rng.chance(self.probability);
        if hit && self.fired < self.budget {
            self.fired += 1;
            return true;
        }
        false
    }

    /// Firings so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Decisions taken so far (firing or not).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }
}

/// Seeded bounded jitter for tick timing: each sample is a skew in
/// `[0, max_skew_ns]` added to the nominal tick period.
///
/// Skew is additive-only (ticks fire late, never early): a supervisor
/// that is descheduled ticks late, but no real supervisor ticks before
/// its timer — and under a virtual clock a negative skew would mean time
/// running backwards.
#[derive(Debug, Clone)]
pub struct TickJitter {
    rng: SimRng,
    max_skew_ns: u64,
    applied: u64,
}

impl TickJitter {
    /// Creates a jitter source on its own sub-stream of `root`.
    pub fn new(root: &mut SimRng, stream: u64, max_skew_ns: u64) -> Self {
        Self {
            rng: root.fork(stream),
            max_skew_ns,
            applied: 0,
        }
    }

    /// A jitter source that always returns zero skew.
    pub fn disabled() -> Self {
        Self {
            rng: SimRng::new(0),
            max_skew_ns: 0,
            applied: 0,
        }
    }

    /// Samples the skew for the next tick (0 when disabled).
    pub fn next_skew_ns(&mut self) -> u64 {
        if self.max_skew_ns == 0 {
            return 0;
        }
        let skew = self.rng.below(self.max_skew_ns + 1);
        if skew > 0 {
            self.applied += 1;
        }
        skew
    }

    /// Ticks that received a non-zero skew so far.
    pub fn skewed_ticks(&self) -> u64 {
        self.applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_is_deterministic_per_seed_and_stream() {
        let decide = |seed: u64| -> Vec<bool> {
            let mut root = SimRng::new(seed);
            let mut site = FaultSite::new(&mut root, 1, 0.5, u64::MAX);
            (0..64).map(|_| site.fires()).collect()
        };
        assert_eq!(decide(7), decide(7));
        assert_ne!(decide(7), decide(8), "different seeds, different stream");
    }

    #[test]
    fn sites_are_independent_across_streams() {
        // Adding draws to one site must not change another site's stream.
        let mut root_a = SimRng::new(3);
        let mut a1 = FaultSite::new(&mut root_a, 1, 0.5, u64::MAX);
        let a2 = FaultSite::new(&mut root_a, 2, 0.5, u64::MAX);
        let mut root_b = SimRng::new(3);
        let mut b1 = FaultSite::new(&mut root_b, 1, 0.5, u64::MAX);
        for _ in 0..100 {
            b1.fires(); // extra draws on site 1 only
        }
        let b2 = FaultSite::new(&mut root_b, 2, 0.5, u64::MAX);
        let seq = |mut s: FaultSite| -> Vec<bool> { (0..32).map(|_| s.fires()).collect() };
        assert_eq!(seq(a2), seq(b2));
        let _ = a1.fires();
    }

    #[test]
    fn budget_caps_firings_without_desyncing_the_stream() {
        let mut root = SimRng::new(11);
        let mut capped = FaultSite::new(&mut root, 1, 1.0, 3);
        let fires: Vec<bool> = (0..10).map(|_| capped.fires()).collect();
        assert_eq!(fires.iter().filter(|f| **f).count(), 3);
        assert_eq!(capped.fired(), 3);
        assert_eq!(capped.decisions(), 10);
        // First `budget` decisions fire (p = 1.0), the rest are suppressed.
        assert_eq!(&fires[..3], &[true, true, true]);
        assert!(fires[3..].iter().all(|f| !f));
    }

    #[test]
    fn disabled_site_never_fires() {
        let mut s = FaultSite::disabled();
        assert!((0..100).all(|_| !s.fires()));
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let sample = |seed: u64| -> Vec<u64> {
            let mut root = SimRng::new(seed);
            let mut j = TickJitter::new(&mut root, 9, 5_000);
            (0..64).map(|_| j.next_skew_ns()).collect()
        };
        let a = sample(5);
        assert_eq!(a, sample(5));
        assert!(a.iter().all(|&s| s <= 5_000));
        assert!(a.iter().any(|&s| s > 0));
        let mut off = TickJitter::disabled();
        assert_eq!(off.next_skew_ns(), 0);
        assert_eq!(off.skewed_ticks(), 0);
    }
}
