//! The future event list.
//!
//! A discrete-event simulation is a loop over a priority queue of timed
//! events. [`EventQueue`] provides that queue with a *total* order —
//! ties in time break by insertion sequence — so runs are deterministic
//! regardless of heap internals.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Token identifying a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic future event list.
///
/// # Examples
///
/// ```
/// use atropos_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "b");
/// q.schedule(SimTime::from_millis(1), "a");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_millis(1), "a"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    canceled: HashSet<u64>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            canceled: HashSet::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `payload` to fire at time `at`. Events at equal times fire
    /// in scheduling order.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
        EventToken(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been canceled.
    /// Cancellation is lazy: the entry is dropped when it reaches the head.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_seq {
            return false;
        }
        self.canceled.insert(token.0)
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(e)) = self.heap.pop() {
            if self.canceled.remove(&e.seq) {
                continue;
            }
            self.popped += 1;
            return Some((e.at, e.payload));
        }
        None
    }

    /// Time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.canceled.contains(&e.seq) {
                let seq = e.seq;
                self.heap.pop();
                self.canceled.remove(&seq);
                continue;
            }
            return Some(e.at);
        }
        None
    }

    /// True if no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of events popped so far (for progress accounting in tests
    /// and benches).
    pub fn popped(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn cancel_twice_returns_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventToken(99)));
    }

    #[test]
    fn peek_time_skips_canceled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn popped_counts_only_live_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.cancel(a);
        q.pop();
        assert_eq!(q.popped(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(5), 2); // scheduling "in the past" is the caller's
                             // responsibility; the queue just orders.
        q.schedule(t(20), 3);
        assert_eq!(q.pop(), Some((t(5), 2)));
        assert_eq!(q.pop(), Some((t(20), 3)));
    }
}
