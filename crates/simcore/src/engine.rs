//! The future event list.
//!
//! A discrete-event simulation is a loop over a priority queue of timed
//! events. [`EventQueue`] provides that queue with a *total* order —
//! ties in time break by insertion sequence — so runs are deterministic
//! regardless of heap internals.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Token identifying a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic future event list.
///
/// # Examples
///
/// ```
/// use atropos_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "b");
/// q.schedule(SimTime::from_millis(1), "a");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_millis(1), "a"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    canceled: HashSet<u64>,
    next_seq: u64,
    popped: u64,
    compactions: u64,
}

/// Compaction is considered only once this many tombstones accumulate, so
/// small queues never pay the rebuild.
const COMPACT_MIN_TOMBSTONES: usize = 64;

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            canceled: HashSet::new(),
            next_seq: 0,
            popped: 0,
            compactions: 0,
        }
    }

    /// Schedules `payload` to fire at time `at`. Events at equal times fire
    /// in scheduling order.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
        EventToken(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been canceled.
    /// Cancellation is lazy: the entry is dropped when it reaches the head
    /// or when enough tombstones accumulate to trigger a compaction.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_seq {
            return false;
        }
        let fresh = self.canceled.insert(token.0);
        self.maybe_compact();
        fresh
    }

    /// Rebuilds the heap without canceled entries once more than half of
    /// it is dead.
    ///
    /// Cancel-heavy workloads (request cancellation, timer churn)
    /// otherwise grow the heap and the tombstone set without bound: a
    /// canceled entry is only reclaimed when it surfaces at the head, and
    /// a tombstone for an *already-popped* event — `cancel` called after
    /// the event fired — never matches anything and would live forever.
    /// The rebuild drops both: live entries are re-heapified in O(n), and
    /// any tombstone left over after the sweep is stale by construction
    /// and discarded.
    fn maybe_compact(&mut self) {
        if self.canceled.len() < COMPACT_MIN_TOMBSTONES
            || self.canceled.len() * 2 <= self.heap.len()
        {
            return;
        }
        let mut live = Vec::with_capacity(self.heap.len());
        for Reverse(e) in std::mem::take(&mut self.heap).into_vec() {
            if self.canceled.remove(&e.seq) {
                continue;
            }
            live.push(Reverse(e));
        }
        // Anything still tombstoned matched no heap entry: the event
        // already fired. Drop the stale markers and the set's capacity.
        self.canceled.clear();
        self.canceled.shrink_to_fit();
        self.heap = BinaryHeap::from(live);
        self.compactions += 1;
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(e)) = self.heap.pop() {
            if self.canceled.remove(&e.seq) {
                continue;
            }
            self.popped += 1;
            return Some((e.at, e.payload));
        }
        None
    }

    /// Time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.canceled.contains(&e.seq) {
                let seq = e.seq;
                self.heap.pop();
                self.canceled.remove(&seq);
                continue;
            }
            return Some(e.at);
        }
        None
    }

    /// True if no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of events popped so far (for progress accounting in tests
    /// and benches).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of scheduled-but-unfired entries, including canceled ones
    /// not yet reclaimed.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Number of pending cancel tombstones.
    pub fn tombstones(&self) -> usize {
        self.canceled.len()
    }

    /// Number of tombstone compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn cancel_twice_returns_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventToken(99)));
    }

    #[test]
    fn peek_time_skips_canceled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn popped_counts_only_live_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.cancel(a);
        q.pop();
        assert_eq!(q.popped(), 1);
    }

    #[test]
    fn compaction_reclaims_majority_dead_heap() {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = (0..200).map(|i| q.schedule(t(i), i)).collect();
        // Cancel 150 of 200. The first compaction fires once tombstones
        // pass both the minimum count and half the heap (at 101 here),
        // sweeping every dead entry seen so far.
        for tok in &tokens[..150] {
            assert!(q.cancel(*tok));
        }
        assert!(q.compactions() > 0);
        assert_eq!(q.heap_len(), 99, "first sweep should leave 99 live");
        assert!(q.tombstones() < COMPACT_MIN_TOMBSTONES);
        // The 50 survivors pop in order.
        for i in 150..200 {
            assert_eq!(q.pop(), Some((t(i), i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn stale_tombstones_for_fired_events_are_dropped() {
        let mut q = EventQueue::new();
        let fired: Vec<_> = (0..100).map(|i| q.schedule(t(i), i)).collect();
        for _ in 0..100 {
            q.pop();
        }
        // Cancel events that already fired, staying one short of the
        // compaction threshold: the markers match nothing and linger.
        for tok in &fired[..COMPACT_MIN_TOMBSTONES - 1] {
            q.cancel(*tok);
        }
        assert_eq!(q.tombstones(), COMPACT_MIN_TOMBSTONES - 1);
        let live: Vec<_> = (100..110).map(|i| q.schedule(t(i), i)).collect();
        // The threshold-crossing cancel sweeps: every stale marker is
        // discarded and the live entries are untouched.
        q.cancel(fired[COMPACT_MIN_TOMBSTONES - 1]);
        assert_eq!(q.compactions(), 1);
        assert_eq!(q.tombstones(), 0, "stale tombstones not reclaimed");
        assert_eq!(q.heap_len(), live.len());
        assert_eq!(q.pop(), Some((t(100), 100)));
    }

    #[test]
    fn small_queues_never_compact() {
        let mut q = EventQueue::new();
        let toks: Vec<_> = (0..40).map(|i| q.schedule(t(i), i)).collect();
        for tok in &toks {
            q.cancel(*tok);
        }
        // All 40 canceled (100% dead) but below the minimum tombstone
        // count: reclamation stays lazy.
        assert_eq!(q.compactions(), 0);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn heavy_churn_keeps_memory_bounded() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        for round in 0..100u64 {
            let toks: Vec<_> = (0..100)
                .map(|i| q.schedule(t(round * 100 + i), round * 100 + i))
                .collect();
            // Cancel 90%, pop a few, keep the rest pending.
            for tok in &toks[..90] {
                q.cancel(*tok);
            }
            for _ in 0..5 {
                q.pop();
            }
            keep.push(toks[95]);
        }
        // 10k scheduled, 9k canceled: without compaction the heap would
        // hold thousands of dead entries.
        assert!(
            q.heap_len() < 2_000,
            "heap holds {} entries after churn",
            q.heap_len()
        );
        assert!(q.compactions() > 0);
        // The queue still orders and serves the survivors correctly.
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(5), 2); // scheduling "in the past" is the caller's
                             // responsibility; the queue just orders.
        q.schedule(t(20), 3);
        assert_eq!(q.pop(), Some((t(5), 2)));
        assert_eq!(q.pop(), Some((t(20), 3)));
    }
}
