//! The substrate port layer (DESIGN.md §12).
//!
//! Atropos's central claim is that the framework is application-agnostic:
//! it only ever sees `get`/`free`/`slowBy`/`progress` events and a cancel
//! initiator (PAPER §3.2, Figure 6b). This crate is that claim stated as
//! a type: [`RuntimePort`] is the *single* runtime-facing surface, and
//! every substrate — the discrete-event simulator (`atropos-app`), the
//! wall-clock serving harness (`atropos-live`), and any middleware wrapped
//! around either — speaks it.
//!
//! Three things live here and nowhere else:
//!
//! - the **protocol vocabulary** ([`TraceKind`], [`ResourceEvent`],
//!   [`Action`], and the application-side identifiers), previously
//!   duplicated between `appsim::controller` and ad-hoc call sites in
//!   `live::resources`;
//! - the **port** itself: [`RuntimePort`] (get/free/slow_by/progress/tick
//!   plus task scoping) and [`CancelInitiator`] (the Figure 7 callback,
//!   with re-execution and drop legs), with `AtroposRuntime` as the
//!   canonical implementation;
//! - the **scenario descriptors** ([`ScenarioFamily`],
//!   [`ScenarioDescriptor`]) that pin the shared geometry the sim↔live
//!   differential runs both substrates against.
//!
//! Because the port is object-safe, cross-cutting concerns compose as
//! decorators: the chaos `FaultInjector` implements `RuntimePort` over an
//! inner port, and [`ProbePort`] does the same for cheap call counting.
//! The documented stacking order is app → injector → probe/recorder →
//! runtime: faults corrupt what the runtime hears, observability counts
//! what survived.

pub mod fed;
pub mod ids;
pub mod port;
pub mod protocol;
pub mod scenario;

pub use fed::{EdgeIdentity, EdgeStats, FedEdge, FrameError, NodeId, FED_KEY_BASE, MAX_HOPS};
pub use ids::{ClassId, ClientId, LockId, PoolId, QueueId, RequestId};
pub use port::{CancelFn, CancelInitiator, ProbeCounts, ProbePort, RuntimePort};
pub use protocol::{Action, ResourceEvent, TraceKind};
pub use scenario::{ScenarioDescriptor, ScenarioFamily};
