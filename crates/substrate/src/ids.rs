//! Application-side identifiers shared by every substrate.
//!
//! These are the ids the *application* (simulated or live) uses to talk
//! about its own work; the runtime's `TaskId`/`TaskKey` live in the core
//! crate. Historically defined in `appsim::ids`, they moved here so the
//! protocol vocabulary ([`crate::protocol`]) has one home.

/// A request (one unit of client-visible work, or one background job run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// A request class (point-select, scan, backup, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u16);

/// The client (tenant) a request belongs to; PARTIES partitions resources
/// and measures latency at this granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u16);

/// A lock instance inside a lock manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

/// A buffer pool / cache instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(pub u32);

/// A ticket queue (bounded concurrency) instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueId(pub u32);
