//! Shared scenario descriptors for the sim↔live differential.
//!
//! A differential run drives *the same overload story* through two
//! substrates — the discrete-event simulator and the wall-clock harness —
//! and demands agreement on culprit identity. "The same story" has to be
//! pinned somewhere both sides can see: that is the
//! [`ScenarioDescriptor`]. This crate defines only the *shape*; the
//! pinned per-family values live in the checked-in descriptor files
//! (`atropos-workload`'s corpus, `family_descriptor`). The chaos crate
//! maps a descriptor onto a sim case variant (by family and seed) and
//! onto a `LiveConfig` (by the geometry fields), so a disagreement is a
//! substrate bug, never a mis-transcribed constant.

/// The scenario families both substrates implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioFamily {
    /// One task grabs an exclusive lock and sits on it; victims convoy
    /// behind (the paper's MySQL c1 shape).
    LockHog,
    /// A scan walks far more pages than the buffer pool holds, evicting
    /// the hot set (the c5 shape).
    BufferScan,
    /// A hog drains a bounded ticket queue dry, starving admission (the
    /// c2/c9 shape).
    TicketQueue,
}

impl ScenarioFamily {
    /// Every family, in the order CI runs them.
    pub const ALL: [ScenarioFamily; 3] = [
        ScenarioFamily::LockHog,
        ScenarioFamily::BufferScan,
        ScenarioFamily::TicketQueue,
    ];

    /// Stable name used in CLI flags, test output and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioFamily::LockHog => "lock_hog",
            ScenarioFamily::BufferScan => "buffer_scan",
            ScenarioFamily::TicketQueue => "ticket_queue",
        }
    }

    /// Parses a family from its stable name.
    pub fn from_name(name: &str) -> Option<ScenarioFamily> {
        ScenarioFamily::ALL
            .iter()
            .copied()
            .find(|f| f.name() == name)
    }
}

/// Everything the two substrates must agree on before a differential run:
/// which family, which sim seed, and the live geometry that realizes the
/// family on real threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioDescriptor {
    /// The scenario family.
    pub family: ScenarioFamily,
    /// Seed for the simulator side's workload RNG.
    pub sim_seed: u64,
    /// Concurrent service slots: worker threads in the thread substrate,
    /// the task-pool admission cap in the async substrate. Pinned so the
    /// runtime-visible task footprint matches across substrates.
    pub workers: usize,
    /// Open-loop spacing between normal arrivals, µs.
    pub interarrival_us: u64,
    /// Ticket-queue permits in the live server.
    pub tickets: usize,
    /// When the live culprit arrives, ms after start.
    pub culprit_after_ms: u64,
    /// How long the live culprit occupies its resource, ms.
    pub culprit_hold_ms: u64,
    /// Hot-set size touched by normal live requests, pages.
    pub hot_pages: u64,
    /// Live LRU buffer capacity, pages.
    pub lru_capacity: usize,
    /// Pages a normal live request touches.
    pub pages_per_request: u64,
    /// Live cost of one buffer miss, µs.
    pub miss_penalty_us: u64,
    /// Pages the live scan culprit sweeps.
    pub scan_pages: u64,
    /// Service-graph depth when the scenario runs federated (DESIGN.md
    /// §15): 1 means a single runtime (every pre-federation family).
    pub tiers: u8,
    /// Backend fan-out per frontend request in a federated topology; 1
    /// for a plain chain (and for single-runtime families).
    pub fanout: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let names: Vec<&str> = ScenarioFamily::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names, ["lock_hog", "buffer_scan", "ticket_queue"]);
    }

    #[test]
    fn names_round_trip() {
        for f in ScenarioFamily::ALL {
            assert_eq!(ScenarioFamily::from_name(f.name()), Some(f));
        }
        assert_eq!(ScenarioFamily::from_name("nope"), None);
    }
}
