//! Shared scenario descriptors for the sim↔live differential.
//!
//! A differential run drives *the same overload story* through two
//! substrates — the discrete-event simulator and the wall-clock harness —
//! and demands agreement on culprit identity. "The same story" has to be
//! pinned somewhere both sides can see: that is the
//! [`ScenarioDescriptor`]. The chaos crate maps a descriptor onto a sim
//! case variant (by family and seed) and onto a `LiveConfig` (by the
//! geometry fields), so a disagreement is a substrate bug, never a
//! mis-transcribed constant.

/// The scenario families both substrates implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioFamily {
    /// One task grabs an exclusive lock and sits on it; victims convoy
    /// behind (the paper's MySQL c1 shape).
    LockHog,
    /// A scan walks far more pages than the buffer pool holds, evicting
    /// the hot set (the c5 shape).
    BufferScan,
    /// A hog drains a bounded ticket queue dry, starving admission (the
    /// c2/c9 shape).
    TicketQueue,
}

impl ScenarioFamily {
    /// Every family, in the order CI runs them.
    pub const ALL: [ScenarioFamily; 3] = [
        ScenarioFamily::LockHog,
        ScenarioFamily::BufferScan,
        ScenarioFamily::TicketQueue,
    ];

    /// Stable name used in CLI flags, test output and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioFamily::LockHog => "lock_hog",
            ScenarioFamily::BufferScan => "buffer_scan",
            ScenarioFamily::TicketQueue => "ticket_queue",
        }
    }

    /// The pinned descriptor the differential suite runs this family at.
    pub fn descriptor(self) -> ScenarioDescriptor {
        match self {
            ScenarioFamily::LockHog => ScenarioDescriptor {
                family: self,
                sim_seed: 42,
                workers: 4,
                interarrival_us: 2000,
                tickets: 4,
                culprit_after_ms: 400,
                culprit_hold_ms: 1200,
                hot_pages: 128,
                lru_capacity: 256,
                pages_per_request: 4,
                miss_penalty_us: 50,
                scan_pages: 1 << 16,
                tiers: 1,
                fanout: 1,
            },
            ScenarioFamily::BufferScan => ScenarioDescriptor {
                family: self,
                sim_seed: 42,
                workers: 4,
                interarrival_us: 2000,
                // Two tickets so the scan's page misses convoy admission
                // behind it instead of being absorbed by spare workers.
                tickets: 2,
                culprit_after_ms: 400,
                culprit_hold_ms: 1200,
                hot_pages: 128,
                // Barely larger than the hot set: the scan must evict.
                lru_capacity: 132,
                pages_per_request: 8,
                miss_penalty_us: 1000,
                scan_pages: 1 << 16,
                tiers: 1,
                fanout: 1,
            },
            ScenarioFamily::TicketQueue => ScenarioDescriptor {
                family: self,
                sim_seed: 42,
                workers: 4,
                interarrival_us: 2000,
                // Few tickets so one hog holding them all starves every
                // arrival immediately.
                tickets: 2,
                culprit_after_ms: 400,
                culprit_hold_ms: 1200,
                hot_pages: 128,
                lru_capacity: 256,
                pages_per_request: 4,
                miss_penalty_us: 50,
                scan_pages: 1 << 16,
                tiers: 1,
                fanout: 1,
            },
        }
    }
}

/// Everything the two substrates must agree on before a differential run:
/// which family, which sim seed, and the live geometry that realizes the
/// family on real threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioDescriptor {
    /// The scenario family.
    pub family: ScenarioFamily,
    /// Seed for the simulator side's workload RNG.
    pub sim_seed: u64,
    /// Concurrent service slots: worker threads in the thread substrate,
    /// the task-pool admission cap in the async substrate. Pinned so the
    /// runtime-visible task footprint matches across substrates.
    pub workers: usize,
    /// Open-loop spacing between normal arrivals, µs.
    pub interarrival_us: u64,
    /// Ticket-queue permits in the live server.
    pub tickets: usize,
    /// When the live culprit arrives, ms after start.
    pub culprit_after_ms: u64,
    /// How long the live culprit occupies its resource, ms.
    pub culprit_hold_ms: u64,
    /// Hot-set size touched by normal live requests, pages.
    pub hot_pages: u64,
    /// Live LRU buffer capacity, pages.
    pub lru_capacity: usize,
    /// Pages a normal live request touches.
    pub pages_per_request: u64,
    /// Live cost of one buffer miss, µs.
    pub miss_penalty_us: u64,
    /// Pages the live scan culprit sweeps.
    pub scan_pages: u64,
    /// Service-graph depth when the scenario runs federated (DESIGN.md
    /// §15): 1 means a single runtime (every pre-federation family).
    pub tiers: u8,
    /// Backend fan-out per frontend request in a federated topology; 1
    /// for a plain chain (and for single-runtime families).
    pub fanout: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let names: Vec<&str> = ScenarioFamily::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names, ["lock_hog", "buffer_scan", "ticket_queue"]);
    }

    #[test]
    fn descriptors_carry_their_family() {
        for f in ScenarioFamily::ALL {
            assert_eq!(f.descriptor().family, f);
        }
    }
}
