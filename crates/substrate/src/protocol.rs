//! The shared event and action vocabulary (the Figure 6b wire format).
//!
//! One definition, used by every substrate: the simulator's controllers
//! consume [`ResourceEvent`]s and return [`Action`]s, the chaos injector
//! classifies intercepted traffic by [`TraceKind`], and the live harness
//! maps its primitive operations onto the same three verbs. These types
//! were previously defined in `appsim::controller` (and re-declared
//! privately inside the chaos injector); `appsim` now re-exports them from
//! here for back-compat.

use crate::ids::{ClassId, ClientId, PoolId, QueueId, RequestId};

/// The operation a trace event records (mirrors the Atropos protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Units acquired.
    Get,
    /// Units released.
    Free,
    /// Delayed by the resource (wait began / evictions caused).
    Slow,
}

/// One resource trace event, attributed to a *resource group*.
///
/// Groups are declared in the server config: e.g. all five table locks
/// form one "table_lock" group, matching how the paper instruments one
/// logical application resource with many instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceEvent {
    /// Index of the resource group (position in the config's group list).
    pub group: usize,
    /// Event kind.
    pub kind: TraceKind,
    /// The request the event is attributed to.
    pub req: RequestId,
    /// Units (pages, lock count, heap pages…).
    pub amount: u64,
}

/// An action a controller asks the server to apply.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Cancel a running request through the application's initiator; the
    /// server parks cancellable foreground requests for re-execution.
    Cancel(RequestId),
    /// Drop a running/waiting request outright (a *victim* drop — what
    /// Protego does). Counts toward the drop rate.
    Drop(RequestId),
    /// Add a per-chunk execution delay to a request (pBox penalty).
    /// Zero clears the throttle.
    Throttle(RequestId, u64),
    /// Re-execute a previously canceled (parked) request.
    Reexec(RequestId),
    /// Abandon a parked request (its SLO deadline passed); counts as a
    /// drop.
    DropParked(RequestId),
    /// Resize a ticket queue (PARTIES partition adjustment).
    SetQueueCapacity(QueueId, usize),
    /// Set or clear a client's buffer pool quota (pBox / PARTIES).
    SetPoolQuota(PoolId, ClientId, Option<u64>),
    /// Cap concurrent workers usable by a class (DARC core reservation);
    /// `None` removes the cap.
    SetClassWorkerLimit(ClassId, Option<usize>),
}
