//! The runtime-facing port and the cancel-initiator boundary.
//!
//! [`RuntimePort`] is the Figure 6 API restated as an object-safe trait:
//! integration calls (task scoping, resource registration), tracing calls
//! (get/free/slow_by), the performance signal (progress, unit lifecycle),
//! and the periodic driver (`tick`). [`AtroposRuntime`] is the canonical
//! implementation; anything else implementing the trait is middleware
//! over an inner port (see [`ProbePort`] here and `FaultInjector` in the
//! chaos crate).
//!
//! Cancellation crosses the port in the *opposite* direction — the
//! runtime calls the application — so it gets its own trait:
//! [`CancelInitiator`] bundles the cancel leg with the re-execution and
//! drop legs of the Figure 7 contract. Installing an initiator through a
//! middleware stack lets each layer interpose on deliveries (the chaos
//! `FailCancel`/`DelayCancel` faults are exactly that).
//!
//! Registering an initiator is *observable*: with none installed the
//! cancel manager answers `CancelDecision::NoInitiator` and issues
//! nothing. Substrates that run with cancellation disabled must therefore
//! skip [`RuntimePort::install_initiator`] entirely rather than install a
//! no-op.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use atropos::{AtroposRuntime, ResourceId, ResourceType, TaskId, TaskKey, TickOutcome};
use atropos_sim::Clock;

/// The application side of cancellation (Figure 7): the runtime invokes
/// these with the task's *key*. Only `cancel` is mandatory; the
/// re-execution and drop legs default to no-ops for integrations that
/// park nothing.
///
/// **Delivery context:** the runtime may invoke an initiator while
/// holding runtime-internal locks (the canonical implementation delivers
/// from inside `tick`). An initiator must therefore only *signal* — raise
/// a flag, enqueue an abort — and never synchronously run unwinding that
/// re-enters the port (`free`, `free_cancel`, …) on the delivering
/// thread. Cooperative tokens satisfy this trivially; detach-style
/// initiators (the async substrate's abort handles) must defer the
/// actual teardown to their own execution context.
pub trait CancelInitiator: Send + Sync {
    /// Cancel the work registered under `key` at its next safe checkpoint.
    fn cancel(&self, key: TaskKey);

    /// A previously canceled task should be retried (§4 fairness).
    fn reexec(&self, _key: TaskKey) {}

    /// A parked task missed its SLO deadline and is abandoned.
    fn drop_parked(&self, _key: TaskKey) {}
}

/// Adapter turning a plain closure into a [`CancelInitiator`] with no-op
/// re-execution and drop legs.
pub struct CancelFn<F>(pub F);

impl<F: Fn(TaskKey) + Send + Sync> CancelInitiator for CancelFn<F> {
    fn cancel(&self, key: TaskKey) {
        (self.0)(key)
    }
}

/// The single runtime-facing surface every substrate speaks (Figure 6).
///
/// Object-safe so cross-cutting layers can wrap an `Arc<dyn RuntimePort>`
/// and be stacked: app → injector → probe/recorder → runtime.
pub trait RuntimePort: Send + Sync {
    // -- integration (Figure 6a) --

    /// Registers an application resource for tracking.
    fn register_resource(&self, name: &str, rtype: ResourceType) -> ResourceId;

    /// Marks the beginning of a cancellable task's scope (`createCancel`).
    fn create_cancel(&self, key: Option<u64>) -> TaskId;

    /// Ends a cancellable task's scope (`freeCancel`).
    fn free_cancel(&self, task: TaskId);

    /// Overrides whether the policy may cancel this task.
    fn set_cancellable(&self, task: TaskId, cancellable: bool);

    /// Marks a task as background (no SLO).
    fn mark_background(&self, task: TaskId);

    /// Installs the application's cancellation initiator (`setCancelAction`
    /// plus the re-execution and drop legs). See the module docs: this
    /// call is observable — skip it to run without cancellation.
    fn install_initiator(&self, initiator: Arc<dyn CancelInitiator>);

    // -- tracing (Figure 6b) --

    /// `task` acquired `amount` units of `rid` (`getResource`).
    fn get(&self, task: TaskId, rid: ResourceId, amount: u64);

    /// `task` released `amount` units (`freeResource`).
    fn free(&self, task: TaskId, rid: ResourceId, amount: u64);

    /// `task` is delayed by the resource (`slowByResource`).
    fn slow_by(&self, task: TaskId, rid: ResourceId, amount: u64);

    /// GetNext progress: `done` of `total` work units.
    fn progress(&self, task: TaskId, done: u64, total: u64);

    // -- performance signal --

    /// A work unit (one request) started on this task.
    fn unit_started(&self, task: TaskId);

    /// The open work unit completed; returns the measured latency.
    fn unit_finished(&self, task: TaskId) -> Option<u64>;

    /// An externally dropped request (keeps the detector's series whole).
    fn record_drop(&self);

    // -- the periodic driver --

    /// One detection → estimation → policy → cancellation cycle.
    fn tick(&self) -> TickOutcome;

    /// The clock timestamps are read from.
    fn clock(&self) -> Arc<dyn Clock>;
}

impl RuntimePort for AtroposRuntime {
    fn register_resource(&self, name: &str, rtype: ResourceType) -> ResourceId {
        AtroposRuntime::register_resource(self, name, rtype)
    }

    fn create_cancel(&self, key: Option<u64>) -> TaskId {
        AtroposRuntime::create_cancel(self, key)
    }

    fn free_cancel(&self, task: TaskId) {
        AtroposRuntime::free_cancel(self, task)
    }

    fn set_cancellable(&self, task: TaskId, cancellable: bool) {
        AtroposRuntime::set_cancellable(self, task, cancellable)
    }

    fn mark_background(&self, task: TaskId) {
        AtroposRuntime::mark_background(self, task)
    }

    fn install_initiator(&self, initiator: Arc<dyn CancelInitiator>) {
        let i = initiator.clone();
        self.set_cancel_action(move |key| i.cancel(key));
        let i = initiator.clone();
        self.set_reexec_action(move |key| i.reexec(key));
        self.set_drop_action(move |key| initiator.drop_parked(key));
    }

    fn get(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.get_resource(task, rid, amount)
    }

    fn free(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.free_resource(task, rid, amount)
    }

    fn slow_by(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.slow_by_resource(task, rid, amount)
    }

    fn progress(&self, task: TaskId, done: u64, total: u64) {
        self.report_progress(task, done, total)
    }

    fn unit_started(&self, task: TaskId) {
        AtroposRuntime::unit_started(self, task)
    }

    fn unit_finished(&self, task: TaskId) -> Option<u64> {
        AtroposRuntime::unit_finished(self, task)
    }

    fn record_drop(&self) {
        AtroposRuntime::record_drop(self)
    }

    fn tick(&self) -> TickOutcome {
        AtroposRuntime::tick(self)
    }

    fn clock(&self) -> Arc<dyn Clock> {
        AtroposRuntime::clock(self)
    }
}

/// Per-verb call counts observed by a [`ProbePort`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCounts {
    /// `get` calls.
    pub gets: u64,
    /// `free` calls.
    pub frees: u64,
    /// `slow_by` calls.
    pub slows: u64,
    /// `progress` calls.
    pub progress: u64,
    /// `unit_started` calls.
    pub units_started: u64,
    /// `unit_finished` calls.
    pub units_finished: u64,
    /// `tick` calls.
    pub ticks: u64,
}

/// The simplest useful middleware: forwards every call to the inner port
/// and counts the traffic with relaxed atomics. Doubles as the
/// "recorder" stage in the documented stacking order and as the overhead
/// yardstick for the port-dispatch benchmarks.
pub struct ProbePort {
    inner: Arc<dyn RuntimePort>,
    gets: AtomicU64,
    frees: AtomicU64,
    slows: AtomicU64,
    progress: AtomicU64,
    units_started: AtomicU64,
    units_finished: AtomicU64,
    ticks: AtomicU64,
}

impl ProbePort {
    /// Wraps `inner`, counting from zero.
    pub fn new(inner: Arc<dyn RuntimePort>) -> Self {
        Self {
            inner,
            gets: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            slows: AtomicU64::new(0),
            progress: AtomicU64::new(0),
            units_started: AtomicU64::new(0),
            units_finished: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
        }
    }

    /// Snapshot of the counts so far.
    pub fn counts(&self) -> ProbeCounts {
        ProbeCounts {
            gets: self.gets.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            slows: self.slows.load(Ordering::Relaxed),
            progress: self.progress.load(Ordering::Relaxed),
            units_started: self.units_started.load(Ordering::Relaxed),
            units_finished: self.units_finished.load(Ordering::Relaxed),
            ticks: self.ticks.load(Ordering::Relaxed),
        }
    }
}

impl RuntimePort for ProbePort {
    fn register_resource(&self, name: &str, rtype: ResourceType) -> ResourceId {
        self.inner.register_resource(name, rtype)
    }

    fn create_cancel(&self, key: Option<u64>) -> TaskId {
        self.inner.create_cancel(key)
    }

    fn free_cancel(&self, task: TaskId) {
        self.inner.free_cancel(task)
    }

    fn set_cancellable(&self, task: TaskId, cancellable: bool) {
        self.inner.set_cancellable(task, cancellable)
    }

    fn mark_background(&self, task: TaskId) {
        self.inner.mark_background(task)
    }

    fn install_initiator(&self, initiator: Arc<dyn CancelInitiator>) {
        self.inner.install_initiator(initiator)
    }

    fn get(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.inner.get(task, rid, amount)
    }

    fn free(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.frees.fetch_add(1, Ordering::Relaxed);
        self.inner.free(task, rid, amount)
    }

    fn slow_by(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.slows.fetch_add(1, Ordering::Relaxed);
        self.inner.slow_by(task, rid, amount)
    }

    fn progress(&self, task: TaskId, done: u64, total: u64) {
        self.progress.fetch_add(1, Ordering::Relaxed);
        self.inner.progress(task, done, total)
    }

    fn unit_started(&self, task: TaskId) {
        self.units_started.fetch_add(1, Ordering::Relaxed);
        self.inner.unit_started(task)
    }

    fn unit_finished(&self, task: TaskId) -> Option<u64> {
        self.units_finished.fetch_add(1, Ordering::Relaxed);
        self.inner.unit_finished(task)
    }

    fn record_drop(&self) {
        self.inner.record_drop()
    }

    fn tick(&self) -> TickOutcome {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        self.inner.tick()
    }

    fn clock(&self) -> Arc<dyn Clock> {
        self.inner.clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos::AtroposConfig;
    use atropos_sim::VirtualClock;

    fn runtime() -> Arc<AtroposRuntime> {
        let cfg = AtroposConfig {
            cancel_min_interval_ns: 0,
            ..AtroposConfig::default()
        };
        Arc::new(AtroposRuntime::new(cfg, Arc::new(VirtualClock::new())))
    }

    #[test]
    fn runtime_speaks_the_port_verbatim() {
        let rt = runtime();
        let port: Arc<dyn RuntimePort> = rt.clone();
        let rid = port.register_resource("pool", ResourceType::Memory);
        let t = port.create_cancel(Some(7));
        port.unit_started(t);
        port.get(t, rid, 3);
        port.free(t, rid, 1);
        port.slow_by(t, rid, 2);
        port.progress(t, 10, 100);
        assert!(port.unit_finished(t).is_some());
        port.free_cancel(t);
        let stats = rt.stats();
        assert_eq!(stats.trace_events, 3);
        assert_eq!(stats.completions, 1);
    }

    #[test]
    fn installed_initiator_receives_cancel_deliveries() {
        let rt = runtime();
        let port: Arc<dyn RuntimePort> = rt.clone();
        let hits = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let h = hits.clone();
        port.install_initiator(Arc::new(CancelFn(move |key: TaskKey| h.lock().push(key.0))));
        let _t = port.create_cancel(Some(42));
        rt.cancel_key(TaskKey(42));
        assert_eq!(hits.lock().clone(), vec![42]);
    }

    #[test]
    fn probe_counts_what_passes_through() {
        let rt = runtime();
        let probe = Arc::new(ProbePort::new(rt.clone()));
        let port: Arc<dyn RuntimePort> = probe.clone();
        let rid = port.register_resource("lock", ResourceType::Lock);
        let t = port.create_cancel(None);
        port.unit_started(t);
        port.get(t, rid, 1);
        port.get(t, rid, 1);
        port.free(t, rid, 2);
        port.slow_by(t, rid, 1);
        port.progress(t, 1, 2);
        port.unit_finished(t);
        port.tick();
        let c = probe.counts();
        assert_eq!(
            c,
            ProbeCounts {
                gets: 2,
                frees: 1,
                slows: 1,
                progress: 1,
                units_started: 1,
                units_finished: 1,
                ticks: 1,
            }
        );
        // Counted and forwarded: the runtime saw the same traffic.
        assert_eq!(rt.stats().trace_events, 4);
    }
}
