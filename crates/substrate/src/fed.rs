//! Federation identity and the RPC edge middleware (DESIGN.md §15).
//!
//! The distributed extension the paper sketches in §4 needs exactly one
//! new piece of protocol: when a request crosses a node boundary, the
//! caller's *end-to-end identity* — the root task key minted on the
//! originating node plus the hop path taken so far — must travel with it,
//! the way DAGOR piggybacks admission priority on every RPC. With that
//! identity in hand, a backend node's detector can blame the originating
//! root instead of an anonymous local task, and the cancellation can
//! propagate *upstream* toward the origin instead of shedding innocent
//! local load.
//!
//! Two pieces live here:
//!
//! - [`EdgeIdentity`]: the piggybacked identity itself, with an explicit
//!   wire frame ([`EdgeIdentity::encode`]/[`EdgeIdentity::decode`]) so
//!   the encoding is a checked contract — malformed frames are rejected
//!   loudly ([`FrameError`]), never guessed at;
//! - [`FedEdge`]: port middleware for the *callee* side of an edge. It
//!   implements [`RuntimePort`] over the callee node's port stack,
//!   consumes the identity bound for the next `create_cancel` (the frame
//!   round-trips the codec on every call), keeps the blame table from
//!   callee-local task keys back to edge identities, and splits delivered
//!   cancellations into a local leg (stop the proxy task) and an upstream
//!   leg (propagate toward the origin through a [`CancelInitiator`]).
//!
//! The edge is deliberately *in-process*: the federation crate composes
//! several runtimes over these edges on one clock, and the chaos suite
//! injects partition/delay/reorder faults into the upstream leg. Nothing
//! here assumes a network — only that identity crosses the boundary as
//! bytes.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::sync::{Arc, Weak};

use atropos::{RemoteOrigin, ResourceId, ResourceType, TaskId, TaskKey, TickOutcome};
use atropos_sim::Clock;

use crate::port::{CancelInitiator, RuntimePort};

/// A federation node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Key namespace for tasks created on behalf of a remote root: far above
/// both the live harness's culprit namespace (`1 << 40`) and far below the
/// runtime's auto-key namespace (`1 << 63`).
pub const FED_KEY_BASE: u64 = 1 << 56;

/// Frame magic: identifies an encoded [`EdgeIdentity`].
const FRAME_MAGIC: u32 = 0xA7F0_ED1E;

/// Longest hop path a frame may carry; longer paths indicate a routing
/// loop and are rejected.
pub const MAX_HOPS: usize = 32;

/// Why a wire frame was rejected. Every variant is a *loud* failure: the
/// edge counts it, and the federation invariant (I9) requires healthy
/// runs to carry zero rejected frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the fixed header.
    TooShort,
    /// Magic mismatch: not an identity frame at all.
    BadMagic,
    /// Hop count of zero (an identity always includes its origin).
    EmptyPath,
    /// Hop count above [`MAX_HOPS`].
    PathTooLong,
    /// Byte length disagrees with the declared hop count.
    Truncated,
    /// Checksum mismatch: the frame was corrupted in flight.
    BadChecksum,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FrameError::TooShort => "frame shorter than header",
            FrameError::BadMagic => "bad frame magic",
            FrameError::EmptyPath => "empty hop path",
            FrameError::PathTooLong => "hop path exceeds MAX_HOPS",
            FrameError::Truncated => "frame truncated against declared hop count",
            FrameError::BadChecksum => "frame checksum mismatch",
        };
        f.write_str(s)
    }
}

/// The end-to-end identity piggybacked on every cross-node request: the
/// root task key as minted on the originating node, plus the hop path
/// (origin first) the request has taken through the service graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EdgeIdentity {
    /// Root task key on the originating node.
    pub root_key: u64,
    /// Hop path, origin first; never empty.
    pub path: Vec<NodeId>,
}

/// FNV-1a over the frame body; cheap, deterministic, and plenty to catch
/// the chaos suite's bit-level corruption.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl EdgeIdentity {
    /// A fresh identity minted on `origin` for root `root_key`.
    pub fn local(origin: NodeId, root_key: u64) -> Self {
        Self {
            root_key,
            path: vec![origin],
        }
    }

    /// The identity after one more hop to `node`.
    pub fn hop(&self, node: NodeId) -> Self {
        let mut path = self.path.clone();
        path.push(node);
        Self {
            root_key: self.root_key,
            path,
        }
    }

    /// The originating node (first hop of the path).
    pub fn origin(&self) -> NodeId {
        self.path[0]
    }

    /// The key a callee node registers the proxy task under: the fed
    /// namespace bit, the origin node, and the low 48 bits of the root
    /// key. Unique per (origin, root) on any one node.
    pub fn remote_key(&self) -> u64 {
        FED_KEY_BASE | ((self.origin().0 as u64 & 0xFF) << 48) | (self.root_key & ((1 << 48) - 1))
    }

    /// The core-runtime blame record this identity maps onto.
    pub fn remote_origin(&self) -> RemoteOrigin {
        RemoteOrigin {
            root_key: self.root_key,
            origin_node: self.origin().0,
            hops: (self.path.len().saturating_sub(1)).min(u8::MAX as usize) as u8,
        }
    }

    /// Encodes the identity as a wire frame:
    /// `magic(4) | root_key(8) | hops(2) | hop(2)* | fnv1a(4)`,
    /// all little-endian, checksum over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(18 + 2 * self.path.len());
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.root_key.to_le_bytes());
        out.extend_from_slice(&(self.path.len() as u16).to_le_bytes());
        for hop in &self.path {
            out.extend_from_slice(&hop.0.to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes a wire frame, rejecting malformed input loudly.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        if bytes.len() < 18 {
            return Err(FrameError::TooShort);
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic);
        }
        let root_key = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
        let hops = u16::from_le_bytes(bytes[12..14].try_into().unwrap()) as usize;
        if hops == 0 {
            return Err(FrameError::EmptyPath);
        }
        if hops > MAX_HOPS {
            return Err(FrameError::PathTooLong);
        }
        let body_len = 14 + 2 * hops;
        if bytes.len() != body_len + 4 {
            return Err(FrameError::Truncated);
        }
        let declared = u32::from_le_bytes(bytes[body_len..body_len + 4].try_into().unwrap());
        if fnv1a(&bytes[..body_len]) != declared {
            return Err(FrameError::BadChecksum);
        }
        let path = (0..hops)
            .map(|i| {
                let off = 14 + 2 * i;
                NodeId(u16::from_le_bytes(bytes[off..off + 2].try_into().unwrap()))
            })
            .collect();
        Ok(Self { root_key, path })
    }
}

impl fmt::Display for EdgeIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "root {} via ", self.root_key)?;
        for (i, hop) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{hop}")?;
        }
        Ok(())
    }
}

/// Counters one edge accumulates (relaxed atomics; read after a run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Identity frames decoded and attached to a proxy task.
    pub frames_carried: u64,
    /// Frames rejected by the codec (must stay 0 in healthy runs).
    pub frames_rejected: u64,
    /// Cancellations forwarded upstream toward an origin node.
    pub upstream_cancels: u64,
    /// Cancellations delivered only to the local (callee) initiator.
    pub local_cancels: u64,
}

/// Hook invoked when a proxy task is registered with its identity.
type OriginHook = Box<dyn Fn(TaskId, &EdgeIdentity) + Send + Sync>;

struct EdgeInner {
    /// Frame armed for the next `create_cancel`, already encoded: every
    /// carried identity round-trips the wire codec.
    pending: Option<Vec<u8>>,
    /// Callee-local key → identity of the remote root it proxies.
    blame: HashMap<u64, EdgeIdentity>,
    /// The callee application's own initiator.
    local: Option<Arc<dyn CancelInitiator>>,
    /// The cross-node cancel sink toward the origin (the caller installs
    /// it; chaos wraps it in edge faults).
    upstream: Option<Arc<dyn CancelInitiator>>,
    /// Hook invoked when a proxy task is registered (the federation node
    /// uses it to record the blame origin in the core runtime).
    origin_hook: Option<OriginHook>,
}

/// The callee side of one RPC edge, as port middleware.
///
/// Stacking order on a backend node: app → `FedEdge` → (injector/probe) →
/// runtime. A caller arms an identity with [`FedEdge::bind`] (or uses
/// [`FedEdge::open`]); the very next `create_cancel` becomes the remote
/// root's *proxy task*, keyed in the [`FED_KEY_BASE`] namespace and
/// entered into the blame table. When the callee runtime cancels a proxy
/// key, the edge delivers locally **and** forwards the cancellation
/// upstream carrying the root identity — the reverse of the piggybacked
/// request leg.
pub struct FedEdge {
    /// The callee node this edge terminates at.
    node: NodeId,
    inner: Arc<dyn RuntimePort>,
    /// Self-reference so `install_initiator` can hand the inner port an
    /// owning splitter.
    me: Mutex<Weak<FedEdge>>,
    st: Mutex<EdgeInner>,
    frames_carried: AtomicU64,
    frames_rejected: AtomicU64,
    upstream_cancels: AtomicU64,
    local_cancels: AtomicU64,
}

impl FedEdge {
    /// An edge terminating at `node`, over the callee's port stack.
    pub fn over(node: NodeId, inner: Arc<dyn RuntimePort>) -> Arc<Self> {
        let edge = Arc::new(Self {
            node,
            inner,
            me: Mutex::new(Weak::new()),
            st: Mutex::new(EdgeInner {
                pending: None,
                blame: HashMap::new(),
                local: None,
                upstream: None,
                origin_hook: None,
            }),
            frames_carried: AtomicU64::new(0),
            frames_rejected: AtomicU64::new(0),
            upstream_cancels: AtomicU64::new(0),
            local_cancels: AtomicU64::new(0),
        });
        *edge.me.lock().unwrap() = Arc::downgrade(&edge);
        edge
    }

    /// The node this edge terminates at.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Arms `identity` (already hopped to this node by the caller) for
    /// the next `create_cancel`. The identity is carried as its encoded
    /// frame, so the codec is exercised on every single RPC.
    pub fn bind(&self, identity: &EdgeIdentity) {
        self.bind_frame(identity.encode());
    }

    /// Arms a raw — possibly corrupt — wire frame for the next
    /// `create_cancel`. This is the receive path a real transport would
    /// feed; chaos tests use it to drive the loud-rejection counter.
    pub fn bind_frame(&self, frame: Vec<u8>) {
        self.st.lock().unwrap().pending = Some(frame);
    }

    /// Convenience: bind `identity` and open the proxy task in one step.
    pub fn open(&self, identity: &EdgeIdentity) -> TaskId {
        self.bind(identity);
        self.create_cancel(None)
    }

    /// Installs the cross-node cancel sink toward the origin. Cancels of
    /// proxy keys are forwarded here with the *root key on the origin
    /// node* — this is where chaos edge faults interpose.
    pub fn install_upstream(&self, sink: Arc<dyn CancelInitiator>) {
        self.st.lock().unwrap().upstream = Some(sink);
    }

    /// Registers a hook invoked with every newly opened proxy task and
    /// its identity (used to record the blame origin in the runtime).
    pub fn set_origin_hook(&self, hook: impl Fn(TaskId, &EdgeIdentity) + Send + Sync + 'static) {
        self.st.lock().unwrap().origin_hook = Some(Box::new(hook));
    }

    /// The identity blamed for callee-local `key`, if the key proxies a
    /// remote root.
    pub fn blame_for(&self, key: u64) -> Option<EdgeIdentity> {
        self.st.lock().unwrap().blame.get(&key).cloned()
    }

    /// Counters so far.
    pub fn stats(&self) -> EdgeStats {
        EdgeStats {
            frames_carried: self.frames_carried.load(Ordering::Relaxed),
            frames_rejected: self.frames_rejected.load(Ordering::Relaxed),
            upstream_cancels: self.upstream_cancels.load(Ordering::Relaxed),
            local_cancels: self.local_cancels.load(Ordering::Relaxed),
        }
    }

    /// Routes one delivered cancellation: blame-table hits go upstream
    /// (with the root identity) and locally; misses go locally only.
    fn route_cancel(&self, key: TaskKey) {
        let (blamed, local, upstream) = {
            let st = self.st.lock().unwrap();
            (
                st.blame.get(&key.0).cloned(),
                st.local.clone(),
                st.upstream.clone(),
            )
        };
        match blamed {
            Some(identity) => {
                self.upstream_cancels.fetch_add(1, Ordering::Relaxed);
                if let Some(up) = upstream {
                    up.cancel(TaskKey(identity.root_key));
                }
                if let Some(l) = local {
                    l.cancel(key);
                }
            }
            None => {
                self.local_cancels.fetch_add(1, Ordering::Relaxed);
                if let Some(l) = local {
                    l.cancel(key);
                }
            }
        }
    }
}

struct EdgeInitiator {
    edge: Arc<FedEdge>,
}

impl CancelInitiator for EdgeInitiator {
    fn cancel(&self, key: TaskKey) {
        self.edge.route_cancel(key);
    }

    fn reexec(&self, key: TaskKey) {
        let local = self.edge.st.lock().unwrap().local.clone();
        if let Some(l) = local {
            l.reexec(key);
        }
    }

    fn drop_parked(&self, key: TaskKey) {
        let local = self.edge.st.lock().unwrap().local.clone();
        if let Some(l) = local {
            l.drop_parked(key);
        }
    }
}

/// [`RuntimePort`] for `Arc<FedEdge>` so the edge stacks like any other
/// middleware. `create_cancel` consumes the armed identity; everything
/// else forwards.
impl RuntimePort for FedEdge {
    fn register_resource(&self, name: &str, rtype: ResourceType) -> ResourceId {
        self.inner.register_resource(name, rtype)
    }

    fn create_cancel(&self, key: Option<u64>) -> TaskId {
        let frame = self.st.lock().unwrap().pending.take();
        let identity = match frame {
            Some(bytes) => match EdgeIdentity::decode(&bytes) {
                Ok(id) => Some(id),
                Err(_) => {
                    // Loud rejection: counted here, required zero by I9.
                    self.frames_rejected.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
            None => None,
        };
        let key = identity.as_ref().map(|id| id.remote_key()).or(key);
        let task = self.inner.create_cancel(key);
        if let Some(id) = identity {
            self.frames_carried.fetch_add(1, Ordering::Relaxed);
            let mut st = self.st.lock().unwrap();
            st.blame.insert(id.remote_key(), id.clone());
            if let Some(hook) = &st.origin_hook {
                hook(task, &id);
            }
        }
        task
    }

    fn free_cancel(&self, task: TaskId) {
        self.inner.free_cancel(task)
    }

    fn set_cancellable(&self, task: TaskId, cancellable: bool) {
        self.inner.set_cancellable(task, cancellable)
    }

    fn mark_background(&self, task: TaskId) {
        self.inner.mark_background(task)
    }

    fn install_initiator(&self, initiator: Arc<dyn CancelInitiator>) {
        // The callee's own initiator becomes the local leg; the inner
        // port gets the splitter, which routes blame-table hits upstream
        // as well. Re-installation replaces the local leg only.
        self.st.lock().unwrap().local = Some(initiator);
        let me = self
            .me
            .lock()
            .unwrap()
            .upgrade()
            .expect("FedEdge::over always seeds the self-reference");
        self.inner
            .install_initiator(Arc::new(EdgeInitiator { edge: me }));
    }

    fn get(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.inner.get(task, rid, amount)
    }

    fn free(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.inner.free(task, rid, amount)
    }

    fn slow_by(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.inner.slow_by(task, rid, amount)
    }

    fn progress(&self, task: TaskId, done: u64, total: u64) {
        self.inner.progress(task, done, total)
    }

    fn unit_started(&self, task: TaskId) {
        self.inner.unit_started(task)
    }

    fn unit_finished(&self, task: TaskId) -> Option<u64> {
        self.inner.unit_finished(task)
    }

    fn record_drop(&self) {
        self.inner.record_drop()
    }

    fn tick(&self) -> TickOutcome {
        self.inner.tick()
    }

    fn clock(&self) -> Arc<dyn Clock> {
        self.inner.clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::CancelFn;
    use atropos::{AtroposConfig, AtroposRuntime};
    use atropos_sim::VirtualClock;

    fn runtime() -> Arc<AtroposRuntime> {
        let cfg = AtroposConfig {
            cancel_min_interval_ns: 0,
            ..AtroposConfig::default()
        };
        Arc::new(AtroposRuntime::new(cfg, Arc::new(VirtualClock::new())))
    }

    fn identity() -> EdgeIdentity {
        EdgeIdentity::local(NodeId(0), 5).hop(NodeId(1))
    }

    #[test]
    fn frame_round_trips() {
        let id = EdgeIdentity {
            root_key: u64::MAX - 3,
            path: vec![NodeId(0), NodeId(7), NodeId(65535)],
        };
        assert_eq!(EdgeIdentity::decode(&id.encode()), Ok(id));
    }

    #[test]
    fn malformed_frames_rejected_loudly() {
        let good = identity().encode();
        assert_eq!(EdgeIdentity::decode(&[]), Err(FrameError::TooShort));
        assert_eq!(
            EdgeIdentity::decode(&good[..good.len() - 1]),
            Err(FrameError::Truncated)
        );
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(EdgeIdentity::decode(&bad_magic), Err(FrameError::BadMagic));
        let mut corrupt = good.clone();
        corrupt[6] ^= 0x01; // inside root_key
        assert_eq!(EdgeIdentity::decode(&corrupt), Err(FrameError::BadChecksum));
        let mut empty = EdgeIdentity::local(NodeId(0), 1).encode();
        empty[12] = 0;
        empty[13] = 0;
        assert_eq!(EdgeIdentity::decode(&empty), Err(FrameError::EmptyPath));
        let long = EdgeIdentity {
            root_key: 1,
            path: vec![NodeId(0); MAX_HOPS + 1],
        };
        assert_eq!(
            EdgeIdentity::decode(&long.encode()),
            Err(FrameError::PathTooLong)
        );
    }

    #[test]
    fn remote_key_namespaces_origin_and_root() {
        let a = EdgeIdentity::local(NodeId(1), 5).hop(NodeId(2));
        let b = EdgeIdentity::local(NodeId(3), 5).hop(NodeId(2));
        let c = EdgeIdentity::local(NodeId(1), (1 << 40) + 5).hop(NodeId(2));
        assert_ne!(a.remote_key(), b.remote_key());
        assert_ne!(a.remote_key(), c.remote_key());
        assert!(a.remote_key() >= FED_KEY_BASE);
        assert!(a.remote_key() < 1 << 63); // below the auto-key namespace
    }

    #[test]
    fn edge_carries_identity_and_routes_cancels_upstream() {
        let rt = runtime();
        let edge = FedEdge::over(NodeId(1), rt.clone());
        let rt_hook = rt.clone();
        edge.set_origin_hook(move |task, id| rt_hook.set_task_origin(task, id.remote_origin()));

        let upstream = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let local = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let (u, l) = (upstream.clone(), local.clone());
        edge.install_upstream(Arc::new(CancelFn(move |key: TaskKey| u.lock().push(key.0))));
        let port: Arc<dyn RuntimePort> = edge.clone();
        port.install_initiator(Arc::new(CancelFn(move |key: TaskKey| l.lock().push(key.0))));

        let id = identity();
        let task = edge.open(&id);
        assert_eq!(edge.blame_for(id.remote_key()), Some(id.clone()));

        rt.cancel_key(TaskKey(id.remote_key()));
        // Upstream leg carries the *root* key; local leg the proxy key.
        assert_eq!(upstream.lock().clone(), vec![5]);
        assert_eq!(local.lock().clone(), vec![id.remote_key()]);

        // The runtime recorded the blame attribution against the origin.
        let snap = rt.debug_snapshot();
        assert_eq!(snap.cancel.remote_blame.len(), 1);
        assert_eq!(snap.cancel.remote_blame[0].origin.root_key, 5);
        assert_eq!(snap.cancel.remote_blame[0].origin.origin_node, 0);
        assert_eq!(snap.cancel.remote_blame[0].local_key.0, id.remote_key());

        port.free_cancel(task);
        let st = edge.stats();
        assert_eq!(st.frames_carried, 1);
        assert_eq!(st.frames_rejected, 0);
        assert_eq!(st.upstream_cancels, 1);
        assert_eq!(st.local_cancels, 0);
    }

    #[test]
    fn unidentified_tasks_cancel_locally_only() {
        let rt = runtime();
        let edge = FedEdge::over(NodeId(1), rt.clone());
        let upstream = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let local = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let (u, l) = (upstream.clone(), local.clone());
        edge.install_upstream(Arc::new(CancelFn(move |key: TaskKey| u.lock().push(key.0))));
        let port: Arc<dyn RuntimePort> = edge.clone();
        port.install_initiator(Arc::new(CancelFn(move |key: TaskKey| l.lock().push(key.0))));

        let t = port.create_cancel(Some(77));
        rt.cancel_key(TaskKey(77));
        assert!(upstream.lock().is_empty());
        assert_eq!(local.lock().clone(), vec![77]);
        assert_eq!(edge.stats().local_cancels, 1);
        port.free_cancel(t);
        // No origin, no blame record.
        assert!(rt.debug_snapshot().cancel.remote_blame.is_empty());
    }
}
