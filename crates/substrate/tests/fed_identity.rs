//! Property tests for the piggybacked edge-identity codec (DESIGN.md §15).
//!
//! The federation story leans on one encoding: the root key + hop path
//! frame every RPC carries. These properties pin the codec contract the
//! chaos edge faults rely on:
//!
//! - round-trip: any identity survives encode→decode bit-exactly;
//! - transport-shape independence: frames are stateless, so arbitrary
//!   reordering and duplication of a batch still decodes to the same
//!   multiset of identities;
//! - loud rejection: *any* single-byte corruption of a frame decodes to
//!   an error, never to a plausible wrong identity (FNV-1a's per-byte
//!   state update is bijective, so a one-byte change always lands in a
//!   different checksum).

use atropos_substrate::{EdgeIdentity, NodeId, MAX_HOPS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn identity_strategy() -> BoxedStrategy<EdgeIdentity> {
    (any::<u64>(), 1usize..MAX_HOPS, any::<u64>())
        .prop_map(|(root_key, hops, path_seed)| {
            let mut rng = StdRng::seed_from_u64(path_seed);
            let path = (0..hops).map(|_| NodeId(rng.gen::<u32>() as u16)).collect();
            EdgeIdentity { root_key, path }
        })
        .boxed()
}

proptest! {
    #[test]
    fn round_trips_bit_exactly(id in identity_strategy()) {
        let frame = id.encode();
        prop_assert_eq!(EdgeIdentity::decode(&frame), Ok(id));
    }

    #[test]
    fn survives_edge_reorder_and_duplication(
        ids in prop::collection::vec(identity_strategy(), 1..12),
        shuffle_seed in any::<u64>(),
    ) {
        // Model a faulty edge: every frame possibly duplicated, then the
        // whole batch delivered in arbitrary order.
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for id in &ids {
            let copies = 1 + rng.gen_range(0usize..3);
            for _ in 0..copies {
                frames.push(id.encode());
            }
        }
        for i in (1..frames.len()).rev() {
            frames.swap(i, rng.gen_range(0..=i));
        }
        let mut decoded: Vec<EdgeIdentity> = frames
            .iter()
            .map(|f| EdgeIdentity::decode(f).expect("well-formed frame"))
            .collect();
        // Every decoded identity is one that was sent, and every sent
        // identity arrived at least once: root key and hop path survive
        // the reorder/duplication intact.
        decoded.dedup();
        for id in &decoded {
            prop_assert!(ids.contains(id));
        }
        for id in &ids {
            prop_assert!(decoded.contains(id));
        }
    }

    #[test]
    fn any_single_byte_corruption_is_rejected(
        id in identity_strategy(),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut frame = id.encode();
        let pos = (pos_seed % frame.len() as u64) as usize;
        frame[pos] ^= flip;
        prop_assert!(EdgeIdentity::decode(&frame).is_err());
    }
}
