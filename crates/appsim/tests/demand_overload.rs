//! Pure *demand* overload (no culprit to cancel): Atropos must not make
//! things worse, and with a Breakwater fallback attached (the paper's
//! §3.3 delegation of regular overload) the excess demand is shed by
//! admission control while admitted requests keep a bounded tail.

use atropos::AtroposConfig;
use atropos_app::apps::webserver::{WebServer, WebServerConfig};
use atropos_app::glue::AtroposController;
use atropos_app::server::SimServer;
use atropos_app::workload::WorkloadSpec;
use atropos_app::NoControl;
use atropos_baselines::Breakwater;
use atropos_sim::SimTime;

const MS: u64 = 1_000_000;

fn overloaded_server() -> (WebServer, WorkloadSpec) {
    // 8 MaxClients × ~1.5 ms service ≈ 5.3 kQPS capacity; offer 4×.
    let ws = WebServer::new(WebServerConfig {
        max_clients: 8,
        ..Default::default()
    });
    let wl = WorkloadSpec::new(vec![ws.http_request(1.0)], 20_000.0);
    (ws, wl)
}

#[test]
fn atropos_with_breakwater_fallback_sheds_demand_overload() {
    let (ws, wl) = overloaded_server();
    let slo = 30 * MS;
    let m = SimServer::new_with(ws.server_config(), wl, |clock, groups| {
        Box::new(
            AtroposController::new(
                AtroposConfig::default().with_slo_ns(slo),
                clock,
                groups,
                true,
            )
            .with_fallback(Box::new(Breakwater::new(slo))),
        )
    })
    .run(SimTime::from_secs(6), SimTime::from_secs(2));
    // The fallback sheds the excess...
    assert!(
        m.dropped as f64 > m.offered as f64 * 0.3,
        "only {}/{} shed",
        m.dropped,
        m.offered
    );
    // ...so admitted requests keep a bounded tail.
    assert!(
        m.latency.p99() < 2_000 * MS,
        "p99 {} not bounded",
        m.latency.p99()
    );
    // And goodput sits near the pool's capacity.
    let tput = m.completed as f64 / 4.0;
    assert!(tput > 4_000.0, "tput {tput}");
}

#[test]
fn atropos_without_fallback_does_not_collapse_goodput() {
    let (ws, wl) = overloaded_server();
    let with_atropos = SimServer::new_with(ws.server_config(), wl, |clock, groups| {
        Box::new(AtroposController::new(
            AtroposConfig::default().with_slo_ns(30 * MS),
            clock,
            groups,
            true,
        ))
    })
    .run(SimTime::from_secs(6), SimTime::from_secs(2));
    let (ws, wl) = overloaded_server();
    let uncontrolled = SimServer::new(ws.server_config(), wl, Box::new(NoControl))
        .run(SimTime::from_secs(6), SimTime::from_secs(2));
    // Nothing to cancel helpfully: goodput must stay within a few percent
    // of the uncontrolled run (cancellation churn bounded by the rate
    // limiter), and drops bounded by the cancel-deadline path.
    assert!(
        with_atropos.completed as f64 > uncontrolled.completed as f64 * 0.9,
        "atropos {} vs none {}",
        with_atropos.completed,
        uncontrolled.completed
    );
    assert!(
        (with_atropos.dropped as f64) < with_atropos.offered as f64 * 0.02,
        "drops {}/{}",
        with_atropos.dropped,
        with_atropos.offered
    );
}
