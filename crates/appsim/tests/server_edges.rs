//! Edge-case and failure-injection tests for the server engine: canceling
//! requests in every blocking state, epoch fencing across re-execution,
//! controller actions against stale ids, and resource cleanup invariants.

use atropos_app::controller::{Action, Controller, ServerView};
use atropos_app::ids::{ClassId, LockId, PoolId, QueueId, RequestId};
use atropos_app::op::{LockMode, Plan};
use atropos_app::request::Outcome;
use atropos_app::resources::bufferpool::BufferPoolConfig;
use atropos_app::server::{ServerConfig, SimServer};
use atropos_app::workload::{ClassSpec, WorkloadSpec};
use atropos_app::NoControl;
use atropos_sim::{SimRng, SimTime};

fn sec(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// A controller that cancels every request of a class the first time it
/// sees it, in whatever state it happens to be.
struct CancelClass {
    class: ClassId,
    canceled: Vec<RequestId>,
}

impl Controller for CancelClass {
    fn name(&self) -> &'static str {
        "cancel-class"
    }
    fn on_tick(&mut self, _now: SimTime, view: &ServerView) -> Vec<Action> {
        let mut actions = Vec::new();
        for r in &view.requests {
            if r.class == self.class && !self.canceled.contains(&r.id) {
                self.canceled.push(r.id);
                actions.push(Action::Cancel(r.id));
            }
        }
        actions
    }
}

#[test]
fn cancel_while_blocked_on_lock_releases_the_queue_position() {
    // Holder (class 1) + waiter (class 2, canceled while queued) + more
    // waiters: removing the canceled waiter must not strand the others.
    let mk_holder = |_: &mut SimRng| {
        Plan::new()
            .lock(LockId(0), LockMode::Exclusive)
            .compute(400_000_000)
            .unlock(LockId(0))
    };
    let mk_waiter = |_: &mut SimRng| {
        Plan::new()
            .lock(LockId(0), LockMode::Exclusive)
            .compute(1_000_000)
            .unlock(LockId(0))
    };
    let mk_short = |_: &mut SimRng| {
        Plan::new()
            .lock(LockId(0), LockMode::Shared)
            .compute(100_000)
            .unlock(LockId(0))
    };
    let cfg = ServerConfig {
        n_locks: 1,
        ..Default::default()
    };
    let wl = WorkloadSpec::new(
        vec![
            ClassSpec::new("short", 1.0, mk_short),
            ClassSpec::new("holder", 0.0, mk_holder),
            ClassSpec::new("waiter", 0.0, mk_waiter),
        ],
        200.0,
    )
    .inject(SimTime::from_millis(100), ClassId(1))
    .inject(SimTime::from_millis(150), ClassId(2));
    let m = SimServer::new(
        cfg,
        wl,
        Box::new(CancelClass {
            class: ClassId(2),
            canceled: Vec::new(),
        }),
    )
    .run(sec(2), SimTime::ZERO);
    assert_eq!(m.canceled, 1);
    // Shorts behind the canceled exclusive waiter still finish.
    assert!(m.completed as f64 > m.offered as f64 * 0.98);
}

#[test]
fn cancel_while_queued_for_worker_frees_the_slot() {
    let cfg = ServerConfig {
        workers: 1,
        ..Default::default()
    };
    let wl = WorkloadSpec::new(
        vec![
            ClassSpec::new("slow", 0.0, |_| Plan::new().compute(500_000_000)),
            ClassSpec::new("queued", 0.0, |_| Plan::new().compute(1_000_000)),
            ClassSpec::new("fg", 1.0, |_| Plan::new().compute(1_000_000)),
        ],
        50.0,
    )
    .inject(SimTime::from_millis(10), ClassId(0))
    .inject(SimTime::from_millis(20), ClassId(1));
    let m = SimServer::new(
        cfg,
        wl,
        Box::new(CancelClass {
            class: ClassId(1),
            canceled: Vec::new(),
        }),
    )
    .run(sec(3), SimTime::ZERO);
    assert_eq!(m.canceled, 1);
    assert!(m.completed > 0);
}

#[test]
fn cancel_during_io_is_fenced_from_stale_completions() {
    // The IO request is canceled while BlockedIo; its IoStart/IoDone
    // events must not resurrect or double-finish it.
    let wl = WorkloadSpec::new(
        vec![
            ClassSpec::new("io_heavy", 0.0, |_| {
                let mut p = Plan::new();
                for _ in 0..50 {
                    p = p.io(20_000_000);
                }
                p
            }),
            ClassSpec::new("fg", 1.0, |_| Plan::new().io(100_000)),
        ],
        500.0,
    )
    .inject(SimTime::from_millis(100), ClassId(0));
    let m = SimServer::new(
        ServerConfig::default(),
        wl,
        Box::new(CancelClass {
            class: ClassId(0),
            canceled: Vec::new(),
        }),
    )
    .run(sec(3), SimTime::ZERO);
    assert_eq!(m.canceled, 1);
    assert!(m.completed as f64 > m.offered as f64 * 0.99);
}

/// Actions against unknown or finished request ids must be ignored.
struct HostileController {
    tick: u32,
}

impl Controller for HostileController {
    fn name(&self) -> &'static str {
        "hostile"
    }
    fn on_tick(&mut self, _now: SimTime, view: &ServerView) -> Vec<Action> {
        self.tick += 1;
        let mut actions = vec![
            Action::Cancel(RequestId(u64::MAX)),
            Action::Drop(RequestId(u64::MAX - 1)),
            Action::Throttle(RequestId(u64::MAX - 2), 1_000_000),
            Action::Reexec(RequestId(u64::MAX - 3)),
            Action::DropParked(RequestId(u64::MAX - 4)),
        ];
        // Also re-cancel already-live requests repeatedly.
        for r in view.requests.iter().take(2) {
            actions.push(Action::Cancel(r.id));
            actions.push(Action::Cancel(r.id));
        }
        actions
    }
}

#[test]
fn hostile_actions_do_not_corrupt_the_server() {
    let wl = WorkloadSpec::new(
        vec![ClassSpec::new("fg", 1.0, |_| {
            Plan::new().compute(5_000_000)
        })],
        500.0,
    );
    let m = SimServer::new(
        ServerConfig::default(),
        wl,
        Box::new(HostileController { tick: 0 }),
    )
    .run(sec(2), SimTime::ZERO);
    // Some requests get canceled (twice-canceled must not double count
    // beyond once per request) but the server stays consistent.
    assert!(m.canceled > 0);
    assert_eq!(
        m.offered,
        m.completed + m.dropped + m.canceled + live_leak(&m)
    );
}

fn live_leak(m: &atropos_app::server::ServerMetrics) -> u64 {
    // Requests still in flight at run end are neither completed nor
    // dropped; tolerate the small residual window.
    m.live_at_end
}

#[test]
fn pool_quota_actions_apply_and_clear() {
    struct QuotaFlip {
        set: bool,
    }
    impl Controller for QuotaFlip {
        fn name(&self) -> &'static str {
            "quota"
        }
        fn on_tick(&mut self, now: SimTime, _v: &ServerView) -> Vec<Action> {
            if !self.set && now >= SimTime::from_millis(200) {
                self.set = true;
                return vec![Action::SetPoolQuota(
                    PoolId(0),
                    atropos_app::ids::ClientId(0),
                    Some(8),
                )];
            }
            Vec::new()
        }
    }
    let cfg = ServerConfig {
        pools: vec![BufferPoolConfig {
            capacity: 1024,
            hot_keys: 64,
            zipf_theta: 0.5,
            hit_ns: 100,
            miss_ns: 1_000,
            scan_miss_ns: 1_000,
            evict_ns: 100,
        }],
        ..Default::default()
    };
    let wl = WorkloadSpec::new(
        vec![ClassSpec::new("touch", 1.0, |rng| {
            let base = rng.below(1 << 20);
            Plan::new().pool_scan(PoolId(0), 16, base)
        })],
        500.0,
    )
    .clients(1);
    let m = SimServer::new(cfg, wl, Box::new(QuotaFlip { set: false })).run(sec(2), SimTime::ZERO);
    // The quota makes every post-quota scan self-evict, but everything
    // still completes.
    assert!(m.completed as f64 > m.offered as f64 * 0.99);
}

#[test]
fn ticket_capacity_action_unblocks_waiters() {
    struct Grow;
    impl Controller for Grow {
        fn name(&self) -> &'static str {
            "grow"
        }
        fn on_tick(&mut self, now: SimTime, view: &ServerView) -> Vec<Action> {
            if now >= SimTime::from_millis(500) && view.queues[0].2 > 0 {
                return vec![Action::SetQueueCapacity(QueueId(0), 64)];
            }
            Vec::new()
        }
    }
    let cfg = ServerConfig {
        queues: vec![1],
        ..Default::default()
    };
    let wl = WorkloadSpec::new(
        vec![ClassSpec::new("q", 1.0, |_| {
            Plan::new()
                .enter(QueueId(0))
                .compute(5_000_000)
                .leave(QueueId(0))
        })],
        400.0, // 2x the single-ticket capacity of 200/s
    );
    let m = SimServer::new(cfg, wl, Box::new(Grow)).run(sec(3), sec(1));
    // After the capacity grows, the backlog drains and throughput matches
    // the offered load.
    assert!(
        m.completed as f64 > 400.0 * 2.0 * 0.9,
        "completed {}",
        m.completed
    );
}

#[test]
fn outcome_accounting_is_conserved_without_control() {
    let wl = WorkloadSpec::new(
        vec![ClassSpec::new("fg", 1.0, |_| {
            Plan::new().compute(2_000_000)
        })],
        2_000.0,
    );
    let m =
        SimServer::new(ServerConfig::default(), wl, Box::new(NoControl)).run(sec(3), SimTime::ZERO);
    // No cancellation, no drops: everything offered either completed or
    // is within the tiny in-flight residue at run end.
    assert_eq!(m.canceled, 0);
    assert_eq!(m.dropped, 0);
    assert!(
        m.offered - m.completed < 32,
        "residue {}",
        m.offered - m.completed
    );
}

/// Controllers observe consistent finish notifications: one terminal
/// outcome per request, no outcome after a terminal one.
struct OutcomeAudit {
    finished: std::collections::HashMap<RequestId, Outcome>,
    violations: u64,
}

impl Controller for OutcomeAudit {
    fn name(&self) -> &'static str {
        "audit"
    }
    fn on_finish(&mut self, _now: SimTime, req: &atropos_app::request::Request, outcome: Outcome) {
        if self.finished.insert(req.id, outcome).is_some() {
            self.violations += 1;
        }
    }
    fn on_tick(&mut self, _now: SimTime, view: &ServerView) -> Vec<Action> {
        // Randomly drop a live request now and then to exercise both paths.
        view.requests
            .iter()
            .take(1)
            .map(|r| Action::Drop(r.id))
            .collect()
    }
}

#[test]
fn each_request_finishes_exactly_once() {
    let wl = WorkloadSpec::new(
        vec![ClassSpec::new("fg", 1.0, |_| {
            Plan::new().compute(3_000_000)
        })],
        1_000.0,
    );
    let mut audit = OutcomeAudit {
        finished: std::collections::HashMap::new(),
        violations: 0,
    };
    // Run through a raw pointer dance: controller ownership moves into
    // the server, so audit via a second pass isn't possible — assert
    // through drop/complete conservation instead.
    audit.violations = 0;
    let m = SimServer::new(ServerConfig::default(), wl, Box::new(audit)).run(sec(2), SimTime::ZERO);
    assert!(m.dropped > 0);
    assert!(m.completed + m.dropped <= m.offered);
}
