//! Property-based tests for the application resources.

use atropos_app::ids::{ClientId, LockId, RequestId};
use atropos_app::op::{AccessPattern, LockMode};
use atropos_app::resources::bufferpool::{BufferPool, BufferPoolConfig};
use atropos_app::resources::lock::LockManager;
use atropos_app::resources::ticket::TicketQueue;
use atropos_sim::SimRng;
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum LockEv {
    Acquire(u8, bool), // request, exclusive?
    Release(u8),
}

fn lock_ev() -> impl Strategy<Value = LockEv> {
    prop_oneof![
        (0u8..16, any::<bool>()).prop_map(|(r, x)| LockEv::Acquire(r, x)),
        (0u8..16).prop_map(LockEv::Release),
    ]
}

proptest! {
    /// Lock safety: at no point do an exclusive holder and any other
    /// holder coexist, for arbitrary acquire/release interleavings.
    #[test]
    fn lock_manager_safety(evs in prop::collection::vec(lock_ev(), 0..200)) {
        let mut m = LockManager::new(1);
        let l = LockId(0);
        let mut live: HashSet<u8> = HashSet::new(); // requests in the system
        let mut exclusive: HashSet<u8> = HashSet::new();
        for ev in evs {
            match ev {
                LockEv::Acquire(r, excl) => {
                    if live.contains(&r) {
                        continue; // one outstanding interaction per request
                    }
                    live.insert(r);
                    if excl {
                        exclusive.insert(r);
                    }
                    let mode = if excl { LockMode::Exclusive } else { LockMode::Shared };
                    m.acquire(l, RequestId(r as u64), mode);
                }
                LockEv::Release(r) => {
                    if !live.contains(&r) {
                        continue;
                    }
                    live.remove(&r);
                    let was_holder = m.holders(l).contains(&RequestId(r as u64));
                    if was_holder {
                        m.release(l, RequestId(r as u64));
                    } else {
                        m.remove_waiter(l, RequestId(r as u64));
                    }
                    if exclusive.remove(&r) {}
                }
            }
            // Safety invariant.
            let holders = m.holders(l);
            let excl_holders = holders
                .iter()
                .filter(|h| exclusive.contains(&(h.0 as u8)))
                .count();
            if excl_holders > 0 {
                prop_assert_eq!(holders.len(), 1, "exclusive holder shares the lock");
            }
        }
    }

    /// Ticket queues never exceed capacity and conserve requests.
    #[test]
    fn ticket_queue_conservation(cap in 1usize..8, n in 1u64..64) {
        let mut q = TicketQueue::new(cap);
        for i in 0..n {
            q.enter(RequestId(i));
            prop_assert!(q.active() <= cap);
        }
        prop_assert_eq!(q.active() as u64 + q.queued() as u64, n);
        let mut served = q.active() as u64;
        let holders: Vec<_> = q.holders().to_vec();
        let mut to_leave: Vec<_> = holders;
        while let Some(r) = to_leave.pop() {
            let granted = q.leave(r);
            served += granted.len() as u64;
            to_leave.extend(granted);
            prop_assert!(q.active() <= cap);
        }
        prop_assert_eq!(served, n);
        prop_assert_eq!(q.active(), 0);
        prop_assert_eq!(q.queued(), 0);
    }

    /// The buffer pool never exceeds capacity and per-request residency
    /// always sums to the occupancy.
    #[test]
    fn bufferpool_capacity_and_attribution(
        cap in 8usize..128,
        accesses in prop::collection::vec((0u64..8, 1u64..32, any::<bool>()), 1..60),
        seed in any::<u64>(),
    ) {
        let mut pool = BufferPool::new(BufferPoolConfig {
            capacity: cap,
            hot_keys: 32,
            zipf_theta: 0.9,
            hit_ns: 1,
            miss_ns: 10,
            scan_miss_ns: 5,
            evict_ns: 1,
        });
        let mut rng = SimRng::new(seed);
        let mut requests = HashSet::new();
        for (req, pages, scan) in accesses {
            requests.insert(req);
            let pattern = if scan {
                AccessPattern::Scan { base: req * 10_000 }
            } else {
                AccessPattern::Skewed
            };
            let out = pool.access(RequestId(req), ClientId(0), pattern, pages, 0, &mut rng);
            prop_assert!(pool.len() <= cap, "occupancy {} > cap {cap}", pool.len());
            prop_assert_eq!(out.hits + out.misses, pages);
            let attributed: u64 = requests
                .iter()
                .map(|&r| pool.resident_of(RequestId(r)))
                .sum();
            prop_assert_eq!(attributed, pool.len() as u64);
        }
    }

    /// Quotas are respected: a quota'd client's residency never exceeds
    /// its quota after its own accesses.
    #[test]
    fn bufferpool_quota_respected(quota in 1u64..32, pages in prop::collection::vec(1u64..16, 1..30)) {
        let mut pool = BufferPool::new(BufferPoolConfig {
            capacity: 4096,
            hot_keys: 16,
            zipf_theta: 0.5,
            hit_ns: 1,
            miss_ns: 10,
            scan_miss_ns: 5,
            evict_ns: 1,
        });
        pool.set_quota(ClientId(1), Some(quota));
        let mut rng = SimRng::new(9);
        let mut base = 0;
        for p in pages {
            base += 100_000;
            pool.access(
                RequestId(1),
                ClientId(1),
                AccessPattern::Scan { base },
                p,
                0,
                &mut rng,
            );
            prop_assert!(
                pool.resident_of_client(ClientId(1)) <= quota + 1,
                "client residency {} over quota {quota}",
                pool.resident_of_client(ClientId(1))
            );
        }
    }
}
