//! End-to-end integration: the Atropos controller must detect the
//! backup-behind-scan convoy (the paper's case c1 / Figure 3 dynamics),
//! cancel the culprit, and restore throughput — while dropping (almost)
//! nothing. This exercises the full stack: server → trace events → glue →
//! runtime accounting → detector → estimator → Algorithm 1 → cancel
//! initiator → re-execution.

use atropos::AtroposConfig;
use atropos_app::apps::minidb::{MiniDb, MiniDbConfig};
use atropos_app::glue::AtroposController;
use atropos_app::ids::ClassId;
use atropos_app::server::SimServer;
use atropos_app::workload::WorkloadSpec;
use atropos_app::NoControl;
use atropos_sim::SimTime;

fn convoy_workload(db: &MiniDb, qps: f64) -> WorkloadSpec {
    WorkloadSpec::new(
        vec![
            db.point_select(0.65),
            db.row_update(0.35),
            db.table_scan(0.0, 3_000_000_000), // 3 s scan holding the table lock
            db.backup(100_000_000),            // 0.5 s of copying once granted
        ],
        qps,
    )
    .inject(SimTime::from_millis(1200), ClassId(2))
    .inject(SimTime::from_millis(1500), ClassId(3))
}

#[test]
fn atropos_restores_throughput_in_backup_convoy() {
    let db = MiniDb::new(MiniDbConfig::default());
    // Long enough that the uncontrolled convoy resolves and its victims'
    // latencies are observed (otherwise they are censored at run end).
    let duration = SimTime::from_secs(8);
    let warmup = SimTime::from_secs(1);
    let qps = 8_000.0;

    let uncontrolled = SimServer::new(
        db.server_config(),
        convoy_workload(&db, qps),
        Box::new(NoControl),
    )
    .run(duration, warmup);

    let mitigated = SimServer::new_with(
        db.server_config(),
        convoy_workload(&db, qps),
        |clock, groups| {
            Box::new(AtroposController::new(
                AtroposConfig::default().with_slo_ns(20_000_000),
                clock,
                groups,
                true,
            ))
        },
    )
    .run(duration, warmup);

    let base = qps * 7.0; // ideal completions over the measured 7 s
    let mit_frac = mitigated.completed as f64 / base;
    // Atropos keeps goodput near the ideal by canceling the culprit.
    assert!(
        mit_frac > 0.90,
        "atropos kept only {mit_frac:.2} of goodput"
    );
    assert!(mitigated.canceled >= 1, "no cancellation was issued");
    // Targeted cancellation, not indiscriminate dropping.
    let drop_rate = mitigated.dropped as f64 / mitigated.offered.max(1) as f64;
    assert!(drop_rate < 0.01, "drop rate {drop_rate}");
    // The uncontrolled run pays for the convoy in tail latency (once the
    // victims drain) by at least an order of magnitude over Atropos.
    assert!(
        uncontrolled.latency.p99() > 10 * mitigated.latency.p99(),
        "p99 mitigated {} vs uncontrolled {}",
        mitigated.latency.p99(),
        uncontrolled.latency.p99()
    );
}

#[test]
fn atropos_is_quiet_without_overload() {
    let db = MiniDb::new(MiniDbConfig::default());
    let wl = WorkloadSpec::new(vec![db.point_select(0.65), db.row_update(0.35)], 8_000.0);
    let m = SimServer::new_with(db.server_config(), wl, |clock, groups| {
        Box::new(AtroposController::new(
            AtroposConfig::default().with_slo_ns(20_000_000),
            clock,
            groups,
            true,
        ))
    })
    .run(SimTime::from_secs(4), SimTime::from_secs(1));
    assert_eq!(m.canceled, 0, "canceled requests on a healthy workload");
    assert_eq!(m.dropped, 0);
    assert!(m.completed as f64 > 8_000.0 * 3.0 * 0.98);
}
