//! The overload-controller interface.
//!
//! Every system compared in the paper's evaluation — Atropos, Protego,
//! pBox, DARC, PARTIES, and plain admission control — is implemented as a
//! [`Controller`] over the same server hooks, so the comparison isolates
//! the control *policy* exactly as the paper's integrations do. The server
//! invokes hooks on request lifecycle events and resource trace events,
//! and applies the [`Action`]s the controller returns from its periodic
//! tick.

use atropos_sim::SimTime;

use crate::ids::{ClassId, ClientId, PoolId, QueueId, RequestId};
use crate::request::{Outcome, Request};

/// Which underlying simulator object a trace event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimResource {
    /// A lock in the server's lock manager.
    Lock(crate::ids::LockId),
    /// A buffer pool / cache.
    Pool(PoolId),
    /// A ticket queue.
    Queue(QueueId),
    /// The shared IO device.
    Io,
    /// The GC heap.
    Heap,
    /// The worker (accept) pool.
    WorkerPool,
}

pub use atropos_substrate::protocol::{ResourceEvent, TraceKind};

/// Admission decision for an arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Accept the request.
    Admit,
    /// Reject it (counts as a drop).
    Reject,
}

pub use atropos_substrate::protocol::Action;

/// A snapshot of one live request, built for controller ticks.
#[derive(Debug, Clone)]
pub struct RequestView {
    /// Request id.
    pub id: RequestId,
    /// Class.
    pub class: ClassId,
    /// Client.
    pub client: ClientId,
    /// Arrival time.
    pub arrival: SimTime,
    /// Cumulative lock/queue waiting time (Protego's signal), ns.
    pub wait_ns: u64,
    /// Duration of the current blocking wait, ns (0 if running).
    pub current_wait_ns: u64,
    /// Buffer pool pages currently attributed to this request.
    pub resident_pages: u64,
    /// Heap bytes retained.
    pub heap_bytes: u64,
    /// Fractional progress.
    pub progress: f64,
    /// Background job.
    pub background: bool,
    /// May be canceled.
    pub cancellable: bool,
    /// Currently blocked (waiting on a lock/queue/IO).
    pub blocked: bool,
}

/// Recent end-to-end performance (latest closed window).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecentPerf {
    /// Completions per second.
    pub throughput_qps: f64,
    /// p50 latency, ns.
    pub p50_ns: u64,
    /// p99 latency, ns.
    pub p99_ns: u64,
    /// Completions in the window.
    pub completed: u64,
}

/// What a controller can observe at each tick.
#[derive(Debug, Clone)]
pub struct ServerView {
    /// Current time.
    pub now: SimTime,
    /// Live (unfinished) requests.
    pub requests: Vec<RequestView>,
    /// Latest closed-window performance.
    pub recent: RecentPerf,
    /// Per-client p99 latency over the last window (PARTIES' signal).
    pub client_p99: Vec<(ClientId, u64)>,
    /// `(queue, active, waiting)` for each ticket queue.
    pub queues: Vec<(QueueId, usize, usize)>,
    /// Workers in use.
    pub workers_active: usize,
    /// Requests waiting for a worker.
    pub workers_queued: usize,
}

/// An overload controller.
///
/// All hooks have no-op defaults so simple controllers implement only what
/// they need.
pub trait Controller {
    /// Name used in experiment output.
    fn name(&self) -> &'static str;

    /// Admission decision for an arriving request.
    fn on_arrival(&mut self, _now: SimTime, _req: &Request) -> AdmitDecision {
        AdmitDecision::Admit
    }

    /// A request started executing on a worker.
    fn on_start(&mut self, _now: SimTime, _req: &Request) {}

    /// A request reached a terminal outcome.
    fn on_finish(&mut self, _now: SimTime, _req: &Request, _outcome: Outcome) {}

    /// A resource trace event was emitted.
    fn on_resource_event(&mut self, _now: SimTime, _ev: &ResourceEvent) {}

    /// A request made progress (called at chunk boundaries).
    fn on_progress(&mut self, _now: SimTime, _req: &Request) {}

    /// Periodic control decision.
    fn on_tick(&mut self, _now: SimTime, _view: &ServerView) -> Vec<Action> {
        Vec::new()
    }

    /// Virtual-time cost charged to the traced request per trace event
    /// (models instrumentation overhead, §5.5).
    fn per_event_overhead_ns(&self) -> u64 {
        0
    }
}

/// The uncontrolled baseline (the "Overload" line in Figure 10).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoControl;

impl Controller for NoControl {
    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_control_admits_everything() {
        let mut c = NoControl;
        let req = Request::new(
            RequestId(1),
            ClassId(0),
            ClientId(0),
            crate::op::Plan::new(),
            SimTime::ZERO,
        );
        assert_eq!(c.on_arrival(SimTime::ZERO, &req), AdmitDecision::Admit);
        assert!(c
            .on_tick(
                SimTime::ZERO,
                &ServerView {
                    now: SimTime::ZERO,
                    requests: vec![],
                    recent: RecentPerf::default(),
                    client_p99: vec![],
                    queues: vec![],
                    workers_active: 0,
                    workers_queued: 0,
                }
            )
            .is_empty());
        assert_eq!(c.per_event_overhead_ns(), 0);
        assert_eq!(c.name(), "none");
    }
}
