//! Workload generation.
//!
//! Replaces the paper's benchmark drivers (Sysbench, ApacheBench, Rally,
//! Solrbench, etcdbench): an open-loop Poisson arrival process over a
//! weighted mix of request classes, plus timed one-off injections (the
//! scan-at-5s / backup-at-20s schedules of §2.1) and recurring background
//! jobs (purge, vacuum, WAL writer).

use atropos_sim::{SimRng, SimTime};

use crate::ids::{ClassId, ClientId};
use crate::op::Plan;

/// Builds a (possibly randomized) plan instance for a class.
pub type PlanFactory = Box<dyn Fn(&mut SimRng) -> Plan + Send>;

/// A request class.
pub struct ClassSpec {
    /// Name used in output.
    pub name: String,
    /// Plan template.
    pub make_plan: PlanFactory,
    /// Relative weight in the open-loop mix (0 = injection/background
    /// only).
    pub weight: f64,
    /// Fixed owning client, or `None` to round-robin over the workload's
    /// clients.
    pub client: Option<ClientId>,
    /// Whether controllers may cancel requests of this class (the paper's
    /// `createCancel` registration decision).
    pub cancellable: bool,
    /// Background job class (no SLO, excluded from latency metrics).
    pub background: bool,
}

impl std::fmt::Debug for ClassSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassSpec")
            .field("name", &self.name)
            .field("weight", &self.weight)
            .field("cancellable", &self.cancellable)
            .field("background", &self.background)
            .finish()
    }
}

impl ClassSpec {
    /// Creates a foreground, cancellable class.
    pub fn new(
        name: impl Into<String>,
        weight: f64,
        make_plan: impl Fn(&mut SimRng) -> Plan + Send + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            make_plan: Box::new(make_plan),
            weight,
            client: None,
            cancellable: true,
            background: false,
        }
    }

    /// Pins the class to a client.
    pub fn with_client(mut self, client: ClientId) -> Self {
        self.client = Some(client);
        self
    }

    /// Marks the class non-cancellable.
    pub fn non_cancellable(mut self) -> Self {
        self.cancellable = false;
        self
    }

    /// Marks the class as a background job.
    pub fn background(mut self) -> Self {
        self.background = true;
        self
    }
}

/// A one-off request injected at a fixed time.
#[derive(Debug, Clone, Copy)]
pub struct Injection {
    /// When to inject.
    pub at: SimTime,
    /// Which class.
    pub class: ClassId,
}

/// A recurring background job: first run at `start`, next run `interval`
/// after each completion.
#[derive(Debug, Clone, Copy)]
pub struct BackgroundJob {
    /// Which class.
    pub class: ClassId,
    /// First spawn time.
    pub start: SimTime,
    /// Gap between a run's completion and the next spawn.
    pub interval: SimTime,
}

/// A complete workload description.
pub struct WorkloadSpec {
    /// Request classes; `ClassId(i)` refers to `classes[i]`.
    pub classes: Vec<ClassSpec>,
    /// Open-loop arrival rate (requests per second).
    pub arrival_qps: f64,
    /// Timed one-off injections.
    pub injections: Vec<Injection>,
    /// Recurring background jobs.
    pub background: Vec<BackgroundJob>,
    /// Number of round-robin clients for classes without a fixed client.
    pub n_clients: u16,
}

impl std::fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("classes", &self.classes.len())
            .field("arrival_qps", &self.arrival_qps)
            .field("injections", &self.injections.len())
            .field("background", &self.background.len())
            .finish()
    }
}

impl WorkloadSpec {
    /// Creates a workload with the given classes and arrival rate.
    pub fn new(classes: Vec<ClassSpec>, arrival_qps: f64) -> Self {
        Self {
            classes,
            arrival_qps,
            injections: Vec::new(),
            background: Vec::new(),
            n_clients: 8,
        }
    }

    /// Adds a timed injection.
    pub fn inject(mut self, at: SimTime, class: ClassId) -> Self {
        self.injections.push(Injection { at, class });
        self
    }

    /// Adds a recurring background job.
    pub fn recurring(mut self, class: ClassId, start: SimTime, interval: SimTime) -> Self {
        self.background.push(BackgroundJob {
            class,
            start,
            interval,
        });
        self
    }

    /// Sets the client count.
    pub fn clients(mut self, n: u16) -> Self {
        self.n_clients = n.max(1);
        self
    }

    /// Samples a class id from the weighted mix.
    ///
    /// # Panics
    ///
    /// Panics if no class has positive weight.
    pub fn sample_class(&self, rng: &mut SimRng) -> ClassId {
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        assert!(total > 0.0, "workload has no weighted classes");
        let mut x = rng.f64() * total;
        for (i, c) in self.classes.iter().enumerate() {
            x -= c.weight;
            if x <= 0.0 && c.weight > 0.0 {
                return ClassId(i as u16);
            }
        }
        // Float round-off: fall back to the last weighted class.
        ClassId(
            self.classes
                .iter()
                .rposition(|c| c.weight > 0.0)
                .expect("total > 0 implies a weighted class") as u16,
        )
    }

    /// Mean inter-arrival gap, or `None` for a closed workload
    /// (`arrival_qps == 0`).
    pub fn mean_gap(&self) -> Option<SimTime> {
        if self.arrival_qps <= 0.0 {
            None
        } else {
            Some(SimTime::from_secs_f64(1.0 / self.arrival_qps))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> Vec<ClassSpec> {
        vec![
            ClassSpec::new("select", 0.7, |_| Plan::new().compute(100_000)),
            ClassSpec::new("update", 0.3, |_| Plan::new().compute(150_000)),
            ClassSpec::new("scan", 0.0, |_| Plan::new().compute(5_000_000)),
        ]
    }

    #[test]
    fn sample_respects_weights() {
        let w = WorkloadSpec::new(classes(), 1000.0);
        let mut rng = SimRng::new(7);
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[w.sample_class(&mut rng).0 as usize] += 1;
        }
        assert!((counts[0] as f64 - 7000.0).abs() < 300.0, "{counts:?}");
        assert!((counts[1] as f64 - 3000.0).abs() < 300.0, "{counts:?}");
        assert_eq!(counts[2], 0); // zero-weight classes never sampled
    }

    #[test]
    fn mean_gap_inverts_rate() {
        let w = WorkloadSpec::new(classes(), 10_000.0);
        assert_eq!(w.mean_gap(), Some(SimTime::from_micros(100)));
        let closed = WorkloadSpec::new(classes(), 0.0);
        assert_eq!(closed.mean_gap(), None);
    }

    #[test]
    fn builders_accumulate() {
        let w = WorkloadSpec::new(classes(), 100.0)
            .inject(SimTime::from_secs(5), ClassId(2))
            .recurring(ClassId(2), SimTime::ZERO, SimTime::from_secs(1))
            .clients(4);
        assert_eq!(w.injections.len(), 1);
        assert_eq!(w.background.len(), 1);
        assert_eq!(w.n_clients, 4);
    }

    #[test]
    #[should_panic(expected = "no weighted classes")]
    fn sampling_without_weights_panics() {
        let w = WorkloadSpec::new(vec![ClassSpec::new("bg", 0.0, |_| Plan::new())], 100.0);
        let mut rng = SimRng::new(1);
        let _ = w.sample_class(&mut rng);
    }

    #[test]
    fn class_modifiers_apply() {
        let c = ClassSpec::new("x", 1.0, |_| Plan::new())
            .with_client(ClientId(3))
            .non_cancellable()
            .background();
        assert_eq!(c.client, Some(ClientId(3)));
        assert!(!c.cancellable);
        assert!(c.background);
    }
}
