//! The simulated application server.
//!
//! [`SimServer`] executes a [`WorkloadSpec`] over a set of application
//! resources with worker-pool (thread-per-request) semantics:
//!
//! - arriving requests are admitted by the controller, then wait for a
//!   worker; a request keeps its worker while blocked on locks, tickets,
//!   or IO (the thread model of MySQL/Apache that makes pool exhaustion
//!   possible),
//! - plans execute in bounded *chunks*; the cancellation flag is honored
//!   at chunk boundaries and blocking points, mirroring the checkpoint
//!   pattern real applications use for safe cancellation (§2.4),
//! - every resource interaction emits a trace event to the controller —
//!   the same get/free/slowBy protocol the paper instruments into its six
//!   applications,
//! - canceled foreground requests are *parked* and can be re-executed or
//!   abandoned later (the §4 fairness mechanism), with end-to-end latency
//!   measured from the original arrival.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use atropos_metrics::{LatencyHistogram, WindowedSeries};
use atropos_sim::{Clock, EventQueue, SimRng, SimTime, VirtualClock};

use crate::controller::{
    Action, AdmitDecision, Controller, RecentPerf, RequestView, ResourceEvent, ServerView,
    SimResource, TraceKind,
};
#[cfg(test)]
use crate::ids::PoolId;
use crate::ids::{ClassId, ClientId, QueueId, RequestId};
#[cfg(test)]
use crate::op::LockMode;
use crate::op::{Op, Plan};
use crate::request::{Outcome, Request, RequestState};
use crate::resources::{
    bufferpool::{BufferPool, BufferPoolConfig},
    heap::{Heap, HeapConfig},
    iodev::IoDevice,
    lock::{AcquireResult, LockManager},
    ticket::{EnterResult, TicketQueue},
};
use crate::workload::WorkloadSpec;

/// One logical application resource: a named group of simulator objects
/// traced together (e.g. all table locks as one "table_lock" resource).
#[derive(Debug, Clone)]
pub struct ResourceGroupDef {
    /// Name (used when registering with Atropos).
    pub name: String,
    /// Atropos resource type.
    pub rtype: atropos::ResourceType,
    /// Member simulator objects.
    pub members: Vec<SimResource>,
}

/// Server parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// RNG seed.
    pub seed: u64,
    /// Worker (thread) pool size.
    pub workers: usize,
    /// Number of locks in the lock manager.
    pub n_locks: usize,
    /// Buffer pools / caches.
    pub pools: Vec<BufferPoolConfig>,
    /// Ticket queue capacities.
    pub queues: Vec<usize>,
    /// Optional GC heap.
    pub heap: Option<HeapConfig>,
    /// Maximum chunk of compute executed between cancellation checkpoints.
    pub chunk_ns: u64,
    /// Maximum pages per pool-access chunk.
    pub pages_per_chunk: u64,
    /// Controller tick interval.
    pub control_interval_ns: u64,
    /// Metrics window width.
    pub window_ns: u64,
    /// Traced resource groups.
    pub groups: Vec<ResourceGroupDef>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            workers: 64,
            n_locks: 0,
            pools: Vec::new(),
            queues: Vec::new(),
            heap: None,
            chunk_ns: 2_000_000, // 2 ms checkpoints
            pages_per_chunk: 512,
            control_interval_ns: 10_000_000, // 10 ms control loop
            window_ns: 100_000_000,
            groups: Vec::new(),
        }
    }
}

/// End-of-run counters and distributions.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Client requests offered after warmup.
    pub offered: u64,
    /// Client requests completed after warmup.
    pub completed: u64,
    /// Requests dropped (rejected, victim-dropped, or abandoned).
    pub dropped: u64,
    /// Cancellations executed.
    pub canceled: u64,
    /// Re-executions of canceled requests.
    pub retried: u64,
    /// End-to-end latency of completed client requests.
    pub latency: LatencyHistogram,
    /// Per-window completion series.
    pub series: WindowedSeries,
    /// Trace events emitted.
    pub trace_events: u64,
    /// Offered client requests still in flight when the run ended
    /// (neither completed, dropped, nor canceled — the residual window).
    pub live_at_end: u64,
    /// Every executed cancellation in issue order, with the canceled
    /// request's identity — the *decision trace* differential tests
    /// compare against the live harness (who was canceled, in what
    /// order). Includes warmup-period cancellations: identity questions
    /// ("was the culprit class targeted?") are not windowed.
    pub cancel_log: Vec<CancelRecord>,
}

/// One executed cancellation (see [`ServerMetrics::cancel_log`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancelRecord {
    /// The canceled request.
    pub req: RequestId,
    /// Its workload class (culprit classes are known per scenario).
    pub class: ClassId,
    /// Its client.
    pub client: ClientId,
    /// Virtual time the cancellation was executed.
    pub at: SimTime,
}

#[derive(Debug, Clone)]
struct Parked {
    plan: Plan,
    class: ClassId,
    client: ClientId,
    arrival: SimTime,
    background: bool,
    epoch: u64,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival,
    Inject(usize),
    SpawnBackground(usize),
    OpDone { req: RequestId, epoch: u64 },
    IoStart { req: RequestId, epoch: u64 },
    IoDone { req: RequestId, epoch: u64 },
    ControlTick,
    End,
}

/// The simulated server.
pub struct SimServer {
    clock: Arc<VirtualClock>,
    cfg: ServerConfig,
    workload: WorkloadSpec,
    queue: EventQueue<Event>,
    rng: SimRng,
    locks: LockManager,
    pools: Vec<BufferPool>,
    tickets: Vec<TicketQueue>,
    heap: Option<Heap>,
    io: IoDevice,
    gc_until: SimTime,
    requests: HashMap<RequestId, Request>,
    parked: HashMap<RequestId, Parked>,
    accept_queue: VecDeque<RequestId>,
    runnable: VecDeque<RequestId>,
    active_workers: usize,
    class_active: HashMap<ClassId, usize>,
    class_limit: HashMap<ClassId, usize>,
    next_req: u64,
    next_client: u16,
    controller: Box<dyn Controller>,
    group_of: HashMap<SimResource, usize>,
    metrics: ServerMetrics,
    client_window: HashMap<ClientId, LatencyHistogram>,
    warmup: SimTime,
    end: SimTime,
}

impl SimServer {
    /// Creates a server.
    pub fn new(cfg: ServerConfig, workload: WorkloadSpec, controller: Box<dyn Controller>) -> Self {
        let clock = Arc::new(VirtualClock::new());
        let mut group_of = HashMap::new();
        for (i, g) in cfg.groups.iter().enumerate() {
            for m in &g.members {
                group_of.insert(*m, i);
            }
        }
        let window_ns = cfg.window_ns;
        let pools = cfg
            .pools
            .iter()
            .cloned()
            .map(|p| {
                let hot = p.hot_keys;
                let mut pool = BufferPool::new(p);
                pool.prewarm(hot);
                pool
            })
            .collect();
        Self {
            rng: SimRng::new(cfg.seed),
            locks: LockManager::new(cfg.n_locks),
            pools,
            tickets: cfg.queues.iter().map(|&c| TicketQueue::new(c)).collect(),
            heap: cfg.heap.clone().map(Heap::new),
            io: IoDevice::new(),
            gc_until: SimTime::ZERO,
            requests: HashMap::new(),
            parked: HashMap::new(),
            accept_queue: VecDeque::new(),
            runnable: VecDeque::new(),
            active_workers: 0,
            class_active: HashMap::new(),
            class_limit: HashMap::new(),
            next_req: 1,
            next_client: 0,
            controller,
            group_of,
            metrics: ServerMetrics {
                offered: 0,
                completed: 0,
                dropped: 0,
                canceled: 0,
                retried: 0,
                latency: LatencyHistogram::new(),
                series: WindowedSeries::new(0, window_ns),
                trace_events: 0,
                live_at_end: 0,
                cancel_log: Vec::new(),
            },
            client_window: HashMap::new(),
            warmup: SimTime::ZERO,
            end: SimTime::ZERO,
            queue: EventQueue::new(),
            clock,
            cfg,
            workload,
        }
    }

    /// Creates a server whose controller is built from the server's clock
    /// and traced resource groups — the natural way to attach controllers
    /// (like Atropos) whose runtime must share the server's time base.
    pub fn new_with<F>(cfg: ServerConfig, workload: WorkloadSpec, make: F) -> Self
    where
        F: FnOnce(Arc<VirtualClock>, &[ResourceGroupDef]) -> Box<dyn Controller>,
    {
        let mut server = Self::new(cfg, workload, Box::new(crate::NoControl));
        let controller = make(server.clock.clone(), &server.cfg.groups);
        server.controller = controller;
        server
    }

    /// The virtual clock (share it with an Atropos runtime).
    pub fn clock(&self) -> Arc<VirtualClock> {
        self.clock.clone()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Runs the workload for `duration`; metrics ignore the first
    /// `warmup`. Returns the collected metrics.
    pub fn run(mut self, duration: SimTime, warmup: SimTime) -> ServerMetrics {
        self.warmup = warmup;
        self.end = duration;
        if let Some(gap) = self.workload.mean_gap() {
            let first = SimTime::from_nanos(self.rng.exp(gap.as_nanos() as f64) as u64);
            self.queue.schedule(first, Event::Arrival);
        }
        for (i, inj) in self.workload.injections.iter().enumerate() {
            self.queue.schedule(inj.at, Event::Inject(i));
        }
        for (i, bg) in self.workload.background.iter().enumerate() {
            self.queue.schedule(bg.start, Event::SpawnBackground(i));
        }
        self.queue.schedule(
            SimTime::from_nanos(self.cfg.control_interval_ns),
            Event::ControlTick,
        );
        self.queue.schedule(duration, Event::End);
        while let Some((t, ev)) = self.queue.pop() {
            self.clock.advance_to(t);
            if matches!(ev, Event::End) {
                break;
            }
            self.dispatch(ev);
            self.drain_runnable();
        }
        // Requests still in flight when the run ends were counted in
        // `offered` (unless they arrived during warmup, are background
        // jobs, or are retries of an already-counted cancellation) but
        // reached no outcome; surface the residual so conservation checks
        // can balance offered against outcomes exactly.
        self.metrics.live_at_end = self
            .requests
            .values()
            .filter(|r| !r.background && !r.retry && r.arrival >= self.warmup)
            .count() as u64;
        self.metrics
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Arrival => self.handle_arrival(),
            Event::Inject(i) => {
                let class = self.workload.injections[i].class;
                self.spawn(class, None, false);
            }
            Event::SpawnBackground(i) => {
                let class = self.workload.background[i].class;
                self.spawn(class, Some(i), true);
            }
            Event::OpDone { req, epoch } => self.handle_op_done(req, epoch),
            Event::IoStart { req, epoch } => self.handle_io_start(req, epoch),
            Event::IoDone { req, epoch } => self.handle_io_done(req, epoch),
            Event::ControlTick => self.handle_control_tick(),
            Event::End => {}
        }
    }

    fn drain_runnable(&mut self) {
        while let Some(id) = self.runnable.pop_front() {
            self.run_request(id);
        }
    }

    // ---- arrivals ----

    fn handle_arrival(&mut self) {
        let now = self.now();
        if let Some(gap) = self.workload.mean_gap() {
            let next = now + SimTime::from_nanos(self.rng.exp(gap.as_nanos() as f64) as u64);
            if next < self.end {
                self.queue.schedule(next, Event::Arrival);
            }
        }
        let class = self.workload.sample_class(&mut self.rng);
        self.spawn(class, None, false);
    }

    fn spawn(&mut self, class: ClassId, recur_idx: Option<usize>, skip_admission: bool) {
        let now = self.now();
        let spec = &self.workload.classes[class.0 as usize];
        let plan = (spec.make_plan)(&mut self.rng);
        let client = spec.client.unwrap_or_else(|| {
            let c = ClientId(self.next_client % self.workload.n_clients);
            self.next_client = self.next_client.wrapping_add(1);
            c
        });
        let id = RequestId(self.next_req);
        self.next_req += 1;
        let mut req = Request::new(id, class, client, plan, now);
        req.cancellable = spec.cancellable;
        req.background = spec.background;
        req.recur_idx = recur_idx;
        if now >= self.warmup && !req.background {
            self.metrics.offered += 1;
        }
        if !skip_admission && self.controller.on_arrival(now, &req) == AdmitDecision::Reject {
            req.state = RequestState::Finished(Outcome::Dropped);
            if now >= self.warmup && !req.background {
                self.metrics.dropped += 1;
                self.metrics.series.record_drop(now.as_nanos());
            }
            self.controller.on_finish(now, &req, Outcome::Dropped);
            return;
        }
        req.wait_started = Some(now);
        self.requests.insert(id, req);
        self.accept_queue.push_back(id);
        self.emit(SimResource::WorkerPool, TraceKind::Slow, id, 1);
        self.try_dispatch();
    }

    fn class_allowed(&self, class: ClassId) -> bool {
        match self.class_limit.get(&class) {
            Some(&limit) => self.class_active.get(&class).copied().unwrap_or(0) < limit,
            None => true,
        }
    }

    fn try_dispatch(&mut self) {
        while self.active_workers < self.cfg.workers {
            let Some(pos) = self
                .accept_queue
                .iter()
                .position(|id| match self.requests.get(id) {
                    Some(r) => self.class_allowed(r.class),
                    None => true, // stale entry: remove below
                })
            else {
                break;
            };
            let id = self.accept_queue.remove(pos).expect("position valid");
            let Some(req) = self.requests.get_mut(&id) else {
                continue;
            };
            let now = self.clock.now();
            self.active_workers += 1;
            *self.class_active.entry(req.class).or_insert(0) += 1;
            req.has_worker = true;
            if req.started_at.is_none() {
                req.started_at = Some(now);
            }
            if let Some(ws) = req.wait_started.take() {
                req.lock_wait_ns += now.saturating_sub(ws).as_nanos();
            }
            req.state = RequestState::Running;
            self.emit(SimResource::WorkerPool, TraceKind::Get, id, 1);
            if let Some(r) = self.requests.get(&id) {
                let r = r.clone();
                self.controller.on_start(self.clock.now(), &r);
            }
            self.runnable.push_back(id);
        }
    }

    // ---- tracing ----

    fn emit(&mut self, res: SimResource, kind: TraceKind, req: RequestId, amount: u64) {
        let Some(&group) = self.group_of.get(&res) else {
            return;
        };
        self.metrics.trace_events += 1;
        let overhead = self.controller.per_event_overhead_ns();
        if overhead > 0 {
            if let Some(r) = self.requests.get_mut(&req) {
                r.carry_ns += overhead;
            }
        }
        let ev = ResourceEvent {
            group,
            kind,
            req,
            amount,
        };
        self.controller.on_resource_event(self.clock.now(), &ev);
    }

    fn emit_group(&mut self, group: usize, kind: TraceKind, req: RequestId, amount: u64) {
        self.metrics.trace_events += 1;
        let overhead = self.controller.per_event_overhead_ns();
        if overhead > 0 {
            if let Some(r) = self.requests.get_mut(&req) {
                r.carry_ns += overhead;
            }
        }
        let ev = ResourceEvent {
            group,
            kind,
            req,
            amount,
        };
        self.controller.on_resource_event(self.clock.now(), &ev);
    }

    // ---- the execution engine ----

    fn schedule_chunk(
        &mut self,
        id: RequestId,
        duration_ns: u64,
        progress: u64,
        work: u64,
        advance: bool,
        pending_get: Option<(usize, u64)>,
    ) {
        let now = self.now();
        let Some(req) = self.requests.get_mut(&id) else {
            return;
        };
        let extra = req.throttle_ns + req.carry_ns;
        req.carry_ns = 0;
        req.pending_progress = progress;
        req.pending_work = work;
        req.pending_advance = advance;
        req.pending_get = pending_get;
        req.state = RequestState::Running;
        let base = if self.gc_until > now {
            self.gc_until
        } else {
            now
        };
        let at = base + SimTime::from_nanos(duration_ns + extra);
        let epoch = req.epoch;
        self.queue.schedule(at, Event::OpDone { req: id, epoch });
    }

    fn run_request(&mut self, id: RequestId) {
        loop {
            let Some(req) = self.requests.get(&id) else {
                return;
            };
            if req.is_finished() {
                return;
            }
            if req.cancel_flag {
                self.abort(id);
                return;
            }
            let Some(op) = req.current_op() else {
                self.finish_request(id, Outcome::Completed);
                return;
            };
            let client = req.client;
            match op {
                Op::Compute { ns } => {
                    let done = self.requests[&id].op_progress;
                    let remaining = ns.saturating_sub(done);
                    let chunk = remaining.min(self.cfg.chunk_ns).max(1);
                    self.schedule_chunk(id, chunk, chunk, chunk / 1_000, done + chunk >= ns, None);
                    return;
                }
                Op::AcquireLock { lock, mode } => match self.locks.acquire(lock, id, mode) {
                    AcquireResult::Granted => {
                        self.emit(SimResource::Lock(lock), TraceKind::Get, id, 1);
                        let req = self.requests.get_mut(&id).expect("live");
                        req.held_locks.push(lock);
                        req.advance();
                    }
                    AcquireResult::Queued => {
                        self.emit(SimResource::Lock(lock), TraceKind::Slow, id, 1);
                        let now = self.now();
                        let req = self.requests.get_mut(&id).expect("live");
                        req.state = RequestState::BlockedLock(lock);
                        req.wait_started = Some(now);
                        return;
                    }
                },
                Op::ReleaseLock { lock } => {
                    let req = self.requests.get_mut(&id).expect("live");
                    req.held_locks.retain(|l| *l != lock);
                    req.advance();
                    self.emit(SimResource::Lock(lock), TraceKind::Free, id, 1);
                    let granted = self.locks.release(lock, id);
                    self.resume_lock_grants(lock, granted);
                }
                Op::PoolAccess {
                    pool,
                    pages,
                    pattern,
                } => {
                    let done = self.requests[&id].op_progress;
                    let chunk_pages = pages
                        .saturating_sub(done)
                        .min(self.cfg.pages_per_chunk)
                        .max(1);
                    let out = self.pools[pool.0 as usize].access(
                        id,
                        client,
                        pattern,
                        chunk_pages,
                        done,
                        &mut self.rng,
                    );
                    let group = self.group_of.get(&SimResource::Pool(pool)).copied();
                    if let Some(g) = group {
                        let evicted_total: u64 = out.evicted.iter().map(|(_, n)| n).sum();
                        for (owner, n) in &out.evicted {
                            self.emit_group(g, TraceKind::Free, *owner, *n);
                        }
                        if evicted_total > 0 {
                            self.emit_group(g, TraceKind::Slow, id, evicted_total);
                        }
                    }
                    let pending_get = match (group, out.misses) {
                        (Some(g), m) if m > 0 => Some((g, m)),
                        _ => None,
                    };
                    let track = self.requests.get_mut(&id).expect("live");
                    if !track.touched_pools.contains(&pool) {
                        track.touched_pools.push(pool);
                    }
                    self.schedule_chunk(
                        id,
                        out.cost_ns.max(1),
                        chunk_pages,
                        chunk_pages,
                        done + chunk_pages >= pages,
                        pending_get,
                    );
                    return;
                }
                Op::EnterQueue { queue } => match self.tickets[queue.0 as usize].enter(id) {
                    EnterResult::Granted => {
                        self.emit(SimResource::Queue(queue), TraceKind::Get, id, 1);
                        let req = self.requests.get_mut(&id).expect("live");
                        req.held_tickets.push(queue);
                        req.advance();
                    }
                    EnterResult::Queued => {
                        self.emit(SimResource::Queue(queue), TraceKind::Slow, id, 1);
                        let now = self.now();
                        let req = self.requests.get_mut(&id).expect("live");
                        req.state = RequestState::BlockedQueue(queue);
                        req.wait_started = Some(now);
                        return;
                    }
                },
                Op::LeaveQueue { queue } => {
                    let req = self.requests.get_mut(&id).expect("live");
                    req.held_tickets.retain(|q| *q != queue);
                    req.advance();
                    self.emit(SimResource::Queue(queue), TraceKind::Free, id, 1);
                    let granted = self.tickets[queue.0 as usize].leave(id);
                    self.resume_queue_grants(queue, granted);
                }
                Op::Io { ns } => {
                    let now = self.now();
                    let comp = self.io.submit(now, ns);
                    if comp.start > now {
                        self.emit(SimResource::Io, TraceKind::Slow, id, 1);
                    }
                    let req = self.requests.get_mut(&id).expect("live");
                    req.state = RequestState::BlockedIo;
                    req.wait_started = Some(now);
                    req.lock_wait_ns += comp.wait_ns(now);
                    req.pending_work = ns / 1_000;
                    let epoch = req.epoch;
                    self.queue
                        .schedule(comp.start, Event::IoStart { req: id, epoch });
                    self.queue
                        .schedule(comp.done, Event::IoDone { req: id, epoch });
                    return;
                }
                Op::HeapAlloc { bytes } => {
                    let heap = self
                        .heap
                        .as_mut()
                        .expect("plan uses heap but none configured");
                    let out = heap.alloc(id, bytes);
                    let units = (bytes >> 12).max(1);
                    {
                        let req = self.requests.get_mut(&id).expect("live");
                        req.heap_bytes += bytes;
                    }
                    match out.gc_pause_ns {
                        Some(pause) => {
                            let now = self.now();
                            // The slow amount is the garbage the collection
                            // reclaimed: the analog of pages evicted, so the
                            // estimator's ΣE/ΣM ratio reflects GC pressure.
                            let reclaimed_units = (out.reclaimed >> 12).max(1);
                            self.emit(SimResource::Heap, TraceKind::Slow, id, reclaimed_units);
                            let until = now + SimTime::from_nanos(pause);
                            if until > self.gc_until {
                                self.gc_until = until;
                            }
                            let g = self.group_of.get(&SimResource::Heap).copied();
                            self.schedule_chunk(id, pause, 0, 0, true, g.map(|g| (g, units)));
                            return;
                        }
                        None => {
                            self.emit(SimResource::Heap, TraceKind::Get, id, units);
                            self.requests.get_mut(&id).expect("live").advance();
                        }
                    }
                }
                Op::HeapFree { bytes } => {
                    let heap = self
                        .heap
                        .as_mut()
                        .expect("plan uses heap but none configured");
                    let freed = heap.free(id, bytes);
                    {
                        let req = self.requests.get_mut(&id).expect("live");
                        req.heap_bytes = req.heap_bytes.saturating_sub(freed);
                        req.advance();
                    }
                    self.emit(SimResource::Heap, TraceKind::Free, id, (freed >> 12).max(1));
                }
            }
        }
    }

    fn resume_lock_grants(&mut self, lock: crate::ids::LockId, granted: Vec<RequestId>) {
        let now = self.now();
        for gid in granted {
            self.emit(SimResource::Lock(lock), TraceKind::Get, gid, 1);
            let Some(req) = self.requests.get_mut(&gid) else {
                continue;
            };
            if let Some(ws) = req.wait_started.take() {
                req.lock_wait_ns += now.saturating_sub(ws).as_nanos();
            }
            req.held_locks.push(lock);
            req.state = RequestState::Running;
            req.advance();
            self.runnable.push_back(gid);
        }
    }

    fn resume_queue_grants(&mut self, queue: QueueId, granted: Vec<RequestId>) {
        let now = self.now();
        for gid in granted {
            self.emit(SimResource::Queue(queue), TraceKind::Get, gid, 1);
            let Some(req) = self.requests.get_mut(&gid) else {
                continue;
            };
            if let Some(ws) = req.wait_started.take() {
                req.lock_wait_ns += now.saturating_sub(ws).as_nanos();
            }
            req.held_tickets.push(queue);
            req.state = RequestState::Running;
            req.advance();
            self.runnable.push_back(gid);
        }
    }

    fn handle_op_done(&mut self, id: RequestId, epoch: u64) {
        let Some(req) = self.requests.get_mut(&id) else {
            return;
        };
        if req.epoch != epoch || req.is_finished() {
            return;
        }
        req.op_progress += req.pending_progress;
        req.work_done += req.pending_work;
        let advance = req.pending_advance;
        let pending_get = req.pending_get.take();
        req.pending_progress = 0;
        req.pending_work = 0;
        req.pending_advance = false;
        if advance {
            req.advance();
        }
        if let Some((g, amount)) = pending_get {
            self.emit_group(g, TraceKind::Get, id, amount);
        }
        if let Some(r) = self.requests.get(&id) {
            let r = r.clone();
            self.controller.on_progress(self.clock.now(), &r);
        }
        self.run_request(id);
    }

    fn handle_io_start(&mut self, id: RequestId, epoch: u64) {
        let Some(req) = self.requests.get(&id) else {
            return;
        };
        if req.epoch != epoch || req.is_finished() {
            return;
        }
        self.emit(SimResource::Io, TraceKind::Get, id, 1);
    }

    fn handle_io_done(&mut self, id: RequestId, epoch: u64) {
        let Some(req) = self.requests.get_mut(&id) else {
            return;
        };
        if req.epoch != epoch || req.is_finished() {
            return;
        }
        req.wait_started = None;
        req.work_done += req.pending_work;
        req.pending_work = 0;
        req.state = RequestState::Running;
        req.advance();
        self.emit(SimResource::Io, TraceKind::Free, id, 1);
        if req_cancelled(self.requests.get(&id)) {
            self.abort(id);
            return;
        }
        self.run_request(id);
    }

    // ---- cancellation / termination ----

    /// Requests cancellation (`as_drop = false`, the Atropos path: parked
    /// for re-execution) or a victim drop (`as_drop = true`, the Protego
    /// path: counts as a drop).
    pub fn cancel_request(&mut self, id: RequestId, as_drop: bool) {
        let Some(req) = self.requests.get_mut(&id) else {
            return;
        };
        if req.is_finished() {
            return;
        }
        req.cancel_flag = true;
        req.drop_flag = as_drop;
        match req.state {
            RequestState::Running => {
                // Honored at the next chunk boundary (cancellation
                // checkpoint).
            }
            RequestState::Queued => {
                req.epoch += 1;
                self.accept_queue.retain(|r| *r != id);
                self.abort(id);
            }
            RequestState::BlockedLock(lock) => {
                req.epoch += 1;
                let granted = self.locks.remove_waiter(lock, id);
                self.resume_lock_grants(lock, granted);
                self.abort(id);
            }
            RequestState::BlockedQueue(queue) => {
                req.epoch += 1;
                self.tickets[queue.0 as usize].remove_waiter(id);
                self.abort(id);
            }
            RequestState::BlockedIo => {
                // The device slot is already consumed; abandon the wait.
                req.epoch += 1;
                self.abort(id);
            }
            RequestState::Finished(_) => {}
        }
    }

    fn abort(&mut self, id: RequestId) {
        let outcome = if self.requests.get(&id).map(|r| r.drop_flag).unwrap_or(false) {
            Outcome::Dropped
        } else {
            Outcome::Canceled
        };
        self.finish_request(id, outcome);
    }

    fn finish_request(&mut self, id: RequestId, outcome: Outcome) {
        let now = self.now();
        let Some(mut req) = self.requests.remove(&id) else {
            return;
        };
        req.state = RequestState::Finished(outcome);
        // Release everything still held.
        for lock in std::mem::take(&mut req.held_locks) {
            self.emit(SimResource::Lock(lock), TraceKind::Free, id, 1);
            let granted = self.locks.release(lock, id);
            self.resume_lock_grants(lock, granted);
        }
        for queue in std::mem::take(&mut req.held_tickets) {
            self.emit(SimResource::Queue(queue), TraceKind::Free, id, 1);
            let granted = self.tickets[queue.0 as usize].leave(id);
            self.resume_queue_grants(queue, granted);
        }
        if let Some(heap) = self.heap.as_mut() {
            let freed = heap.release_all(id);
            if freed > 0 {
                self.emit(SimResource::Heap, TraceKind::Free, id, (freed >> 12).max(1));
            }
        }
        if req.has_worker {
            req.has_worker = false;
            self.active_workers -= 1;
            if let Some(c) = self.class_active.get_mut(&req.class) {
                *c = c.saturating_sub(1);
            }
            self.emit(SimResource::WorkerPool, TraceKind::Free, id, 1);
        } else {
            self.accept_queue.retain(|r| *r != id);
        }
        // Metrics.
        let countable = now >= self.warmup && !req.background;
        match outcome {
            Outcome::Completed => {
                if countable {
                    let latency = req.latency(now);
                    self.metrics.completed += 1;
                    self.metrics.latency.record(latency);
                    self.metrics
                        .series
                        .record_completion(now.as_nanos(), latency);
                    self.client_window
                        .entry(req.client)
                        .or_default()
                        .record(latency);
                }
                if req.retry {
                    self.metrics.retried += 1;
                }
            }
            Outcome::Canceled => {
                if now >= self.warmup {
                    self.metrics.canceled += 1;
                }
                self.metrics.cancel_log.push(CancelRecord {
                    req: id,
                    class: req.class,
                    client: req.client,
                    at: now,
                });
                if !req.background && !req.retry {
                    self.parked.insert(
                        id,
                        Parked {
                            plan: req.plan.clone(),
                            class: req.class,
                            client: req.client,
                            arrival: req.arrival,
                            background: req.background,
                            epoch: req.epoch,
                        },
                    );
                } else if countable {
                    // A canceled retry is abandoned: it already used its
                    // one re-execution (§4).
                    self.metrics.dropped += 1;
                    self.metrics.series.record_drop(now.as_nanos());
                }
            }
            Outcome::Dropped => {
                if countable {
                    self.metrics.dropped += 1;
                    self.metrics.series.record_drop(now.as_nanos());
                }
            }
        }
        self.controller.on_finish(now, &req, outcome);
        // Recurring background jobs schedule their next run.
        if let Some(idx) = req.recur_idx {
            let interval = self.workload.background[idx].interval;
            let at = now + interval;
            if at < self.end {
                self.queue.schedule(at, Event::SpawnBackground(idx));
            }
        }
        self.try_dispatch();
    }

    // ---- control ----

    fn build_view(&mut self) -> ServerView {
        let now = self.now();
        let mut requests = Vec::with_capacity(self.requests.len());
        for req in self.requests.values() {
            if req.is_finished() {
                continue;
            }
            let resident: u64 = self.pools.iter().map(|p| p.resident_of(req.id)).sum();
            let blocked = matches!(
                req.state,
                RequestState::BlockedLock(_)
                    | RequestState::BlockedQueue(_)
                    | RequestState::BlockedIo
                    | RequestState::Queued
            );
            requests.push(RequestView {
                id: req.id,
                class: req.class,
                client: req.client,
                arrival: req.arrival,
                wait_ns: req.lock_wait_ns
                    + req
                        .wait_started
                        .map_or(0, |ws| now.saturating_sub(ws).as_nanos()),
                current_wait_ns: req
                    .wait_started
                    .map_or(0, |ws| now.saturating_sub(ws).as_nanos()),
                resident_pages: resident,
                heap_bytes: req.heap_bytes,
                progress: req.progress(),
                background: req.background,
                cancellable: req.cancellable && !req.cancel_flag,
                blocked,
            });
        }
        requests.sort_by_key(|r| r.id);
        let recent = self
            .metrics
            .series
            .recent_closed(now.as_nanos(), 1)
            .last()
            .map(|w| RecentPerf {
                throughput_qps: w.throughput_qps(self.cfg.window_ns),
                p50_ns: w.latency.p50(),
                p99_ns: w.latency.p99(),
                completed: w.completed,
            })
            .unwrap_or_default();
        let client_p99 = {
            let mut v: Vec<(ClientId, u64)> = self
                .client_window
                .iter()
                .map(|(c, h)| (*c, h.p99()))
                .collect();
            v.sort_by_key(|(c, _)| *c);
            v
        };
        self.client_window.clear();
        let queues = self
            .tickets
            .iter()
            .enumerate()
            .map(|(i, q)| (QueueId(i as u32), q.active(), q.queued()))
            .collect();
        ServerView {
            now,
            requests,
            recent,
            client_p99,
            queues,
            workers_active: self.active_workers,
            workers_queued: self.accept_queue.len(),
        }
    }

    fn handle_control_tick(&mut self) {
        let now = self.now();
        let next = now + SimTime::from_nanos(self.cfg.control_interval_ns);
        if next < self.end {
            self.queue.schedule(next, Event::ControlTick);
        }
        let view = self.build_view();
        let mut controller = std::mem::replace(&mut self.controller, Box::new(crate::NoControl));
        let actions = controller.on_tick(now, &view);
        self.controller = controller;
        for a in actions {
            self.apply_action(a);
        }
    }

    fn apply_action(&mut self, action: Action) {
        match action {
            Action::Cancel(id) => self.cancel_request(id, false),
            Action::Drop(id) => self.cancel_request(id, true),
            Action::Throttle(id, ns) => {
                if let Some(r) = self.requests.get_mut(&id) {
                    r.throttle_ns = ns;
                }
            }
            Action::Reexec(id) => self.reexec(id),
            Action::DropParked(id) => {
                if self.parked.remove(&id).is_some() {
                    let now = self.now();
                    if now >= self.warmup {
                        self.metrics.dropped += 1;
                        self.metrics.series.record_drop(now.as_nanos());
                    }
                }
            }
            Action::SetQueueCapacity(q, cap) => {
                let granted = self.tickets[q.0 as usize].set_capacity(cap);
                self.resume_queue_grants(q, granted);
            }
            Action::SetPoolQuota(p, client, quota) => {
                self.pools[p.0 as usize].set_quota(client, quota);
            }
            Action::SetClassWorkerLimit(class, limit) => {
                match limit {
                    Some(l) => {
                        self.class_limit.insert(class, l);
                    }
                    None => {
                        self.class_limit.remove(&class);
                    }
                }
                self.try_dispatch();
            }
        }
    }

    fn reexec(&mut self, old: RequestId) {
        let Some(p) = self.parked.remove(&old) else {
            return;
        };
        let now = self.now();
        // Revive under the original id so controllers can correlate the
        // retry with the cancellation; the bumped epoch fences any event
        // still in flight from the canceled incarnation.
        let mut req = Request::new(old, p.class, p.client, p.plan, p.arrival);
        req.cancellable = false;
        req.retry = true;
        req.background = p.background;
        req.epoch = p.epoch + 1;
        req.wait_started = Some(now);
        self.requests.insert(old, req);
        self.accept_queue.push_back(old);
        self.emit(SimResource::WorkerPool, TraceKind::Slow, old, 1);
        self.try_dispatch();
        self.drain_runnable();
    }

    // ---- test/diagnostic accessors ----

    /// Live request count.
    pub fn live_requests(&self) -> usize {
        self.requests.len()
    }

    /// Parked (canceled, awaiting re-execution) request count.
    pub fn parked_requests(&self) -> usize {
        self.parked.len()
    }

    /// Metrics so far (for inspection mid-run in tests).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }
}

fn req_cancelled(req: Option<&Request>) -> bool {
    req.map(|r| r.cancel_flag).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LockId;
    use crate::workload::ClassSpec;

    fn sec(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn simple_workload(rate: f64) -> WorkloadSpec {
        WorkloadSpec::new(
            vec![ClassSpec::new("select", 1.0, |_| {
                Plan::new().compute(100_000)
            })],
            rate,
        )
    }

    #[test]
    fn open_loop_completes_offered_load() {
        let srv = SimServer::new(
            ServerConfig::default(),
            simple_workload(1000.0),
            Box::new(crate::NoControl),
        );
        let m = srv.run(sec(5), SimTime::ZERO);
        // ~5000 arrivals, all should complete well within the run.
        assert!(m.offered > 4_500, "offered {}", m.offered);
        assert!(
            m.completed as f64 > m.offered as f64 * 0.99,
            "completed {} of {}",
            m.completed,
            m.offered
        );
        assert_eq!(m.dropped, 0);
        // Latency ≈ service time (no queueing at this load).
        assert!(m.latency.p50() >= 100_000);
        assert!(m.latency.p99() < 1_000_000, "p99 {}", m.latency.p99());
    }

    #[test]
    fn saturation_caps_throughput_at_capacity() {
        // 4 workers × 1ms service = 4000 qps capacity; offer 8000.
        let cfg = ServerConfig {
            workers: 4,
            ..Default::default()
        };
        let wl = WorkloadSpec::new(
            vec![ClassSpec::new("op", 1.0, |_| {
                Plan::new().compute(1_000_000)
            })],
            8_000.0,
        );
        let m = SimServer::new(cfg, wl, Box::new(crate::NoControl)).run(sec(3), sec(1));
        let tput = m.completed as f64 / 2.0;
        assert!(tput < 4_400.0, "tput {tput}");
        assert!(tput > 3_200.0, "tput {tput}");
        // Queueing pushes latency way past service time.
        assert!(m.latency.p99() > 10_000_000);
    }

    #[test]
    fn lock_convoy_blocks_and_releases() {
        // One long exclusive holder injected; shorts need the same lock.
        let mk_short = |_: &mut SimRng| {
            Plan::new()
                .lock(LockId(0), LockMode::Shared)
                .compute(50_000)
                .unlock(LockId(0))
        };
        let mk_hog = |_: &mut SimRng| {
            Plan::new()
                .lock(LockId(0), LockMode::Exclusive)
                .compute(500_000_000) // holds for 0.5 s
                .unlock(LockId(0))
        };
        let cfg = ServerConfig {
            n_locks: 1,
            workers: 256,
            ..Default::default()
        };
        let wl = WorkloadSpec::new(
            vec![
                ClassSpec::new("short", 1.0, mk_short),
                ClassSpec::new("hog", 0.0, mk_hog),
            ],
            500.0,
        )
        .inject(SimTime::from_millis(500), ClassId(1));
        let m = SimServer::new(cfg, wl, Box::new(crate::NoControl)).run(sec(3), SimTime::ZERO);
        // Everything eventually completes, but tail latency shows the
        // 0.5 s convoy.
        assert!(m.completed > 1_000);
        assert!(
            m.latency.p99() > 100_000_000,
            "p99 {} should reflect the convoy",
            m.latency.p99()
        );
        assert!(m.latency.p50() < 1_000_000);
    }

    #[test]
    fn ticket_queue_limits_concurrency() {
        let cfg = ServerConfig {
            queues: vec![2],
            workers: 64,
            ..Default::default()
        };
        let wl = WorkloadSpec::new(
            vec![ClassSpec::new("q", 1.0, |_| {
                Plan::new()
                    .enter(QueueId(0))
                    .compute(1_000_000)
                    .leave(QueueId(0))
            })],
            4_000.0,
        );
        // Capacity through the queue: 2 × 1/1ms = 2000 qps < offered.
        let m = SimServer::new(cfg, wl, Box::new(crate::NoControl)).run(sec(2), sec(1));
        let tput = m.completed as f64;
        assert!(tput < 2_300.0, "tput {tput}");
        assert!(tput > 1_500.0, "tput {tput}");
    }

    #[test]
    fn buffer_pool_misses_slow_requests_down() {
        let pool = BufferPoolConfig {
            capacity: 1000,
            hot_keys: 500,
            zipf_theta: 0.8,
            hit_ns: 1_000,
            miss_ns: 100_000,
            scan_miss_ns: 100_000,
            evict_ns: 10_000,
        };
        let cfg = ServerConfig {
            pools: vec![pool],
            ..Default::default()
        };
        let wl = WorkloadSpec::new(
            vec![ClassSpec::new("pt", 1.0, |_| {
                Plan::new().pool_hot(PoolId(0), 4).compute(50_000)
            })],
            2_000.0,
        );
        let m = SimServer::new(cfg, wl, Box::new(crate::NoControl)).run(sec(2), SimTime::ZERO);
        assert!(m.completed > 3_000);
        // Warm cache: median latency close to compute + hits.
        assert!(m.latency.p50() < 500_000, "p50 {}", m.latency.p50());
    }

    #[test]
    fn cancel_running_request_releases_lock_and_parks() {
        struct CancelHogAt {
            at: SimTime,
            done: bool,
        }
        impl Controller for CancelHogAt {
            fn name(&self) -> &'static str {
                "test-cancel"
            }
            fn on_tick(&mut self, now: SimTime, view: &ServerView) -> Vec<Action> {
                if self.done || now < self.at {
                    return Vec::new();
                }
                // Cancel the request with the largest current wait-free
                // runtime: identify the hog as the non-blocked request
                // with lowest progress… simply pick the one with class 1.
                for r in &view.requests {
                    if r.class == ClassId(1) && r.cancellable {
                        self.done = true;
                        return vec![Action::Cancel(r.id)];
                    }
                }
                Vec::new()
            }
        }
        let mk_short = |_: &mut SimRng| {
            Plan::new()
                .lock(LockId(0), LockMode::Shared)
                .compute(50_000)
                .unlock(LockId(0))
        };
        let mk_hog = |_: &mut SimRng| {
            Plan::new()
                .lock(LockId(0), LockMode::Exclusive)
                .compute(10_000_000_000) // would hold for 10 s
                .unlock(LockId(0))
        };
        let cfg = ServerConfig {
            n_locks: 1,
            workers: 128,
            ..Default::default()
        };
        let wl = WorkloadSpec::new(
            vec![
                ClassSpec::new("short", 1.0, mk_short),
                ClassSpec::new("hog", 0.0, mk_hog),
            ],
            1_000.0,
        )
        .inject(SimTime::from_millis(200), ClassId(1));
        let srv = SimServer::new(
            cfg,
            wl,
            Box::new(CancelHogAt {
                at: SimTime::from_millis(500),
                done: false,
            }),
        );
        let m = srv.run(sec(3), SimTime::ZERO);
        assert_eq!(m.canceled, 1);
        // After cancellation the lock frees; most shorts complete.
        assert!(
            m.completed as f64 > m.offered as f64 * 0.9,
            "completed {} of {}",
            m.completed,
            m.offered
        );
        assert_eq!(m.dropped, 0);
    }

    #[test]
    fn rejected_arrivals_count_as_drops() {
        struct RejectHalf {
            n: u64,
        }
        impl Controller for RejectHalf {
            fn name(&self) -> &'static str {
                "reject-half"
            }
            fn on_arrival(&mut self, _now: SimTime, _req: &Request) -> AdmitDecision {
                self.n += 1;
                if self.n.is_multiple_of(2) {
                    AdmitDecision::Reject
                } else {
                    AdmitDecision::Admit
                }
            }
        }
        let m = SimServer::new(
            ServerConfig::default(),
            simple_workload(1_000.0),
            Box::new(RejectHalf { n: 0 }),
        )
        .run(sec(2), SimTime::ZERO);
        let drop_rate = m.dropped as f64 / m.offered as f64;
        assert!((drop_rate - 0.5).abs() < 0.02, "drop rate {drop_rate}");
        assert!((m.completed + m.dropped) as f64 >= m.offered as f64 * 0.99);
    }

    #[test]
    fn background_jobs_recur_and_are_not_counted() {
        let wl = WorkloadSpec::new(
            vec![
                ClassSpec::new("fg", 1.0, |_| Plan::new().compute(100_000)),
                ClassSpec::new("purge", 0.0, |_| Plan::new().compute(10_000_000)).background(),
            ],
            100.0,
        )
        .recurring(ClassId(1), SimTime::ZERO, SimTime::from_millis(100));
        let m = SimServer::new(ServerConfig::default(), wl, Box::new(crate::NoControl))
            .run(sec(2), SimTime::ZERO);
        // ~18 background runs happened but none appear in client metrics.
        assert!((m.offered as f64) < 250.0);
        assert!(m.latency.p99() < 1_000_000);
    }

    #[test]
    fn throttled_request_runs_slower() {
        struct ThrottleAll;
        impl Controller for ThrottleAll {
            fn name(&self) -> &'static str {
                "throttle"
            }
            fn on_start(&mut self, _now: SimTime, _req: &Request) {}
            fn on_tick(&mut self, _now: SimTime, view: &ServerView) -> Vec<Action> {
                view.requests
                    .iter()
                    .map(|r| Action::Throttle(r.id, 1_000_000))
                    .collect()
            }
        }
        // Long requests (150 chunks) so every request is caught by a
        // control tick and the per-chunk penalty accumulates.
        let wl = WorkloadSpec::new(
            vec![ClassSpec::new("op", 1.0, |_| {
                Plan::new().compute(300_000_000)
            })],
            5.0,
        );
        let m = SimServer::new(ServerConfig::default(), wl, Box::new(ThrottleAll))
            .run(sec(4), SimTime::ZERO);
        // 300 ms of work in 2 ms chunks + 1 ms penalty per chunk after the
        // first tick ⇒ well past 400 ms.
        assert!(m.latency.p50() > 400_000_000, "p50 {}", m.latency.p50());
    }

    #[test]
    fn reexec_revives_parked_request() {
        struct CancelThenReexec {
            canceled: Option<RequestId>,
            stage: u8,
        }
        impl Controller for CancelThenReexec {
            fn name(&self) -> &'static str {
                "cancel-reexec"
            }
            fn on_tick(&mut self, _now: SimTime, view: &ServerView) -> Vec<Action> {
                match self.stage {
                    0 => {
                        if let Some(r) = view.requests.iter().find(|r| r.class == ClassId(1)) {
                            self.canceled = Some(r.id);
                            self.stage = 1;
                            return vec![Action::Cancel(r.id)];
                        }
                        Vec::new()
                    }
                    1 => {
                        self.stage = 2;
                        vec![Action::Reexec(self.canceled.unwrap())]
                    }
                    _ => Vec::new(),
                }
            }
        }
        let wl = WorkloadSpec::new(
            vec![
                ClassSpec::new("fg", 1.0, |_| Plan::new().compute(100_000)),
                ClassSpec::new("slow", 0.0, |_| Plan::new().compute(50_000_000)),
            ],
            100.0,
        )
        .inject(SimTime::from_millis(50), ClassId(1));
        let m = SimServer::new(
            ServerConfig::default(),
            wl,
            Box::new(CancelThenReexec {
                canceled: None,
                stage: 0,
            }),
        )
        .run(sec(2), SimTime::ZERO);
        assert_eq!(m.canceled, 1);
        assert_eq!(m.retried, 1);
        assert_eq!(m.dropped, 0);
        // offered counts the injected request once; it completed on retry.
        assert!(m.completed >= m.offered - 1);
    }

    #[test]
    fn drop_parked_counts_as_drop() {
        struct CancelThenAbandon {
            canceled: Option<RequestId>,
            stage: u8,
        }
        impl Controller for CancelThenAbandon {
            fn name(&self) -> &'static str {
                "cancel-abandon"
            }
            fn on_tick(&mut self, _now: SimTime, view: &ServerView) -> Vec<Action> {
                match self.stage {
                    0 => {
                        if let Some(r) = view.requests.iter().find(|r| r.class == ClassId(1)) {
                            self.canceled = Some(r.id);
                            self.stage = 1;
                            return vec![Action::Cancel(r.id)];
                        }
                        Vec::new()
                    }
                    1 => {
                        self.stage = 2;
                        vec![Action::DropParked(self.canceled.unwrap())]
                    }
                    _ => Vec::new(),
                }
            }
        }
        let wl = WorkloadSpec::new(
            vec![
                ClassSpec::new("fg", 1.0, |_| Plan::new().compute(100_000)),
                ClassSpec::new("slow", 0.0, |_| Plan::new().compute(50_000_000)),
            ],
            100.0,
        )
        .inject(SimTime::from_millis(50), ClassId(1));
        let m = SimServer::new(
            ServerConfig::default(),
            wl,
            Box::new(CancelThenAbandon {
                canceled: None,
                stage: 0,
            }),
        )
        .run(sec(2), SimTime::ZERO);
        assert_eq!(m.canceled, 1);
        assert_eq!(m.dropped, 1);
        assert_eq!(m.retried, 0);
    }

    #[test]
    fn class_worker_limit_restricts_dispatch() {
        struct LimitSlow;
        impl Controller for LimitSlow {
            fn name(&self) -> &'static str {
                "darc-ish"
            }
            fn on_tick(&mut self, now: SimTime, _view: &ServerView) -> Vec<Action> {
                if now <= SimTime::from_millis(100) {
                    vec![Action::SetClassWorkerLimit(ClassId(1), Some(1))]
                } else {
                    Vec::new()
                }
            }
        }
        // 2 workers; slow class limited to 1 so the fast class always has
        // a worker available.
        let cfg = ServerConfig {
            workers: 2,
            ..Default::default()
        };
        let wl = WorkloadSpec::new(
            vec![
                ClassSpec::new("fast", 0.5, |_| Plan::new().compute(100_000)),
                ClassSpec::new("slow", 0.5, |_| Plan::new().compute(20_000_000)),
            ],
            150.0,
        );
        let m = SimServer::new(cfg, wl, Box::new(LimitSlow)).run(sec(4), sec(1));
        // Without the limit both workers fill with slow requests and fast
        // p50 explodes; with it fast requests stay quick.
        assert!(m.latency.p50() < 5_000_000, "p50 {}", m.latency.p50());
    }

    #[test]
    fn warmup_excludes_early_traffic_from_metrics() {
        let wl = WorkloadSpec::new(
            vec![ClassSpec::new("op", 1.0, |_| Plan::new().compute(100_000))],
            1_000.0,
        );
        let m = SimServer::new(ServerConfig::default(), wl, Box::new(crate::NoControl))
            .run(sec(3), sec(2));
        // Only the final second is measured.
        assert!(
            (m.offered as f64 - 1_000.0).abs() < 120.0,
            "offered {}",
            m.offered
        );
        assert!((m.completed as f64 - 1_000.0).abs() < 120.0);
    }

    #[test]
    fn new_with_builds_controller_on_the_server_clock() {
        struct ClockProbe {
            clock: Arc<VirtualClock>,
            saw_time_move: std::cell::Cell<bool>,
        }
        impl Controller for ClockProbe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn on_tick(&mut self, now: SimTime, _v: &ServerView) -> Vec<Action> {
                // The shared clock must agree with the tick time.
                assert_eq!(self.clock.now(), now);
                if now > SimTime::ZERO {
                    self.saw_time_move.set(true);
                }
                Vec::new()
            }
        }
        let wl = WorkloadSpec::new(
            vec![ClassSpec::new("op", 1.0, |_| Plan::new().compute(100_000))],
            100.0,
        );
        let server = SimServer::new_with(ServerConfig::default(), wl, |clock, _groups| {
            Box::new(ClockProbe {
                clock,
                saw_time_move: std::cell::Cell::new(false),
            })
        });
        let m = server.run(sec(1), SimTime::ZERO);
        assert!(m.completed > 0);
    }

    #[test]
    fn trace_events_are_emitted_for_grouped_resources() {
        let cfg = ServerConfig {
            n_locks: 1,
            groups: vec![ResourceGroupDef {
                name: "lock".into(),
                rtype: atropos::ResourceType::Lock,
                members: vec![SimResource::Lock(LockId(0))],
            }],
            ..Default::default()
        };
        let wl = WorkloadSpec::new(
            vec![ClassSpec::new("op", 1.0, |_| {
                Plan::new()
                    .lock(LockId(0), LockMode::Exclusive)
                    .compute(100_000)
                    .unlock(LockId(0))
            })],
            100.0,
        );
        let m = SimServer::new(cfg, wl, Box::new(crate::NoControl)).run(sec(1), SimTime::ZERO);
        // One Get + one Free per request (at minimum).
        assert!(m.trace_events >= 2 * m.completed, "{}", m.trace_events);
    }

    #[test]
    fn io_device_serializes_requests() {
        let wl = WorkloadSpec::new(
            vec![ClassSpec::new("io", 1.0, |_| Plan::new().io(1_000_000))],
            2_000.0, // 2× the device capacity of 1000 IOPS
        );
        let m = SimServer::new(ServerConfig::default(), wl, Box::new(crate::NoControl))
            .run(sec(2), sec(1));
        let tput = m.completed as f64;
        assert!(tput < 1_100.0, "tput {tput}");
        assert!(m.latency.p99() > 10_000_000); // deep IO queue
    }

    #[test]
    fn heap_gc_pauses_allocating_request() {
        let cfg = ServerConfig {
            heap: Some(HeapConfig {
                capacity: 100 << 20,
                gc_threshold: 0.5,
                gc_pause_base_ns: 30_000_000,
                gc_pause_per_mb_ns: 0,
                garbage_factor: 1.0,
            }),
            ..Default::default()
        };
        let wl = WorkloadSpec::new(
            vec![ClassSpec::new("alloc", 1.0, |_| {
                Plan::new().alloc(2 << 20).compute(100_000).dealloc(2 << 20)
            })],
            50.0,
        );
        let m = SimServer::new(cfg, wl, Box::new(crate::NoControl)).run(sec(4), SimTime::ZERO);
        // GCs fire occasionally; requests near a collection see the full
        // stop-the-world pause, the rest stay fast.
        assert!(m.latency.p99() >= 30_000_000, "p99 {}", m.latency.p99());
        assert!(m.latency.p50() < 30_000_000, "p50 {}", m.latency.p50());
    }
}
