//! Identifiers used throughout the application simulator.
//!
//! The definitions live in [`atropos_substrate::ids`] — the shared
//! protocol vocabulary — and are re-exported here for back-compat.

pub use atropos_substrate::ids::{ClassId, ClientId, LockId, PoolId, QueueId, RequestId};
