//! `webserver` — the Apache-like substrate.
//!
//! Case c9 of Table 2: the worker pool itself is the application
//! resource. Apache's prefork/worker model admits up to MaxClients
//! concurrent requests; slow PHP scripts hold workers for tens of seconds
//! and, once the limit is reached, every subsequent request queues at
//! accept. The worker pool is modeled with a ticket queue so the pool is
//! a first-class traced resource, matching how the paper instruments
//! Apache (§5.2 notes Apache's scripts need the thread-level cancellation
//! flag; our script class is registered cancellable to model that flag
//! being enabled).

use crate::controller::SimResource;
use crate::ids::QueueId;
use crate::op::Plan;
use crate::server::{ResourceGroupDef, ServerConfig};
use crate::workload::ClassSpec;

/// Parameters of the web server substrate.
#[derive(Debug, Clone)]
pub struct WebServerConfig {
    /// RNG seed.
    pub seed: u64,
    /// MaxClients: concurrent requests the worker pool admits.
    pub max_clients: usize,
    /// Median service time of a static/regular request (ns).
    pub request_ns: u64,
}

impl Default for WebServerConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            max_clients: 32,
            request_ns: 1_500_000, // 1.5 ms
        }
    }
}

/// The built web server.
#[derive(Debug, Clone)]
pub struct WebServer {
    /// Parameters.
    pub cfg: WebServerConfig,
    /// The MaxClients pool.
    pub client_pool: QueueId,
}

impl WebServer {
    /// Builds the substrate.
    pub fn new(cfg: WebServerConfig) -> Self {
        Self {
            client_pool: QueueId(0),
            cfg,
        }
    }

    /// Server config: plenty of OS threads; the *application* limit is the
    /// MaxClients ticket queue.
    pub fn server_config(&self) -> ServerConfig {
        ServerConfig {
            seed: self.cfg.seed,
            workers: self.cfg.max_clients * 8,
            queues: vec![self.cfg.max_clients],
            groups: vec![ResourceGroupDef {
                name: "client_pool".into(),
                rtype: atropos::ResourceType::Queue,
                members: vec![SimResource::Queue(self.client_pool)],
            }],
            ..Default::default()
        }
    }

    /// A regular HTTP request.
    pub fn http_request(&self, weight: f64) -> ClassSpec {
        let q = self.client_pool;
        let base = self.cfg.request_ns;
        ClassSpec::new("http", weight, move |rng| {
            let ns = rng.lognormal(base as f64, 0.4) as u64;
            Plan::new().enter(q).compute(ns).leave(q)
        })
    }

    /// A slow PHP script holding a MaxClients slot for `script_ns`.
    pub fn slow_script(&self, weight: f64, script_ns: u64) -> ClassSpec {
        let q = self.client_pool;
        ClassSpec::new("php_slow", weight, move |rng| {
            let ns = rng.lognormal(script_ns as f64, 0.2) as u64;
            Plan::new().enter(q).compute(ns).leave(q)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SimServer;
    use crate::workload::WorkloadSpec;
    use crate::NoControl;
    use atropos_sim::SimTime;

    #[test]
    fn config_traces_the_client_pool() {
        let ws = WebServer::new(WebServerConfig::default());
        let cfg = ws.server_config();
        assert_eq!(cfg.queues, vec![32]);
        assert_eq!(cfg.groups.len(), 1);
        assert_eq!(cfg.groups[0].rtype, atropos::ResourceType::Queue);
    }

    #[test]
    fn normal_traffic_flows_freely() {
        let ws = WebServer::new(WebServerConfig::default());
        let wl = WorkloadSpec::new(vec![ws.http_request(1.0)], 5_000.0);
        let m = SimServer::new(ws.server_config(), wl, Box::new(NoControl))
            .run(SimTime::from_secs(3), SimTime::from_secs(1));
        assert!(m.completed as f64 / 2.0 > 4_500.0);
        assert!(m.latency.p99() < 20_000_000, "p99 {}", m.latency.p99());
    }

    #[test]
    fn slow_scripts_exhaust_max_clients() {
        // 0.5% of arrivals are 30 s scripts: ~25/s of script arrivals at
        // 5k qps would instantly exhaust 32 slots; use a rarer ratio that
        // still clogs the pool within the run.
        let ws = WebServer::new(WebServerConfig::default());
        let wl = WorkloadSpec::new(
            vec![
                ws.http_request(0.995),
                ws.slow_script(0.005, 30_000_000_000),
            ],
            5_000.0,
        );
        let m = SimServer::new(ws.server_config(), wl, Box::new(NoControl))
            .run(SimTime::from_secs(6), SimTime::from_secs(1));
        // Pool clogs: goodput collapses once MaxClients slots are all held
        // by 30 s scripts (blocked requests never complete in-run, so the
        // collapse shows up in throughput).
        let tput = m.completed as f64 / 5.0;
        assert!(tput < 2_500.0, "tput {tput}");
    }
}
