//! Builders for the four simulated applications.
//!
//! Each builder produces a `ServerConfig` + `WorkloadSpec` pair whose
//! resources and request classes match one of the paper's six target
//! systems (MySQL and PostgreSQL share the `minidb` substrate;
//! Elasticsearch and Solr share `search`).

pub mod kvstore;
pub mod minidb;
pub mod search;
pub mod webserver;
