//! `minidb` — the MySQL/PostgreSQL-like database substrate.
//!
//! Owns the application resources behind cases c1–c8 of Table 2:
//!
//! - a buffer pool (InnoDB's page cache; case c5 and the Figure 2 study),
//! - per-table locks plus the backup's global write-lock pass (c1, c4, c6),
//! - an undo-log mutex contended by the background purge task (c3),
//! - a WAL lock forming group-commit convoys behind the WAL writer (c7),
//! - an InnoDB-style concurrency ticket queue (c2),
//! - the shared IO device saturated by vacuum (c8).
//!
//! Request classes mirror the paper's workloads: Sysbench-style
//! point-selects and row-updates as the lightweight mix, plus the noisy
//! classes each case injects (scan, dump, backup, SELECT FOR UPDATE, bulk
//! MVCC write, purge, WAL writer, vacuum).

use atropos_sim::SimRng;

use crate::controller::SimResource;
use crate::ids::{LockId, PoolId, QueueId};
use crate::op::{LockMode, Plan};
use crate::resources::bufferpool::BufferPoolConfig;
use crate::server::{ResourceGroupDef, ServerConfig};
use crate::workload::ClassSpec;

/// Parameters of the database substrate.
#[derive(Debug, Clone)]
pub struct MiniDbConfig {
    /// RNG seed.
    pub seed: u64,
    /// Worker (connection thread) count.
    pub workers: usize,
    /// Number of user tables.
    pub n_tables: usize,
    /// InnoDB concurrency tickets.
    pub tickets: usize,
    /// Buffer pool configuration.
    pub pool: BufferPoolConfig,
    /// Median compute time of a point select (ns).
    pub select_ns: u64,
    /// Median compute time of a row update (ns).
    pub update_ns: u64,
}

impl Default for MiniDbConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            workers: 128,
            n_tables: 5,
            tickets: 4,
            pool: BufferPoolConfig {
                capacity: 32_768, // 512 MB of 16 KB pages
                hot_keys: 26_000, // working set fits with little headroom
                zipf_theta: 0.85,
                hit_ns: 800,
                miss_ns: 250_000,     // a random miss is a storage read
                scan_miss_ns: 20_000, // sequential sweeps stream from disk
                evict_ns: 20_000,
            },
            select_ns: 150_000,
            update_ns: 190_000,
        }
    }
}

/// The built database: resource handles + server config.
#[derive(Debug, Clone)]
pub struct MiniDb {
    /// The substrate's parameters.
    pub cfg: MiniDbConfig,
    /// Per-table locks.
    pub table_locks: Vec<LockId>,
    /// The undo-log mutex.
    pub undo_lock: LockId,
    /// The WAL lock.
    pub wal_lock: LockId,
    /// The buffer pool.
    pub pool: PoolId,
    /// The InnoDB ticket queue.
    pub innodb_queue: QueueId,
}

impl MiniDb {
    /// Builds the substrate.
    pub fn new(cfg: MiniDbConfig) -> Self {
        let table_locks: Vec<LockId> = (0..cfg.n_tables as u32).map(LockId).collect();
        Self {
            undo_lock: LockId(cfg.n_tables as u32),
            wal_lock: LockId(cfg.n_tables as u32 + 1),
            pool: PoolId(0),
            innodb_queue: QueueId(0),
            table_locks,
            cfg,
        }
    }

    /// The server configuration, with every application resource traced.
    pub fn server_config(&self) -> ServerConfig {
        let groups = vec![
            ResourceGroupDef {
                name: "buffer_pool".into(),
                rtype: atropos::ResourceType::Memory,
                members: vec![SimResource::Pool(self.pool)],
            },
            ResourceGroupDef {
                name: "table_lock".into(),
                rtype: atropos::ResourceType::Lock,
                members: self
                    .table_locks
                    .iter()
                    .map(|&l| SimResource::Lock(l))
                    .collect(),
            },
            ResourceGroupDef {
                name: "undo_log".into(),
                rtype: atropos::ResourceType::Lock,
                members: vec![SimResource::Lock(self.undo_lock)],
            },
            ResourceGroupDef {
                name: "wal".into(),
                rtype: atropos::ResourceType::Lock,
                members: vec![SimResource::Lock(self.wal_lock)],
            },
            ResourceGroupDef {
                name: "innodb_queue".into(),
                rtype: atropos::ResourceType::Queue,
                members: vec![SimResource::Queue(self.innodb_queue)],
            },
            ResourceGroupDef {
                name: "io".into(),
                rtype: atropos::ResourceType::System,
                members: vec![SimResource::Io],
            },
            ResourceGroupDef {
                name: "worker_pool".into(),
                rtype: atropos::ResourceType::Queue,
                members: vec![SimResource::WorkerPool],
            },
        ];
        ServerConfig {
            seed: self.cfg.seed,
            workers: self.cfg.workers,
            n_locks: self.cfg.n_tables + 2,
            pools: vec![self.cfg.pool.clone()],
            queues: vec![self.cfg.tickets],
            groups,
            ..Default::default()
        }
    }

    fn pick_table(&self, rng: &mut SimRng) -> LockId {
        self.table_locks[rng.below(self.table_locks.len() as u64) as usize]
    }

    /// Sysbench point-select: ticket → shared table lock → hot pages →
    /// compute.
    pub fn point_select(&self, weight: f64) -> ClassSpec {
        let db = self.clone();
        let base = self.cfg.select_ns;
        ClassSpec::new("point_select", weight, move |rng| {
            let table = db.pick_table(rng);
            let ns = rng.lognormal(base as f64, 0.25) as u64;
            Plan::new()
                .enter(db.innodb_queue)
                .lock(table, LockMode::Shared)
                .pool_hot(db.pool, 6)
                .compute(ns)
                .unlock(table)
                .leave(db.innodb_queue)
        })
    }

    /// Sysbench row-update: adds undo and WAL appends.
    pub fn row_update(&self, weight: f64) -> ClassSpec {
        let db = self.clone();
        let base = self.cfg.update_ns;
        ClassSpec::new("row_update", weight, move |rng| {
            let table = db.pick_table(rng);
            let ns = rng.lognormal(base as f64, 0.25) as u64;
            Plan::new()
                .enter(db.innodb_queue)
                .lock(table, LockMode::Shared)
                .pool_hot(db.pool, 6)
                .compute(ns)
                .lock(db.undo_lock, LockMode::Exclusive)
                .compute(4_000)
                .unlock(db.undo_lock)
                .lock(db.wal_lock, LockMode::Exclusive)
                .compute(3_000)
                .unlock(db.wal_lock)
                .unlock(table)
                .leave(db.innodb_queue)
        })
    }

    /// A long in-memory table scan: holds a shared table lock while it
    /// runs — the enabler of case c1, where a backup's exclusive lock
    /// request queues behind it and convoys every other query. The scanned
    /// table fits in memory (the paper's case-2 setup: five 1 M-row
    /// tables), so the scan's footprint is the lock, not the buffer pool;
    /// pool-sweeping behaviour is the separate [`MiniDb::dump`] class.
    /// Long scans also do not pin an InnoDB ticket for their whole run
    /// (InnoDB forces long-running threads to yield tickets periodically).
    pub fn table_scan(&self, weight: f64, duration_ns: u64) -> ClassSpec {
        let db = self.clone();
        ClassSpec::new("table_scan", weight, move |rng| {
            let table = db.pick_table(rng);
            let ns = rng.lognormal(duration_ns as f64, 0.1) as u64;
            Plan::new()
                .lock(table, LockMode::Shared)
                .pool_hot(db.pool, 32)
                .compute(ns)
                .unlock(table)
        })
    }

    /// A slow in-engine query that *does* hold an InnoDB concurrency
    /// ticket while it computes — the noisy class of case c2 ("slow
    /// queries monopolize the InnoDB queue").
    pub fn slow_query(&self, weight: f64, ns: u64) -> ClassSpec {
        let db = self.clone();
        ClassSpec::new("slow_query", weight, move |rng| {
            let table = db.pick_table(rng);
            let ns = rng.lognormal(ns as f64, 0.15) as u64;
            Plan::new()
                .enter(db.innodb_queue)
                .lock(table, LockMode::Shared)
                .pool_hot(db.pool, 12)
                .compute(ns)
                .unlock(table)
                .leave(db.innodb_queue)
        })
    }

    /// A dump query sweeping the whole dataset through the buffer pool
    /// without table locks (case c5 / Figure 2).
    pub fn dump(&self, weight: f64, pages: u64) -> ClassSpec {
        let db = self.clone();
        ClassSpec::new("dump", weight, move |rng| {
            let base = rng.below(1 << 30);
            Plan::new().pool_scan(db.pool, pages, base)
        })
    }

    /// The backup query: acquires exclusive locks on *all* tables, copies
    /// them, then releases (case c1 / Figure 3 dynamics).
    pub fn backup(&self, copy_ns_per_table: u64) -> ClassSpec {
        let db = self.clone();
        ClassSpec::new("backup", 0.0, move |_rng| {
            let mut p = Plan::new();
            for &t in &db.table_locks {
                p = p.lock(t, LockMode::Exclusive);
            }
            for _ in &db.table_locks {
                p = p.compute(copy_ns_per_table);
            }
            for &t in &db.table_locks {
                p = p.unlock(t);
            }
            p
        })
    }

    /// `SELECT FOR UPDATE` holding one table exclusively (case c4).
    pub fn select_for_update(&self, hold_ns: u64) -> ClassSpec {
        let db = self.clone();
        ClassSpec::new("select_for_update", 0.0, move |_rng| {
            let table = db.table_locks[0];
            Plan::new()
                .enter(db.innodb_queue)
                .lock(table, LockMode::Exclusive)
                .compute(hold_ns)
                .unlock(table)
                .leave(db.innodb_queue)
        })
    }

    /// A bulk MVCC write slowing readers of its table (case c6).
    pub fn bulk_write(&self, hold_ns: u64) -> ClassSpec {
        let db = self.clone();
        ClassSpec::new("bulk_write", 0.0, move |rng| {
            let table = db.pick_table(rng);
            Plan::new()
                .lock(table, LockMode::Exclusive)
                .pool_hot(db.pool, 64)
                .compute(hold_ns)
                .unlock(table)
        })
    }

    /// The background purge task contending on the undo log (case c3).
    pub fn purge(&self, hold_ns: u64) -> ClassSpec {
        let db = self.clone();
        ClassSpec::new("purge", 0.0, move |_rng| {
            Plan::new()
                .lock(db.undo_lock, LockMode::Exclusive)
                .compute(hold_ns)
                .unlock(db.undo_lock)
        })
        .background()
    }

    /// The background WAL writer whose long flush convoys group commit
    /// (case c7).
    pub fn wal_writer(&self, flush_ns: u64) -> ClassSpec {
        let db = self.clone();
        ClassSpec::new("wal_writer", 0.0, move |_rng| {
            Plan::new()
                .lock(db.wal_lock, LockMode::Exclusive)
                .io(flush_ns)
                .unlock(db.wal_lock)
        })
        .background()
    }

    /// The vacuum process saturating the IO device (case c8).
    pub fn vacuum(&self, io_chunks: usize, chunk_ns: u64) -> ClassSpec {
        ClassSpec::new("vacuum", 0.0, move |_rng| {
            let mut p = Plan::new();
            for _ in 0..io_chunks {
                p = p.io(chunk_ns);
            }
            p
        })
        .background()
    }

    /// An IO-touching light class for the PostgreSQL cases (reads hit the
    /// shared device so vacuum contention is visible).
    pub fn select_with_io(&self, weight: f64, io_ns: u64) -> ClassSpec {
        let db = self.clone();
        let base = self.cfg.select_ns;
        ClassSpec::new("select_io", weight, move |rng| {
            let table = db.pick_table(rng);
            let ns = rng.lognormal(base as f64, 0.25) as u64;
            Plan::new()
                .lock(table, LockMode::Shared)
                .compute(ns)
                .io(io_ns)
                .unlock(table)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SimServer;
    use crate::workload::WorkloadSpec;
    use crate::NoControl;
    use atropos_sim::SimTime;

    #[test]
    fn config_declares_all_resources() {
        let db = MiniDb::new(MiniDbConfig::default());
        let cfg = db.server_config();
        assert_eq!(cfg.n_locks, 7); // 5 tables + undo + wal
        assert_eq!(cfg.pools.len(), 1);
        assert_eq!(cfg.queues.len(), 1);
        let names: Vec<&str> = cfg.groups.iter().map(|g| g.name.as_str()).collect();
        for expected in [
            "buffer_pool",
            "table_lock",
            "undo_log",
            "wal",
            "innodb_queue",
            "io",
            "worker_pool",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn plans_reference_valid_resources() {
        let db = MiniDb::new(MiniDbConfig::default());
        let mut rng = SimRng::new(3);
        for spec in [
            db.point_select(1.0),
            db.row_update(1.0),
            db.table_scan(0.0, 1_000_000),
            db.dump(0.0, 1000),
            db.backup(1_000_000),
            db.select_for_update(1_000_000),
            db.bulk_write(1_000_000),
            db.purge(1_000_000),
            db.wal_writer(1_000_000),
            db.vacuum(3, 1_000_000),
            db.select_with_io(1.0, 10_000),
        ] {
            let plan = (spec.make_plan)(&mut rng);
            assert!(!plan.ops.is_empty(), "{} plan empty", spec.name);
        }
    }

    #[test]
    fn backup_locks_all_tables_exclusively() {
        let db = MiniDb::new(MiniDbConfig::default());
        let mut rng = SimRng::new(1);
        let plan = (db.backup(1_000).make_plan)(&mut rng);
        let locks = plan
            .ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    crate::op::Op::AcquireLock {
                        mode: LockMode::Exclusive,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(locks, 5);
    }

    /// Smoke test: the light mix alone sustains ~10 kQPS with low latency.
    #[test]
    fn light_mix_runs_clean() {
        let db = MiniDb::new(MiniDbConfig::default());
        let wl = WorkloadSpec::new(vec![db.point_select(0.65), db.row_update(0.35)], 10_000.0);
        let m = SimServer::new(db.server_config(), wl, Box::new(NoControl))
            .run(SimTime::from_secs(3), SimTime::from_secs(1));
        let tput = m.completed as f64 / 2.0;
        assert!(tput > 9_000.0, "tput {tput}");
        assert!(m.latency.p99() < 5_000_000, "p99 {}", m.latency.p99());
        assert_eq!(m.dropped, 0);
    }

    /// The Figure 3 mechanism end-to-end: a backup stuck behind a scan
    /// convoys every short request on the tables.
    #[test]
    fn backup_behind_scan_collapses_throughput() {
        let db = MiniDb::new(MiniDbConfig::default());
        let wl = WorkloadSpec::new(
            vec![
                db.point_select(0.65),
                db.row_update(0.35),
                db.table_scan(0.0, 2_400_000_000), // 2.4 s scan
                db.backup(50_000_000),
            ],
            8_000.0,
        )
        .inject(SimTime::from_millis(1200), crate::ids::ClassId(2))
        .inject(SimTime::from_millis(1500), crate::ids::ClassId(3));
        let m = SimServer::new(db.server_config(), wl, Box::new(NoControl))
            .run(SimTime::from_secs(4), SimTime::from_secs(1));
        // The convoy stalls a large part of the post-injection window.
        let tput = m.completed as f64 / 3.0;
        assert!(tput < 6_500.0, "tput {tput} should collapse under convoy");
        assert!(
            m.latency.p99() > 200_000_000,
            "p99 {} should reflect multi-second stalls",
            m.latency.p99()
        );
    }
}
