//! `kvstore` — the etcd-like substrate.
//!
//! Case c16 of Table 2: etcd serializes access to its key space with a
//! store-wide reader/writer lock. A complex range read holds the lock in
//! shared mode for seconds; the next writer queues exclusively behind it
//! and, with FIFO granting, every later read queues behind the writer —
//! the same convoy as the MySQL backup case at a different granularity.

use crate::controller::SimResource;
use crate::ids::LockId;
use crate::op::{LockMode, Plan};
use crate::server::{ResourceGroupDef, ServerConfig};
use crate::workload::ClassSpec;

/// Parameters of the KV substrate.
#[derive(Debug, Clone)]
pub struct KvStoreConfig {
    /// RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Median service time of a get (ns).
    pub get_ns: u64,
    /// Median service time of a put (ns).
    pub put_ns: u64,
}

impl Default for KvStoreConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            workers: 64,
            get_ns: 120_000,
            put_ns: 250_000,
        }
    }
}

/// The built KV store.
#[derive(Debug, Clone)]
pub struct KvStore {
    /// Parameters.
    pub cfg: KvStoreConfig,
    /// The store-wide KV lock.
    pub kv_lock: LockId,
}

impl KvStore {
    /// Builds the substrate.
    pub fn new(cfg: KvStoreConfig) -> Self {
        Self {
            kv_lock: LockId(0),
            cfg,
        }
    }

    /// The server configuration.
    pub fn server_config(&self) -> ServerConfig {
        ServerConfig {
            seed: self.cfg.seed,
            workers: self.cfg.workers,
            n_locks: 1,
            groups: vec![ResourceGroupDef {
                name: "kv_lock".into(),
                rtype: atropos::ResourceType::Lock,
                members: vec![SimResource::Lock(self.kv_lock)],
            }],
            ..Default::default()
        }
    }

    /// A point get (shared lock, brief).
    pub fn kv_get(&self, weight: f64) -> ClassSpec {
        let lock = self.kv_lock;
        let base = self.cfg.get_ns;
        ClassSpec::new("kv_get", weight, move |rng| {
            let ns = rng.lognormal(base as f64, 0.3) as u64;
            Plan::new()
                .lock(lock, LockMode::Shared)
                .compute(ns)
                .unlock(lock)
        })
    }

    /// A put (exclusive lock, brief).
    pub fn kv_put(&self, weight: f64) -> ClassSpec {
        let lock = self.kv_lock;
        let base = self.cfg.put_ns;
        ClassSpec::new("kv_put", weight, move |rng| {
            let ns = rng.lognormal(base as f64, 0.3) as u64;
            Plan::new()
                .lock(lock, LockMode::Exclusive)
                .compute(ns)
                .unlock(lock)
        })
    }

    /// The complex range read holding the shared lock for `hold_ns` (c16).
    pub fn range_read(&self, weight: f64, hold_ns: u64) -> ClassSpec {
        let lock = self.kv_lock;
        ClassSpec::new("range_read", weight, move |rng| {
            let ns = rng.lognormal(hold_ns as f64, 0.1) as u64;
            Plan::new()
                .lock(lock, LockMode::Shared)
                .compute(ns)
                .unlock(lock)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SimServer;
    use crate::workload::WorkloadSpec;
    use crate::NoControl;
    use atropos_sim::SimTime;

    #[test]
    fn mixed_get_put_traffic_is_healthy() {
        let kv = KvStore::new(KvStoreConfig::default());
        let wl = WorkloadSpec::new(vec![kv.kv_get(0.8), kv.kv_put(0.2)], 3_000.0);
        let m = SimServer::new(kv.server_config(), wl, Box::new(NoControl))
            .run(SimTime::from_secs(3), SimTime::from_secs(1));
        assert!(m.completed as f64 / 2.0 > 2_700.0);
        assert!(m.latency.p99() < 50_000_000, "p99 {}", m.latency.p99());
    }

    #[test]
    fn range_read_convoys_writers_and_readers() {
        let kv = KvStore::new(KvStoreConfig::default());
        let wl = WorkloadSpec::new(
            vec![
                kv.kv_get(0.8),
                kv.kv_put(0.2),
                kv.range_read(0.0, 1_500_000_000),
            ],
            3_000.0,
        )
        .inject(SimTime::from_millis(1200), crate::ids::ClassId(2));
        let m = SimServer::new(kv.server_config(), wl, Box::new(NoControl))
            .run(SimTime::from_secs(4), SimTime::from_secs(1));
        assert!(
            m.latency.p99() > 1_000_000_000,
            "p99 {} should show the 1.5 s convoy",
            m.latency.p99()
        );
    }
}
