//! `search` — the Elasticsearch/Solr-like substrate.
//!
//! Owns the resources behind cases c10–c15 of Table 2:
//!
//! - a query cache evicted by large searches (c10),
//! - a GC heap exhausted by nested aggregations (c11),
//! - CPU cores monopolized by long-running queries (c12) — modeled as a
//!   ticket queue with `capacity = cores`, traced as a System resource,
//! - a document lock held by large updates (c13),
//! - an index lock held by complex boolean queries (c14, Solr),
//! - a search thread-pool queue occupied by nested range queries (c15,
//!   Solr).

use crate::controller::SimResource;
use crate::ids::{LockId, PoolId, QueueId};
use crate::op::{LockMode, Plan};
use crate::resources::bufferpool::BufferPoolConfig;
use crate::resources::heap::HeapConfig;
use crate::server::{ResourceGroupDef, ServerConfig};
use crate::workload::ClassSpec;

/// Parameters of the search substrate.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// RNG seed.
    pub seed: u64,
    /// OS worker threads.
    pub workers: usize,
    /// Search thread-pool slots (c15's resource).
    pub search_slots: usize,
    /// CPU cores (c12's resource).
    pub cores: usize,
    /// Query cache configuration.
    pub cache: BufferPoolConfig,
    /// Heap configuration.
    pub heap: HeapConfig,
    /// Median compute time of a normal search (ns).
    pub search_ns: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            workers: 96,
            search_slots: 24,
            cores: 6,
            cache: BufferPoolConfig {
                capacity: 8_192,
                hot_keys: 6_500,
                zipf_theta: 0.85,
                hit_ns: 2_000,
                miss_ns: 400_000,     // a cache miss re-executes the query part
                scan_miss_ns: 30_000, // big searches fill entries streaming
                evict_ns: 1_000,
            },
            heap: HeapConfig {
                capacity: 6 << 30,
                gc_threshold: 0.8,
                gc_pause_base_ns: 10_000_000,
                gc_pause_per_mb_ns: 3_000,
                garbage_factor: 4.0,
            },
            search_ns: 400_000,
        }
    }
}

/// The built search engine.
#[derive(Debug, Clone)]
pub struct SearchApp {
    /// Parameters.
    pub cfg: SearchConfig,
    /// The query cache.
    pub cache: PoolId,
    /// The document lock (c13).
    pub doc_lock: LockId,
    /// The index lock (c14).
    pub index_lock: LockId,
    /// The search thread-pool queue (c15).
    pub search_queue: QueueId,
    /// The CPU core queue (c12).
    pub cpu: QueueId,
}

impl SearchApp {
    /// Builds the substrate.
    pub fn new(cfg: SearchConfig) -> Self {
        Self {
            cache: PoolId(0),
            doc_lock: LockId(0),
            index_lock: LockId(1),
            search_queue: QueueId(0),
            cpu: QueueId(1),
            cfg,
        }
    }

    /// The server configuration with all resources traced.
    pub fn server_config(&self) -> ServerConfig {
        let groups = vec![
            ResourceGroupDef {
                name: "query_cache".into(),
                rtype: atropos::ResourceType::Memory,
                members: vec![SimResource::Pool(self.cache)],
            },
            ResourceGroupDef {
                name: "heap".into(),
                rtype: atropos::ResourceType::Memory,
                members: vec![SimResource::Heap],
            },
            ResourceGroupDef {
                name: "doc_lock".into(),
                rtype: atropos::ResourceType::Lock,
                members: vec![SimResource::Lock(self.doc_lock)],
            },
            ResourceGroupDef {
                name: "index_lock".into(),
                rtype: atropos::ResourceType::Lock,
                members: vec![SimResource::Lock(self.index_lock)],
            },
            ResourceGroupDef {
                name: "search_queue".into(),
                rtype: atropos::ResourceType::Queue,
                members: vec![SimResource::Queue(self.search_queue)],
            },
            ResourceGroupDef {
                name: "cpu".into(),
                rtype: atropos::ResourceType::System,
                members: vec![SimResource::Queue(self.cpu)],
            },
        ];
        ServerConfig {
            seed: self.cfg.seed,
            workers: self.cfg.workers,
            n_locks: 2,
            pools: vec![self.cfg.cache.clone()],
            queues: vec![self.cfg.search_slots, self.cfg.cores],
            heap: Some(self.cfg.heap.clone()),
            groups,
            ..Default::default()
        }
    }

    /// A normal search: queue slot → core → index read lock → cache →
    /// compute.
    pub fn search(&self, weight: f64) -> ClassSpec {
        let app = self.clone();
        let base = self.cfg.search_ns;
        ClassSpec::new("search", weight, move |rng| {
            let ns = rng.lognormal(base as f64, 0.35) as u64;
            Plan::new()
                .enter(app.search_queue)
                .enter(app.cpu)
                .lock(app.index_lock, LockMode::Shared)
                .pool_hot(app.cache, 4)
                .compute(ns)
                .unlock(app.index_lock)
                .leave(app.cpu)
                .leave(app.search_queue)
        })
    }

    /// A large search sweeping the query cache cold (c10).
    pub fn big_search(&self, weight: f64, entries: u64) -> ClassSpec {
        let app = self.clone();
        ClassSpec::new("big_search", weight, move |rng| {
            let base = rng.below(1 << 30);
            Plan::new()
                .enter(app.search_queue)
                .pool_scan(app.cache, entries, base)
                .leave(app.search_queue)
        })
    }

    /// A nested aggregation retaining most of the heap (c11).
    pub fn nested_agg(&self, weight: f64, total_bytes: u64, steps: usize) -> ClassSpec {
        let app = self.clone();
        ClassSpec::new("nested_agg", weight, move |_rng| {
            let mut p = Plan::new().enter(app.search_queue);
            let per_step = total_bytes / steps as u64;
            for _ in 0..steps {
                p = p.alloc(per_step).compute(30_000_000);
            }
            p.leave(app.search_queue)
            // Retained bytes are released automatically at request end.
        })
    }

    /// A long-running query monopolizing CPU cores (c12).
    pub fn long_query(&self, weight: f64, ns: u64) -> ClassSpec {
        let app = self.clone();
        ClassSpec::new("long_query", weight, move |rng| {
            let ns = rng.lognormal(ns as f64, 0.1) as u64;
            Plan::new()
                .enter(app.search_queue)
                .enter(app.cpu)
                .compute(ns)
                .leave(app.cpu)
                .leave(app.search_queue)
        })
    }

    /// A large update holding the document lock (c13).
    pub fn big_update(&self, weight: f64, hold_ns: u64) -> ClassSpec {
        let app = self.clone();
        ClassSpec::new("big_update", weight, move |_rng| {
            Plan::new()
                .lock(app.doc_lock, LockMode::Exclusive)
                .compute(hold_ns)
                .unlock(app.doc_lock)
        })
    }

    /// An indexing request needing the document lock briefly (victim class
    /// for c13).
    pub fn index_doc(&self, weight: f64) -> ClassSpec {
        let app = self.clone();
        ClassSpec::new("index_doc", weight, move |rng| {
            let ns = rng.lognormal(250_000.0, 0.3) as u64;
            Plan::new()
                .lock(app.doc_lock, LockMode::Shared)
                .compute(ns)
                .unlock(app.doc_lock)
        })
    }

    /// A complex boolean query holding the index lock exclusively (c14).
    pub fn complex_boolean(&self, weight: f64, hold_ns: u64) -> ClassSpec {
        let app = self.clone();
        ClassSpec::new("complex_boolean", weight, move |_rng| {
            Plan::new()
                .enter(app.search_queue)
                .lock(app.index_lock, LockMode::Exclusive)
                .compute(hold_ns)
                .unlock(app.index_lock)
                .leave(app.search_queue)
        })
    }

    /// A nested range query occupying a search slot for seconds (c15).
    pub fn nested_range(&self, weight: f64, ns: u64) -> ClassSpec {
        let app = self.clone();
        ClassSpec::new("nested_range", weight, move |rng| {
            let ns = rng.lognormal(ns as f64, 0.15) as u64;
            Plan::new()
                .enter(app.search_queue)
                .compute(ns)
                .leave(app.search_queue)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SimServer;
    use crate::workload::WorkloadSpec;
    use crate::NoControl;
    use atropos_sim::{SimRng, SimTime};

    #[test]
    fn config_declares_all_resources() {
        let app = SearchApp::new(SearchConfig::default());
        let cfg = app.server_config();
        assert_eq!(cfg.n_locks, 2);
        assert_eq!(cfg.queues.len(), 2);
        assert!(cfg.heap.is_some());
        let names: Vec<&str> = cfg.groups.iter().map(|g| g.name.as_str()).collect();
        for n in [
            "query_cache",
            "heap",
            "doc_lock",
            "index_lock",
            "search_queue",
            "cpu",
        ] {
            assert!(names.contains(&n), "missing {n}");
        }
    }

    #[test]
    fn all_plans_build() {
        let app = SearchApp::new(SearchConfig::default());
        let mut rng = SimRng::new(5);
        for spec in [
            app.search(1.0),
            app.big_search(0.0, 10_000),
            app.nested_agg(0.0, 2 << 30, 8),
            app.long_query(0.0, 5_000_000_000),
            app.big_update(0.0, 2_000_000_000),
            app.index_doc(0.3),
            app.complex_boolean(0.0, 2_000_000_000),
            app.nested_range(0.0, 2_000_000_000),
        ] {
            assert!(!(spec.make_plan)(&mut rng).ops.is_empty(), "{}", spec.name);
        }
    }

    #[test]
    fn normal_search_traffic_is_healthy() {
        let app = SearchApp::new(SearchConfig::default());
        let wl = WorkloadSpec::new(vec![app.search(1.0)], 8_000.0);
        let m = SimServer::new(app.server_config(), wl, Box::new(NoControl))
            .run(SimTime::from_secs(3), SimTime::from_secs(1));
        assert!(m.completed as f64 / 2.0 > 7_000.0);
        assert!(m.latency.p99() < 10_000_000, "p99 {}", m.latency.p99());
    }

    #[test]
    fn long_queries_starve_cpu() {
        let app = SearchApp::new(SearchConfig::default());
        let wl = WorkloadSpec::new(
            vec![app.search(1.0), app.long_query(0.0, 1_500_000_000)],
            8_000.0,
        )
        // 13 long queries occupy all 12 cores.
        .inject(SimTime::from_millis(1100), crate::ids::ClassId(1))
        .inject(SimTime::from_millis(1150), crate::ids::ClassId(1))
        .inject(SimTime::from_millis(1200), crate::ids::ClassId(1))
        .inject(SimTime::from_millis(1250), crate::ids::ClassId(1))
        .inject(SimTime::from_millis(1300), crate::ids::ClassId(1))
        .inject(SimTime::from_millis(1350), crate::ids::ClassId(1))
        .inject(SimTime::from_millis(1400), crate::ids::ClassId(1))
        .inject(SimTime::from_millis(1450), crate::ids::ClassId(1))
        .inject(SimTime::from_millis(1500), crate::ids::ClassId(1))
        .inject(SimTime::from_millis(1550), crate::ids::ClassId(1))
        .inject(SimTime::from_millis(1600), crate::ids::ClassId(1))
        .inject(SimTime::from_millis(1650), crate::ids::ClassId(1))
        .inject(SimTime::from_millis(1700), crate::ids::ClassId(1));
        let m = SimServer::new(app.server_config(), wl, Box::new(NoControl))
            .run(SimTime::from_secs(4), SimTime::from_secs(1));
        // Once all cores are held, normal searches stall behind them.
        assert!(
            m.latency.p99() > 500_000_000,
            "p99 {} should reflect core starvation",
            m.latency.p99()
        );
    }
}
