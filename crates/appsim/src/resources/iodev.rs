//! A FIFO IO device.
//!
//! Models the system IO resource of case c8 (PostgreSQL vacuum saturating
//! the disk). The device serves submissions in order with a single service
//! channel: a submission at time `t` with service time `s` completes at
//! `max(t, busy_until) + s`. The caller schedules its own completion event
//! at the returned time; waiting time (`start - now`) is what Atropos
//! traces as the System-resource delay.

use atropos_sim::SimTime;

/// The device.
#[derive(Debug, Default)]
pub struct IoDevice {
    busy_until: SimTime,
    submissions: u64,
    busy_ns: u64,
}

/// Result of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoCompletion {
    /// When service begins (queueing ends).
    pub start: SimTime,
    /// When the IO completes.
    pub done: SimTime,
}

impl IoCompletion {
    /// Time spent queued before service.
    pub fn wait_ns(&self, submitted: SimTime) -> u64 {
        self.start.saturating_sub(submitted).as_nanos()
    }
}

impl IoDevice {
    /// Creates an idle device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits an IO of `service_ns` at time `now`.
    pub fn submit(&mut self, now: SimTime, service_ns: u64) -> IoCompletion {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let done = start + SimTime::from_nanos(service_ns);
        self.busy_until = done;
        self.submissions += 1;
        self.busy_ns += service_ns;
        IoCompletion { start, done }
    }

    /// Time at which the device becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// `(submissions, total service ns)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.submissions, self.busy_ns)
    }

    /// Utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_ns as f64 / now.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn idle_device_serves_immediately() {
        let mut d = IoDevice::new();
        let c = d.submit(t(10), 5_000);
        assert_eq!(c.start, t(10));
        assert_eq!(c.done, t(15));
        assert_eq!(c.wait_ns(t(10)), 0);
    }

    #[test]
    fn busy_device_queues_fifo() {
        let mut d = IoDevice::new();
        d.submit(t(0), 10_000);
        let c = d.submit(t(2), 5_000);
        assert_eq!(c.start, t(10));
        assert_eq!(c.done, t(15));
        assert_eq!(c.wait_ns(t(2)), 8_000);
    }

    #[test]
    fn gap_lets_device_go_idle() {
        let mut d = IoDevice::new();
        d.submit(t(0), 1_000);
        let c = d.submit(t(100), 1_000);
        assert_eq!(c.start, t(100));
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut d = IoDevice::new();
        d.submit(t(0), 50_000);
        assert!((d.utilization(t(100)) - 0.5).abs() < 1e-9);
        assert_eq!(d.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut d = IoDevice::new();
        d.submit(t(0), 100);
        d.submit(t(0), 200);
        assert_eq!(d.counters(), (2, 300));
    }
}
