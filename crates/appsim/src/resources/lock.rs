//! Shared/exclusive locks with FIFO wait queues.
//!
//! Models the synchronization resources of Table 2: table locks, backup
//! flush locks, undo-log mutexes, WAL locks, document/index/KV locks.
//! Grants are strictly FIFO (no barging): an acquisition only succeeds
//! immediately if it is compatible with the holders *and* nobody is
//! queued, which is what turns one long holder into a convoy — the paper's
//! case 2 dynamics.

use std::collections::VecDeque;

use crate::ids::{LockId, RequestId};
use crate::op::LockMode;

/// Result of an acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireResult {
    /// The lock was granted immediately.
    Granted,
    /// The requester was placed in the FIFO wait queue.
    Queued,
}

#[derive(Debug, Default)]
struct LockState {
    holders: Vec<(RequestId, LockMode)>,
    waiters: VecDeque<(RequestId, LockMode)>,
}

impl LockState {
    fn compatible(&self, mode: LockMode) -> bool {
        match mode {
            LockMode::Exclusive => self.holders.is_empty(),
            LockMode::Shared => self.holders.iter().all(|(_, m)| *m == LockMode::Shared),
        }
    }

    /// Grants queued waiters that are now compatible; returns their ids.
    fn drain_grants(&mut self) -> Vec<RequestId> {
        let mut granted = Vec::new();
        while let Some(&(req, mode)) = self.waiters.front() {
            if self.compatible(mode) {
                self.waiters.pop_front();
                self.holders.push((req, mode));
                granted.push(req);
            } else {
                break;
            }
        }
        granted
    }
}

/// A namespace of shared/exclusive FIFO locks.
#[derive(Debug, Default)]
pub struct LockManager {
    locks: Vec<LockState>,
}

impl LockManager {
    /// Creates a manager with `n` locks (ids `0..n`).
    pub fn new(n: usize) -> Self {
        Self {
            locks: (0..n).map(|_| LockState::default()).collect(),
        }
    }

    /// Adds one more lock and returns its id.
    pub fn add_lock(&mut self) -> LockId {
        self.locks.push(LockState::default());
        LockId(self.locks.len() as u32 - 1)
    }

    /// Number of locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True if the manager has no locks.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    fn state(&mut self, lock: LockId) -> &mut LockState {
        &mut self.locks[lock.0 as usize]
    }

    /// Attempts to acquire `lock` for `req`.
    pub fn acquire(&mut self, lock: LockId, req: RequestId, mode: LockMode) -> AcquireResult {
        let s = self.state(lock);
        if s.waiters.is_empty() && s.compatible(mode) {
            s.holders.push((req, mode));
            AcquireResult::Granted
        } else {
            s.waiters.push_back((req, mode));
            AcquireResult::Queued
        }
    }

    /// Releases `lock` held by `req`; returns requests granted as a
    /// result (they should be resumed by the caller).
    pub fn release(&mut self, lock: LockId, req: RequestId) -> Vec<RequestId> {
        let s = self.state(lock);
        s.holders.retain(|(r, _)| *r != req);
        s.drain_grants()
    }

    /// Removes `req` from the wait queue of `lock` (cancellation while
    /// blocked). Returns newly granted requests: removing a queued
    /// exclusive waiter can unblock compatible waiters behind it.
    pub fn remove_waiter(&mut self, lock: LockId, req: RequestId) -> Vec<RequestId> {
        let s = self.state(lock);
        let before = s.waiters.len();
        s.waiters.retain(|(r, _)| *r != req);
        if s.waiters.len() == before {
            return Vec::new();
        }
        s.drain_grants()
    }

    /// Current holders of `lock`.
    pub fn holders(&self, lock: LockId) -> Vec<RequestId> {
        self.locks[lock.0 as usize]
            .holders
            .iter()
            .map(|(r, _)| *r)
            .collect()
    }

    /// Length of the wait queue of `lock`.
    pub fn queue_len(&self, lock: LockId) -> usize {
        self.locks[lock.0 as usize].waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> LockManager {
        LockManager::new(2)
    }
    const L: LockId = LockId(0);

    #[test]
    fn shared_holders_coexist() {
        let mut m = mgr();
        assert_eq!(
            m.acquire(L, RequestId(1), LockMode::Shared),
            AcquireResult::Granted
        );
        assert_eq!(
            m.acquire(L, RequestId(2), LockMode::Shared),
            AcquireResult::Granted
        );
        assert_eq!(m.holders(L).len(), 2);
    }

    #[test]
    fn exclusive_excludes_everyone() {
        let mut m = mgr();
        assert_eq!(
            m.acquire(L, RequestId(1), LockMode::Exclusive),
            AcquireResult::Granted
        );
        assert_eq!(
            m.acquire(L, RequestId(2), LockMode::Shared),
            AcquireResult::Queued
        );
        assert_eq!(
            m.acquire(L, RequestId(3), LockMode::Exclusive),
            AcquireResult::Queued
        );
        assert_eq!(m.queue_len(L), 2);
    }

    #[test]
    fn release_grants_fifo_batch_of_shared() {
        let mut m = mgr();
        m.acquire(L, RequestId(1), LockMode::Exclusive);
        m.acquire(L, RequestId(2), LockMode::Shared);
        m.acquire(L, RequestId(3), LockMode::Shared);
        m.acquire(L, RequestId(4), LockMode::Exclusive);
        let granted = m.release(L, RequestId(1));
        assert_eq!(granted, vec![RequestId(2), RequestId(3)]);
        assert_eq!(m.queue_len(L), 1); // the exclusive still waits
    }

    #[test]
    fn no_barging_past_queued_exclusive() {
        // Shared holder + queued exclusive: a new shared request must queue
        // behind the exclusive (this is the convoy that makes the backup
        // lock case block all writers *and* readers).
        let mut m = mgr();
        m.acquire(L, RequestId(1), LockMode::Shared);
        m.acquire(L, RequestId(2), LockMode::Exclusive);
        assert_eq!(
            m.acquire(L, RequestId(3), LockMode::Shared),
            AcquireResult::Queued
        );
        let granted = m.release(L, RequestId(1));
        assert_eq!(granted, vec![RequestId(2)]);
        let granted = m.release(L, RequestId(2));
        assert_eq!(granted, vec![RequestId(3)]);
    }

    #[test]
    fn remove_waiter_can_unblock_followers() {
        let mut m = mgr();
        m.acquire(L, RequestId(1), LockMode::Shared);
        m.acquire(L, RequestId(2), LockMode::Exclusive);
        m.acquire(L, RequestId(3), LockMode::Shared);
        // Cancel the queued exclusive: the shared waiter behind it becomes
        // compatible with the shared holder.
        let granted = m.remove_waiter(L, RequestId(2));
        assert_eq!(granted, vec![RequestId(3)]);
    }

    #[test]
    fn remove_unknown_waiter_is_noop() {
        let mut m = mgr();
        m.acquire(L, RequestId(1), LockMode::Exclusive);
        assert!(m.remove_waiter(L, RequestId(9)).is_empty());
    }

    #[test]
    fn release_without_waiters_grants_nothing() {
        let mut m = mgr();
        m.acquire(L, RequestId(1), LockMode::Exclusive);
        assert!(m.release(L, RequestId(1)).is_empty());
        assert!(m.holders(L).is_empty());
    }

    #[test]
    fn add_lock_extends_namespace() {
        let mut m = mgr();
        let l2 = m.add_lock();
        assert_eq!(l2, LockId(2));
        assert_eq!(m.len(), 3);
        assert_eq!(
            m.acquire(l2, RequestId(5), LockMode::Exclusive),
            AcquireResult::Granted
        );
    }

    #[test]
    fn locks_are_independent() {
        let mut m = mgr();
        m.acquire(LockId(0), RequestId(1), LockMode::Exclusive);
        assert_eq!(
            m.acquire(LockId(1), RequestId(2), LockMode::Exclusive),
            AcquireResult::Granted
        );
    }
}
