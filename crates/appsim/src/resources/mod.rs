//! Application resources of the simulated systems.
//!
//! Each resource is a pure data structure: it tracks ownership and waiting
//! and reports what happened (grants, evictions, pauses); the server turns
//! those reports into scheduling decisions and tracer events. This keeps
//! the resources independently testable and mirrors the paper's
//! observation that resources expose *get / free / wait* operations
//! regardless of their internal logic (§3.2).

pub mod bufferpool;
pub mod heap;
pub mod iodev;
pub mod lock;
pub mod ticket;

pub use bufferpool::{AccessOutcome, BufferPool, BufferPoolConfig};
pub use heap::{AllocOutcome, Heap, HeapConfig};
pub use iodev::IoDevice;
pub use lock::{AcquireResult, LockManager};
pub use ticket::TicketQueue;
