//! Bounded-concurrency ticket queues.
//!
//! Models the thread-pool resources of Table 2: InnoDB's
//! `innodb_thread_concurrency` tickets (c2), Apache's MaxClients-style
//! worker admission (c9), Solr's search queue (c15), and — with
//! `capacity = cores` — CPU contention (c12). Entry is FIFO; a slow
//! request that holds a ticket for seconds starves everyone behind it.

use std::collections::VecDeque;

use crate::ids::RequestId;

/// Result of an entry attempt (mirrors [`super::lock::AcquireResult`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnterResult {
    /// A ticket was granted immediately.
    Granted,
    /// The requester queued.
    Queued,
}

/// A FIFO ticket queue with fixed capacity.
#[derive(Debug)]
pub struct TicketQueue {
    capacity: usize,
    holders: Vec<RequestId>,
    waiters: VecDeque<RequestId>,
}

impl TicketQueue {
    /// Creates a queue with `capacity` tickets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ticket queue needs capacity");
        Self {
            capacity,
            holders: Vec::new(),
            waiters: VecDeque::new(),
        }
    }

    /// Changes the capacity (PARTIES-style partition adjustment). If
    /// capacity grows, queued requests are granted and returned.
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<RequestId> {
        self.capacity = capacity.max(1);
        self.drain_grants()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tickets currently held.
    pub fn active(&self) -> usize {
        self.holders.len()
    }

    /// Requests waiting for a ticket.
    pub fn queued(&self) -> usize {
        self.waiters.len()
    }

    /// Current ticket holders.
    pub fn holders(&self) -> &[RequestId] {
        &self.holders
    }

    fn drain_grants(&mut self) -> Vec<RequestId> {
        let mut granted = Vec::new();
        while self.holders.len() < self.capacity {
            match self.waiters.pop_front() {
                Some(r) => {
                    self.holders.push(r);
                    granted.push(r);
                }
                None => break,
            }
        }
        granted
    }

    /// Attempts to take a ticket.
    pub fn enter(&mut self, req: RequestId) -> EnterResult {
        if self.waiters.is_empty() && self.holders.len() < self.capacity {
            self.holders.push(req);
            EnterResult::Granted
        } else {
            self.waiters.push_back(req);
            EnterResult::Queued
        }
    }

    /// Returns a ticket; grants and returns the next waiters (if any).
    pub fn leave(&mut self, req: RequestId) -> Vec<RequestId> {
        self.holders.retain(|r| *r != req);
        self.drain_grants()
    }

    /// Removes a queued waiter (cancellation while blocked). Returns true
    /// if the request was queued.
    pub fn remove_waiter(&mut self, req: RequestId) -> bool {
        let before = self.waiters.len();
        self.waiters.retain(|r| *r != req);
        self.waiters.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_up_to_capacity_then_queues() {
        let mut q = TicketQueue::new(2);
        assert_eq!(q.enter(RequestId(1)), EnterResult::Granted);
        assert_eq!(q.enter(RequestId(2)), EnterResult::Granted);
        assert_eq!(q.enter(RequestId(3)), EnterResult::Queued);
        assert_eq!(q.active(), 2);
        assert_eq!(q.queued(), 1);
    }

    #[test]
    fn leave_grants_fifo() {
        let mut q = TicketQueue::new(1);
        q.enter(RequestId(1));
        q.enter(RequestId(2));
        q.enter(RequestId(3));
        assert_eq!(q.leave(RequestId(1)), vec![RequestId(2)]);
        assert_eq!(q.leave(RequestId(2)), vec![RequestId(3)]);
        assert!(q.leave(RequestId(3)).is_empty());
    }

    #[test]
    fn no_barging_when_queue_nonempty() {
        let mut q = TicketQueue::new(2);
        q.enter(RequestId(1));
        q.enter(RequestId(2));
        q.enter(RequestId(3));
        q.leave(RequestId(1)); // grants 3
                               // Even though capacity is free after another leave, a newcomer
                               // queues only if someone is ahead; here queue is empty so granted.
        q.leave(RequestId(2));
        assert_eq!(q.enter(RequestId(4)), EnterResult::Granted);
    }

    #[test]
    fn remove_waiter_dequeues() {
        let mut q = TicketQueue::new(1);
        q.enter(RequestId(1));
        q.enter(RequestId(2));
        assert!(q.remove_waiter(RequestId(2)));
        assert!(!q.remove_waiter(RequestId(2)));
        assert!(q.leave(RequestId(1)).is_empty());
    }

    #[test]
    fn growing_capacity_grants_waiters() {
        let mut q = TicketQueue::new(1);
        q.enter(RequestId(1));
        q.enter(RequestId(2));
        q.enter(RequestId(3));
        let granted = q.set_capacity(3);
        assert_eq!(granted, vec![RequestId(2), RequestId(3)]);
    }

    #[test]
    fn shrinking_capacity_does_not_revoke() {
        let mut q = TicketQueue::new(2);
        q.enter(RequestId(1));
        q.enter(RequestId(2));
        assert!(q.set_capacity(1).is_empty());
        assert_eq!(q.active(), 2); // existing holders keep tickets
        assert_eq!(q.enter(RequestId(3)), EnterResult::Queued);
        q.leave(RequestId(1));
        // Still over the new capacity: no grant yet.
        assert_eq!(q.queued(), 1);
        let granted = q.leave(RequestId(2));
        assert_eq!(granted, vec![RequestId(3)]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = TicketQueue::new(0);
    }
}
