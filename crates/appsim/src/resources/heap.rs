//! A GC-managed heap with stop-the-world pauses.
//!
//! Models case c11: an Elasticsearch nested aggregation that retains a
//! large fraction of the heap, pushing occupancy over the GC threshold so
//! collections fire constantly and every collection pauses the world.
//! Allocations retain `live` bytes (freed explicitly or at request end)
//! and generate `garbage` proportional to the allocation; GC reclaims the
//! garbage but not live bytes — so one hog holding live memory makes GC
//! both frequent *and* ineffective.

use crate::ids::RequestId;
use std::collections::HashMap;

/// Heap parameters.
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Heap capacity in bytes.
    pub capacity: u64,
    /// GC triggers when `live + garbage` exceeds this fraction.
    pub gc_threshold: f64,
    /// Fixed pause per collection (ns).
    pub gc_pause_base_ns: u64,
    /// Additional pause per live megabyte (ns).
    pub gc_pause_per_mb_ns: u64,
    /// Garbage generated per allocated byte.
    pub garbage_factor: f64,
}

impl Default for HeapConfig {
    fn default() -> Self {
        Self {
            capacity: 4 << 30, // 4 GB
            gc_threshold: 0.85,
            gc_pause_base_ns: 20_000_000, // 20 ms
            gc_pause_per_mb_ns: 50_000,
            garbage_factor: 1.5,
        }
    }
}

/// Result of an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocOutcome {
    /// If a collection fired, its stop-the-world pause (ns).
    pub gc_pause_ns: Option<u64>,
    /// Garbage bytes reclaimed by that collection.
    pub reclaimed: u64,
}

/// The heap.
#[derive(Debug)]
pub struct Heap {
    cfg: HeapConfig,
    live: u64,
    garbage: u64,
    per_req: HashMap<RequestId, u64>,
    gc_count: u64,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new(cfg: HeapConfig) -> Self {
        Self {
            cfg,
            live: 0,
            garbage: 0,
            per_req: HashMap::new(),
            gc_count: 0,
        }
    }

    /// Live bytes retained by `req`.
    pub fn retained_by(&self, req: RequestId) -> u64 {
        self.per_req.get(&req).copied().unwrap_or(0)
    }

    /// Current occupancy (live + garbage).
    pub fn used(&self) -> u64 {
        self.live + self.garbage
    }

    /// Live bytes.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Collections so far.
    pub fn gc_count(&self) -> u64 {
        self.gc_count
    }

    fn maybe_gc(&mut self) -> (Option<u64>, u64) {
        let threshold = (self.cfg.capacity as f64 * self.cfg.gc_threshold) as u64;
        if self.used() <= threshold {
            return (None, 0);
        }
        self.gc_count += 1;
        let reclaimed = self.garbage;
        self.garbage = 0;
        let pause = self.cfg.gc_pause_base_ns + self.cfg.gc_pause_per_mb_ns * (self.live >> 20);
        (Some(pause), reclaimed)
    }

    /// Allocates `bytes` for `req`; may trigger a collection.
    pub fn alloc(&mut self, req: RequestId, bytes: u64) -> AllocOutcome {
        self.live += bytes;
        *self.per_req.entry(req).or_insert(0) += bytes;
        self.garbage += (bytes as f64 * self.cfg.garbage_factor) as u64;
        let (gc_pause_ns, reclaimed) = self.maybe_gc();
        AllocOutcome {
            gc_pause_ns,
            reclaimed,
        }
    }

    /// Frees up to `bytes` of `req`'s retained memory; returns the amount
    /// actually freed.
    pub fn free(&mut self, req: RequestId, bytes: u64) -> u64 {
        let held = self.per_req.get_mut(&req);
        let Some(held) = held else { return 0 };
        let freed = bytes.min(*held);
        *held -= freed;
        if *held == 0 {
            self.per_req.remove(&req);
        }
        self.live = self.live.saturating_sub(freed);
        freed
    }

    /// Releases everything `req` retained (request end / cancellation).
    pub fn release_all(&mut self, req: RequestId) -> u64 {
        let held = self.per_req.remove(&req).unwrap_or(0);
        self.live = self.live.saturating_sub(held);
        held
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap(capacity: u64) -> Heap {
        Heap::new(HeapConfig {
            capacity,
            gc_threshold: 0.5,
            gc_pause_base_ns: 1_000,
            gc_pause_per_mb_ns: 100,
            garbage_factor: 1.0,
        })
    }

    const R: RequestId = RequestId(1);
    const R2: RequestId = RequestId(2);

    #[test]
    fn alloc_tracks_live_and_garbage() {
        let mut h = heap(1 << 30);
        let out = h.alloc(R, 1 << 20);
        assert_eq!(out.gc_pause_ns, None);
        assert_eq!(h.live(), 1 << 20);
        assert_eq!(h.used(), 2 << 20); // garbage_factor = 1
        assert_eq!(h.retained_by(R), 1 << 20);
    }

    #[test]
    fn gc_fires_over_threshold_and_clears_garbage() {
        let mut h = heap(4 << 20); // threshold = 2 MB
        let out = h.alloc(R, 2 << 20); // used = 4 MB > 2 MB
        assert!(out.gc_pause_ns.is_some());
        assert_eq!(h.gc_count(), 1);
        assert_eq!(h.used(), 2 << 20); // garbage gone, live remains
    }

    #[test]
    fn gc_pause_grows_with_live_bytes() {
        let mut big = heap(4 << 20);
        let p1 = big.alloc(R, 2 << 20).gc_pause_ns.unwrap();
        let mut bigger = heap(8 << 20);
        bigger.alloc(R, 3 << 20);
        let p2 = bigger.alloc(R, 3 << 20).gc_pause_ns.unwrap();
        assert!(p2 > p1);
    }

    #[test]
    fn live_hog_makes_gc_frequent() {
        // With most of the heap live, even small allocations re-trigger GC:
        // the c11 signature.
        let mut h = heap(4 << 20);
        h.alloc(R, 2 << 20); // hog retains 2 MB (= threshold)
        let mut gcs = 0;
        for _ in 0..10 {
            if h.alloc(R2, 4 << 10).gc_pause_ns.is_some() {
                gcs += 1;
            }
            h.release_all(R2);
        }
        assert_eq!(gcs, 10);
    }

    #[test]
    fn free_is_bounded_by_retained() {
        let mut h = heap(1 << 30);
        h.alloc(R, 100);
        assert_eq!(h.free(R, 40), 40);
        assert_eq!(h.free(R, 100), 60);
        assert_eq!(h.free(R, 10), 0);
        assert_eq!(h.live(), 0);
    }

    #[test]
    fn release_all_clears_request() {
        let mut h = heap(1 << 30);
        h.alloc(R, 500);
        h.alloc(R2, 300);
        assert_eq!(h.release_all(R), 500);
        assert_eq!(h.live(), 300);
        assert_eq!(h.release_all(R), 0);
    }
}
