//! An LRU page pool with per-request eviction attribution.
//!
//! Models InnoDB's buffer pool (cases c5 and the paper's Figure 2 study)
//! and, with different cost parameters, Elasticsearch's query cache (c10).
//! Page hits are cheap; misses pay a load penalty and, when the pool is
//! full, evict the least-recently-used page. The pool remembers which
//! request loaded each resident page so eviction can be attributed to the
//! *owner* — this is what lets Atropos' memory accounting see which task
//! holds how much of the pool.

use std::collections::{BTreeSet, HashMap};

use crate::ids::{ClientId, RequestId};
use crate::op::AccessPattern;
use atropos_sim::rng::Zipf;
use atropos_sim::SimRng;

/// Buffer pool parameters.
#[derive(Debug, Clone)]
pub struct BufferPoolConfig {
    /// Capacity in pages.
    pub capacity: usize,
    /// Size of the skewed hot key space (page ids `0..hot_keys`).
    pub hot_keys: u64,
    /// Zipf exponent for skewed accesses.
    pub zipf_theta: f64,
    /// Cost of a page hit (ns).
    pub hit_ns: u64,
    /// Cost of a page miss — random load from storage (ns).
    pub miss_ns: u64,
    /// Cost of a page miss during a sequential scan (streaming reads are
    /// far cheaper per page than random point misses — this is what lets
    /// a dump sweep the pool faster than the hot set can defend itself).
    pub scan_miss_ns: u64,
    /// Extra cost per eviction (write-back of a dirty page, ns).
    pub evict_ns: u64,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        Self {
            capacity: 32_768, // 512 MB of 16 KB pages
            hot_keys: 16_384,
            zipf_theta: 0.9,
            hit_ns: 1_000,
            miss_ns: 80_000,
            scan_miss_ns: 20_000,
            evict_ns: 20_000,
        }
    }
}

/// What an access batch did, so the server can charge time and emit
/// tracer events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Page hits.
    pub hits: u64,
    /// Page misses (loads attributed to the accessing request).
    pub misses: u64,
    /// Evictions grouped by the evicted page's owning request.
    pub evicted: Vec<(RequestId, u64)>,
    /// Virtual time the batch costs the accessing request (ns).
    pub cost_ns: u64,
}

#[derive(Debug, Clone, Copy)]
struct PageMeta {
    owner: RequestId,
    client: ClientId,
    tick: u64,
}

/// The pool.
#[derive(Debug)]
pub struct BufferPool {
    cfg: BufferPoolConfig,
    zipf: Zipf,
    pages: HashMap<u64, PageMeta>,
    lru: BTreeSet<(u64, u64)>, // (tick, page)
    next_tick: u64,
    resident_per_req: HashMap<RequestId, u64>,
    resident_per_client: HashMap<ClientId, u64>,
    /// Optional per-client page quotas (PARTIES/pBox isolation).
    quotas: HashMap<ClientId, u64>,
    total_hits: u64,
    total_misses: u64,
    total_evictions: u64,
}

impl BufferPool {
    /// Creates a pool.
    pub fn new(cfg: BufferPoolConfig) -> Self {
        let zipf = Zipf::new(cfg.hot_keys.max(1) as usize, cfg.zipf_theta);
        Self {
            cfg,
            zipf,
            pages: HashMap::new(),
            lru: BTreeSet::new(),
            next_tick: 0,
            resident_per_req: HashMap::new(),
            resident_per_client: HashMap::new(),
            quotas: HashMap::new(),
            total_hits: 0,
            total_misses: 0,
            total_evictions: 0,
        }
    }

    /// Pre-populates the pool with the first `n` hot pages (attributed to
    /// a sentinel request), modeling a warmed-up server so measurements do
    /// not start from a cold cache.
    pub fn prewarm(&mut self, n: u64) {
        let n = n.min(self.cfg.capacity as u64);
        for page in 0..n {
            if !self.pages.contains_key(&page) {
                self.link(page, RequestId(0), ClientId(u16::MAX));
            }
        }
    }

    /// Sets (or clears, with `None`) a client's page quota.
    pub fn set_quota(&mut self, client: ClientId, quota: Option<u64>) {
        match quota {
            Some(q) => {
                self.quotas.insert(client, q);
            }
            None => {
                self.quotas.remove(&client);
            }
        }
    }

    /// Resident page count currently attributed to `req`.
    pub fn resident_of(&self, req: RequestId) -> u64 {
        self.resident_per_req.get(&req).copied().unwrap_or(0)
    }

    /// Resident page count of a client.
    pub fn resident_of_client(&self, client: ClientId) -> u64 {
        self.resident_per_client.get(&client).copied().unwrap_or(0)
    }

    /// Occupancy in pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Lifetime `(hits, misses, evictions)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.total_hits, self.total_misses, self.total_evictions)
    }

    fn unlink(&mut self, page: u64) -> Option<PageMeta> {
        let meta = self.pages.remove(&page)?;
        self.lru.remove(&(meta.tick, page));
        if let Some(c) = self.resident_per_req.get_mut(&meta.owner) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.resident_per_req.remove(&meta.owner);
            }
        }
        if let Some(c) = self.resident_per_client.get_mut(&meta.client) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.resident_per_client.remove(&meta.client);
            }
        }
        Some(meta)
    }

    fn link(&mut self, page: u64, owner: RequestId, client: ClientId) {
        let tick = self.next_tick;
        self.next_tick += 1;
        self.pages.insert(
            page,
            PageMeta {
                owner,
                client,
                tick,
            },
        );
        self.lru.insert((tick, page));
        *self.resident_per_req.entry(owner).or_insert(0) += 1;
        *self.resident_per_client.entry(client).or_insert(0) += 1;
    }

    fn evict_lru(&mut self) -> Option<PageMeta> {
        let &(_, page) = self.lru.iter().next()?;
        self.total_evictions += 1;
        self.unlink(page)
    }

    /// Evicts the least-recently-used page *of one client* (quota
    /// enforcement). Returns the evicted page's owner.
    fn evict_lru_of_client(&mut self, client: ClientId) -> Option<PageMeta> {
        let page = self
            .lru
            .iter()
            .find(|(_, p)| self.pages.get(p).map(|m| m.client) == Some(client))
            .map(|&(_, p)| p)?;
        self.total_evictions += 1;
        self.unlink(page)
    }

    /// Touches `pages` pages for request `req` of `client`.
    ///
    /// `progress` is the number of pages this op already touched (drives
    /// the position of sequential scans across chunks).
    pub fn access(
        &mut self,
        req: RequestId,
        client: ClientId,
        pattern: AccessPattern,
        pages: u64,
        progress: u64,
        rng: &mut SimRng,
    ) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        let mut evicted: HashMap<RequestId, u64> = HashMap::new();
        for i in 0..pages {
            let page = match pattern {
                AccessPattern::Skewed => self.zipf.sample(rng) as u64,
                // Scans touch cold pages far above the hot key space.
                AccessPattern::Scan { base } => u64::MAX / 2 + base + progress + i,
            };
            if let Some(meta) = self.unlink(page) {
                // Hit: refresh recency, keep original owner attribution.
                self.link(page, meta.owner, meta.client);
                self.total_hits += 1;
                out.hits += 1;
                out.cost_ns += self.cfg.hit_ns;
            } else {
                self.total_misses += 1;
                out.misses += 1;
                out.cost_ns += match pattern {
                    AccessPattern::Skewed => self.cfg.miss_ns,
                    AccessPattern::Scan { .. } => self.cfg.scan_miss_ns,
                };
                // Quota check: a client over quota evicts its own pages.
                let over_quota = self
                    .quotas
                    .get(&client)
                    .is_some_and(|q| self.resident_of_client(client) >= *q);
                let victim = if over_quota {
                    self.evict_lru_of_client(client)
                } else if self.pages.len() >= self.cfg.capacity {
                    self.evict_lru()
                } else {
                    None
                };
                if let Some(v) = victim {
                    *evicted.entry(v.owner).or_insert(0) += 1;
                    out.cost_ns += self.cfg.evict_ns;
                }
                self.link(page, req, client);
            }
        }
        out.evicted = evicted.into_iter().collect();
        out.evicted.sort_by_key(|(r, _)| *r);
        out
    }

    /// The configured access cost parameters.
    pub fn config(&self) -> &BufferPoolConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pool(capacity: usize) -> BufferPool {
        BufferPool::new(BufferPoolConfig {
            capacity,
            hot_keys: 8,
            zipf_theta: 0.0,
            hit_ns: 1,
            miss_ns: 100,
            scan_miss_ns: 100,
            evict_ns: 10,
        })
    }

    fn rng() -> SimRng {
        SimRng::new(1)
    }

    const R1: RequestId = RequestId(1);
    const R2: RequestId = RequestId(2);
    const C0: ClientId = ClientId(0);
    const C1: ClientId = ClientId(1);

    #[test]
    fn first_access_misses_then_hits() {
        let mut p = small_pool(100);
        let mut r = rng();
        let a = p.access(R1, C0, AccessPattern::Scan { base: 0 }, 4, 0, &mut r);
        assert_eq!(a.misses, 4);
        assert_eq!(a.hits, 0);
        assert_eq!(a.cost_ns, 400);
        let b = p.access(R1, C0, AccessPattern::Scan { base: 0 }, 4, 0, &mut r);
        assert_eq!(b.hits, 4);
        assert_eq!(b.misses, 0);
        assert_eq!(b.cost_ns, 4);
    }

    #[test]
    fn scan_progress_advances_the_sweep() {
        let mut p = small_pool(100);
        let mut r = rng();
        p.access(R1, C0, AccessPattern::Scan { base: 0 }, 4, 0, &mut r);
        // Next chunk at progress 4 touches fresh pages.
        let a = p.access(R1, C0, AccessPattern::Scan { base: 0 }, 4, 4, &mut r);
        assert_eq!(a.misses, 4);
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn full_pool_evicts_lru_and_attributes_owner() {
        let mut p = small_pool(4);
        let mut r = rng();
        p.access(R1, C0, AccessPattern::Scan { base: 0 }, 4, 0, &mut r);
        assert_eq!(p.resident_of(R1), 4);
        let a = p.access(R2, C0, AccessPattern::Scan { base: 1000 }, 2, 0, &mut r);
        assert_eq!(a.evicted, vec![(R1, 2)]);
        assert_eq!(p.resident_of(R1), 2);
        assert_eq!(p.resident_of(R2), 2);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn hits_refresh_recency() {
        let mut p = small_pool(4);
        let mut r = rng();
        p.access(R1, C0, AccessPattern::Scan { base: 0 }, 4, 0, &mut r);
        // Touch pages 0..2 again so pages 2..4 become LRU.
        p.access(R1, C0, AccessPattern::Scan { base: 0 }, 2, 0, &mut r);
        let a = p.access(R2, C0, AccessPattern::Scan { base: 1000 }, 2, 0, &mut r);
        assert_eq!(a.evicted, vec![(R1, 2)]);
        // The refreshed pages survived.
        let b = p.access(R1, C0, AccessPattern::Scan { base: 0 }, 2, 0, &mut r);
        assert_eq!(b.hits, 2);
    }

    #[test]
    fn hit_preserves_original_owner() {
        let mut p = small_pool(10);
        let mut r = rng();
        p.access(R1, C0, AccessPattern::Scan { base: 0 }, 2, 0, &mut r);
        // R2 touches R1's pages: hits, attribution stays with R1.
        p.access(R2, C0, AccessPattern::Scan { base: 0 }, 2, 0, &mut r);
        assert_eq!(p.resident_of(R1), 2);
        assert_eq!(p.resident_of(R2), 0);
    }

    #[test]
    fn quota_makes_client_evict_its_own_pages() {
        let mut p = small_pool(100);
        p.set_quota(C1, Some(3));
        let mut r = rng();
        p.access(R1, C0, AccessPattern::Scan { base: 0 }, 5, 0, &mut r);
        let a = p.access(R2, C1, AccessPattern::Scan { base: 1000 }, 6, 0, &mut r);
        // R2's own pages were evicted, never R1's.
        assert!(a.evicted.iter().all(|(owner, _)| *owner == R2));
        assert_eq!(p.resident_of_client(C1), 3);
        assert_eq!(p.resident_of(R1), 5);
        p.set_quota(C1, None);
        let b = p.access(R2, C1, AccessPattern::Scan { base: 2000 }, 3, 0, &mut r);
        assert!(b.evicted.is_empty()); // capacity not reached, quota gone
    }

    #[test]
    fn skewed_accesses_stay_in_hot_space_and_mostly_hit() {
        let mut p = small_pool(100);
        let mut r = rng();
        let warm = p.access(R1, C0, AccessPattern::Skewed, 200, 0, &mut r);
        assert!(warm.misses <= 8); // only 8 hot keys exist
        let after = p.access(R1, C0, AccessPattern::Skewed, 200, 0, &mut r);
        assert_eq!(after.misses, 0);
    }

    #[test]
    fn dump_scan_thrashes_the_hot_set() {
        // The Figure 2 mechanism: a cold sweep bigger than the pool evicts
        // the hot working set, so subsequent hot accesses miss.
        let mut p = small_pool(16);
        let mut r = rng();
        p.access(R1, C0, AccessPattern::Skewed, 100, 0, &mut r); // warm hot set
        let before = p.access(R1, C0, AccessPattern::Skewed, 50, 0, &mut r);
        assert_eq!(before.misses, 0);
        p.access(R2, C0, AccessPattern::Scan { base: 0 }, 64, 0, &mut r); // dump
        let after = p.access(R1, C0, AccessPattern::Skewed, 50, 0, &mut r);
        assert!(after.misses > 0, "hot set should have been evicted");
    }

    #[test]
    fn counters_accumulate() {
        let mut p = small_pool(2);
        let mut r = rng();
        p.access(R1, C0, AccessPattern::Scan { base: 0 }, 3, 0, &mut r);
        let (h, m, e) = p.counters();
        assert_eq!((h, m, e), (0, 3, 1));
    }
}
