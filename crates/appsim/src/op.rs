//! Request plans: the steps a simulated request executes.
//!
//! A request is a [`Plan`] — a sequence of [`Op`] steps over the server's
//! resources. Long operations (compute, page scans) are executed in chunks
//! by the server so cancellation checkpoints and progress reports happen
//! at bounded intervals, mirroring how real applications poll their kill
//! flags at safe points (§2.4).

use crate::ids::{LockId, PoolId, QueueId};

/// Lock acquisition mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) access; compatible with other shared holders.
    Shared,
    /// Exclusive (write) access.
    Exclusive,
}

/// How a pool access selects pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Popularity-skewed access to the pool's hot key space (point
    /// queries, cache lookups).
    Skewed,
    /// A sequential sweep of `pages` distinct cold pages starting at
    /// `base` (scans, dumps, large searches).
    Scan {
        /// First page id of the sweep.
        base: u64,
    },
}

/// One step of a request plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Pure computation for `ns` nanoseconds of virtual time.
    Compute {
        /// Total CPU time.
        ns: u64,
    },
    /// Acquire a lock (blocks until granted).
    AcquireLock {
        /// Which lock.
        lock: LockId,
        /// Shared or exclusive.
        mode: LockMode,
    },
    /// Release a held lock.
    ReleaseLock {
        /// Which lock.
        lock: LockId,
    },
    /// Touch `pages` pages of a buffer pool / cache. Hits cost the pool's
    /// hit time; misses cost its miss penalty and may evict other
    /// requests' pages.
    PoolAccess {
        /// Which pool.
        pool: PoolId,
        /// Number of page touches.
        pages: u64,
        /// Page selection pattern.
        pattern: AccessPattern,
    },
    /// Enter a bounded-concurrency ticket queue (blocks until a ticket is
    /// free).
    EnterQueue {
        /// Which queue.
        queue: QueueId,
    },
    /// Leave a ticket queue, releasing the ticket.
    LeaveQueue {
        /// Which queue.
        queue: QueueId,
    },
    /// Perform `ns` of IO on the shared FIFO device (blocks while queued
    /// and served).
    Io {
        /// Device service time for this operation.
        ns: u64,
    },
    /// Allocate `bytes` from the GC-managed heap (may trigger a
    /// stop-the-world pause).
    HeapAlloc {
        /// Bytes allocated and retained until freed or request end.
        bytes: u64,
    },
    /// Release `bytes` previously allocated by this request.
    HeapFree {
        /// Bytes to release.
        bytes: u64,
    },
}

impl Op {
    /// Abstract work units this op contributes to progress accounting
    /// (the GetNext "rows" analog). Waiting-only ops contribute none.
    pub fn work_units(&self) -> u64 {
        match *self {
            Op::Compute { ns } => ns / 1_000,
            Op::PoolAccess { pages, .. } => pages,
            Op::Io { ns } => ns / 1_000,
            Op::HeapAlloc { bytes } => bytes / 4_096,
            Op::AcquireLock { .. }
            | Op::ReleaseLock { .. }
            | Op::EnterQueue { .. }
            | Op::LeaveQueue { .. }
            | Op::HeapFree { .. } => 0,
        }
    }
}

/// An executable sequence of ops.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Plan {
    /// The steps, executed in order.
    pub ops: Vec<Op>,
}

impl Plan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total work units across all ops (the GetNext `N`).
    pub fn total_work(&self) -> u64 {
        self.ops.iter().map(Op::work_units).sum::<u64>().max(1)
    }

    /// Appends a compute step.
    pub fn compute(mut self, ns: u64) -> Self {
        self.ops.push(Op::Compute { ns });
        self
    }

    /// Appends a lock acquisition.
    pub fn lock(mut self, lock: LockId, mode: LockMode) -> Self {
        self.ops.push(Op::AcquireLock { lock, mode });
        self
    }

    /// Appends a lock release.
    pub fn unlock(mut self, lock: LockId) -> Self {
        self.ops.push(Op::ReleaseLock { lock });
        self
    }

    /// Appends a skewed (hot-set) pool access.
    pub fn pool_hot(mut self, pool: PoolId, pages: u64) -> Self {
        self.ops.push(Op::PoolAccess {
            pool,
            pages,
            pattern: AccessPattern::Skewed,
        });
        self
    }

    /// Appends a sequential cold scan of a pool.
    pub fn pool_scan(mut self, pool: PoolId, pages: u64, base: u64) -> Self {
        self.ops.push(Op::PoolAccess {
            pool,
            pages,
            pattern: AccessPattern::Scan { base },
        });
        self
    }

    /// Appends a ticket-queue entry.
    pub fn enter(mut self, queue: QueueId) -> Self {
        self.ops.push(Op::EnterQueue { queue });
        self
    }

    /// Appends a ticket-queue exit.
    pub fn leave(mut self, queue: QueueId) -> Self {
        self.ops.push(Op::LeaveQueue { queue });
        self
    }

    /// Appends an IO operation.
    pub fn io(mut self, ns: u64) -> Self {
        self.ops.push(Op::Io { ns });
        self
    }

    /// Appends a heap allocation.
    pub fn alloc(mut self, bytes: u64) -> Self {
        self.ops.push(Op::HeapAlloc { bytes });
        self
    }

    /// Appends a heap release.
    pub fn dealloc(mut self, bytes: u64) -> Self {
        self.ops.push(Op::HeapFree { bytes });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_appends_in_order() {
        let p = Plan::new()
            .lock(LockId(1), LockMode::Exclusive)
            .compute(500)
            .unlock(LockId(1));
        assert_eq!(p.ops.len(), 3);
        assert_eq!(
            p.ops[0],
            Op::AcquireLock {
                lock: LockId(1),
                mode: LockMode::Exclusive
            }
        );
        assert_eq!(p.ops[2], Op::ReleaseLock { lock: LockId(1) });
    }

    #[test]
    fn total_work_sums_op_units() {
        let p = Plan::new()
            .compute(10_000) // 10 units
            .pool_hot(PoolId(0), 4) // 4 units
            .lock(LockId(0), LockMode::Shared); // 0 units
        assert_eq!(p.total_work(), 14);
    }

    #[test]
    fn empty_plan_has_nonzero_total_work() {
        assert_eq!(Plan::new().total_work(), 1);
    }

    #[test]
    fn waiting_ops_contribute_no_work() {
        for op in [
            Op::AcquireLock {
                lock: LockId(0),
                mode: LockMode::Shared,
            },
            Op::ReleaseLock { lock: LockId(0) },
            Op::EnterQueue { queue: QueueId(0) },
            Op::LeaveQueue { queue: QueueId(0) },
            Op::HeapFree { bytes: 1 << 20 },
        ] {
            assert_eq!(op.work_units(), 0, "{op:?}");
        }
    }

    #[test]
    fn heavy_ops_scale_with_size() {
        assert!(
            Op::PoolAccess {
                pool: PoolId(0),
                pages: 131_072,
                pattern: AccessPattern::Scan { base: 0 }
            }
            .work_units()
                > Op::PoolAccess {
                    pool: PoolId(0),
                    pages: 4,
                    pattern: AccessPattern::Skewed
                }
                .work_units()
        );
    }
}
