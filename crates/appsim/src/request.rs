//! Request state tracked by the server.

use atropos_sim::SimTime;

use crate::ids::{ClassId, ClientId, LockId, PoolId, QueueId, RequestId};
use crate::op::{Op, Plan};

/// Where a request currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestState {
    /// Waiting for a worker thread.
    Queued,
    /// Executing an op on a worker (a completion event is scheduled).
    Running,
    /// Blocked waiting for a lock.
    BlockedLock(LockId),
    /// Blocked waiting for a concurrency ticket.
    BlockedQueue(QueueId),
    /// Blocked in the IO device queue.
    BlockedIo,
    /// Finished with the given outcome.
    Finished(Outcome),
}

/// Terminal outcome of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion.
    Completed,
    /// Canceled by a controller (may later be re-executed).
    Canceled,
    /// Dropped: rejected at admission, victim-dropped during execution, or
    /// abandoned after cancellation (counts toward the drop rate).
    Dropped,
}

/// A live request (or background job run) inside the server.
#[derive(Debug, Clone)]
pub struct Request {
    /// Identifier.
    pub id: RequestId,
    /// Request class.
    pub class: ClassId,
    /// Owning client/tenant.
    pub client: ClientId,
    /// The plan being executed.
    pub plan: Plan,
    /// Index of the current op.
    pub pc: usize,
    /// Progress inside the current op (ns computed, pages touched…).
    pub op_progress: u64,
    /// Original arrival time; retries keep the original arrival so
    /// end-to-end latency covers the cancellation detour.
    pub arrival: SimTime,
    /// When the request first got a worker.
    pub started_at: Option<SimTime>,
    /// Lifecycle state.
    pub state: RequestState,
    /// Set when a cancellation/drop was requested; honored at the next
    /// cancellation checkpoint.
    pub cancel_flag: bool,
    /// If the pending flag is a victim drop rather than a cancel.
    pub drop_flag: bool,
    /// Whether controllers may cancel this request.
    pub cancellable: bool,
    /// Background job (no SLO; excluded from client latency metrics).
    pub background: bool,
    /// This run is a re-execution of a canceled request.
    pub retry: bool,
    /// Locks currently held.
    pub held_locks: Vec<LockId>,
    /// Tickets currently held.
    pub held_tickets: Vec<QueueId>,
    /// Pools this request has touched (for cleanup attribution).
    pub touched_pools: Vec<PoolId>,
    /// Heap bytes currently retained.
    pub heap_bytes: u64,
    /// Work units completed (GetNext `k`).
    pub work_done: u64,
    /// Estimated total work units (GetNext `N`).
    pub work_total: u64,
    /// Controller-imposed delay added to each executed chunk (pBox
    /// penalties).
    pub throttle_ns: u64,
    /// Guards against stale completion events after cancel/requeue.
    pub epoch: u64,
    /// Accumulated lock waiting time (Protego's signal).
    pub lock_wait_ns: u64,
    /// When the current blocking wait started.
    pub wait_started: Option<SimTime>,
    /// Whether the request currently occupies a worker.
    pub has_worker: bool,
    /// Within-op progress units credited when the scheduled chunk lands.
    pub pending_progress: u64,
    /// Work units credited when the scheduled chunk lands.
    pub pending_work: u64,
    /// Whether the current op completes when the scheduled chunk lands.
    pub pending_advance: bool,
    /// Deferred `Get` trace emission `(group, amount)` at chunk completion
    /// (pairs an eviction stall's `slow` with its `get`).
    pub pending_get: Option<(usize, u64)>,
    /// Index into the workload's recurring background jobs, if this run
    /// belongs to one (the server schedules the next run on completion).
    pub recur_idx: Option<usize>,
    /// Accrued instrumentation overhead charged to the next chunk (§5.5
    /// tracing-cost model).
    pub carry_ns: u64,
}

impl Request {
    /// Creates a queued request from a plan.
    pub fn new(
        id: RequestId,
        class: ClassId,
        client: ClientId,
        plan: Plan,
        arrival: SimTime,
    ) -> Self {
        let work_total = plan.total_work();
        Self {
            id,
            class,
            client,
            plan,
            pc: 0,
            op_progress: 0,
            arrival,
            started_at: None,
            state: RequestState::Queued,
            cancel_flag: false,
            drop_flag: false,
            cancellable: true,
            background: false,
            retry: false,
            held_locks: Vec::new(),
            held_tickets: Vec::new(),
            touched_pools: Vec::new(),
            heap_bytes: 0,
            work_done: 0,
            work_total,
            throttle_ns: 0,
            epoch: 0,
            lock_wait_ns: 0,
            wait_started: None,
            has_worker: false,
            pending_progress: 0,
            pending_work: 0,
            pending_advance: false,
            pending_get: None,
            recur_idx: None,
            carry_ns: 0,
        }
    }

    /// The op at the program counter, if any remain.
    pub fn current_op(&self) -> Option<Op> {
        self.plan.ops.get(self.pc).copied()
    }

    /// Advances to the next op, resetting within-op progress.
    pub fn advance(&mut self) {
        self.pc += 1;
        self.op_progress = 0;
    }

    /// True once a terminal outcome is recorded.
    pub fn is_finished(&self) -> bool {
        matches!(self.state, RequestState::Finished(_))
    }

    /// End-to-end latency if completed at `now`.
    pub fn latency(&self, now: SimTime) -> u64 {
        now.saturating_sub(self.arrival).as_nanos()
    }

    /// Fractional progress in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        (self.work_done as f64 / self.work_total as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::LockMode;

    fn req() -> Request {
        let plan = Plan::new()
            .lock(LockId(0), LockMode::Shared)
            .compute(5_000)
            .unlock(LockId(0));
        Request::new(
            RequestId(1),
            ClassId(0),
            ClientId(0),
            plan,
            SimTime::from_millis(1),
        )
    }

    #[test]
    fn new_request_is_queued_with_plan_work() {
        let r = req();
        assert_eq!(r.state, RequestState::Queued);
        assert_eq!(r.work_total, 5);
        assert!(r.cancellable);
        assert!(!r.background);
    }

    #[test]
    fn advance_walks_the_plan() {
        let mut r = req();
        assert!(matches!(r.current_op(), Some(Op::AcquireLock { .. })));
        r.advance();
        assert!(matches!(r.current_op(), Some(Op::Compute { .. })));
        r.advance();
        r.advance();
        assert_eq!(r.current_op(), None);
    }

    #[test]
    fn latency_is_from_original_arrival() {
        let r = req();
        assert_eq!(r.latency(SimTime::from_millis(5)), 4_000_000);
        assert_eq!(r.latency(SimTime::ZERO), 0); // saturates
    }

    #[test]
    fn progress_is_capped_at_one() {
        let mut r = req();
        r.work_done = r.work_total * 2;
        assert_eq!(r.progress(), 1.0);
    }

    #[test]
    fn finished_state_detection() {
        let mut r = req();
        assert!(!r.is_finished());
        r.state = RequestState::Finished(Outcome::Completed);
        assert!(r.is_finished());
    }
}
