#![warn(missing_docs)]

//! Simulated applications and application resources.
//!
//! The paper integrates Atropos into MySQL, PostgreSQL, Apache,
//! Elasticsearch, Solr and etcd, and reproduces 16 real-world overload
//! bugs on a cloud testbed. This crate provides the synthetic equivalent:
//! four simulated applications built on the `atropos-sim` discrete-event
//! kernel, each owning the same *application resources* those systems
//! expose to Atropos:
//!
//! - [`resources::lock::LockManager`] — FIFO shared/exclusive locks
//!   (table locks, undo log, WAL, document/index/KV locks),
//! - [`resources::bufferpool::BufferPool`] — LRU page cache with eviction
//!   attribution (InnoDB buffer pool, Elasticsearch query cache),
//! - [`resources::ticket::TicketQueue`] — bounded concurrency tickets
//!   (InnoDB thread concurrency, CPU cores, Solr search queue),
//! - [`resources::iodev::IoDevice`] — a FIFO disk (PostgreSQL vacuum IO),
//! - [`resources::heap::Heap`] — an allocation arena with stop-the-world
//!   GC (Elasticsearch heap).
//!
//! [`server::SimServer`] executes requests — plans of [`op::Op`] steps —
//! over these resources with worker-pool semantics, cancellation
//! checkpoints, and pluggable overload controllers ([`controller`]).
//! [`glue::AtroposController`] wires a server to the `atropos` runtime,
//! playing the role of the ~20–70 lines of instrumentation the paper adds
//! to each application (Table 3).

pub mod apps;
pub mod controller;
pub mod glue;
pub mod ids;
pub mod op;
pub mod request;
pub mod resources;
pub mod server;
pub mod workload;

pub use controller::{Action, AdmitDecision, Controller, NoControl, RequestView, ServerView};
pub use ids::{ClassId, ClientId, LockId, PoolId, QueueId, RequestId};
pub use op::{LockMode, Op, Plan};
pub use request::{Outcome, Request, RequestState};
pub use server::{CancelRecord, ServerConfig, SimServer};
pub use workload::{ClassSpec, Injection, WorkloadSpec};
