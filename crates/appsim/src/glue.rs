//! Integration of the Atropos runtime with the simulated server.
//!
//! This module plays the role of the instrumentation the paper adds to
//! each application (Table 3): it registers the server's resource groups
//! with the runtime, maps requests to cancellable tasks, forwards
//! get/free/slowBy events and GetNext progress, and executes the
//! runtime's cancel / re-execute / drop decisions through server actions
//! — the server's `cancel_request` is the analog of MySQL's `sql_kill`.
//!
//! All protocol traffic flows through the substrate port
//! ([`RuntimePort`]), never against `AtroposRuntime` directly, so
//! middleware (the chaos `FaultInjector`, a counting probe) can be
//! stacked between the simulated application and the runtime via
//! [`AtroposController::new_with_middleware`].

use std::collections::HashMap;
use std::sync::Arc;

use atropos::{AtroposConfig, AtroposRuntime, TaskId, TaskKey, TimestampMode};
use atropos_sim::{SimTime, VirtualClock};
use atropos_substrate::{CancelInitiator, RuntimePort};
use parking_lot::Mutex;

use crate::controller::{Action, AdmitDecision, Controller, ResourceEvent, ServerView, TraceKind};
use crate::ids::RequestId;
use crate::request::{Outcome, Request};
use crate::server::ResourceGroupDef;

/// Virtual-time cost per trace event, modeling the instrumentation
/// overhead measured in §5.5: cheap amortized timestamps under normal
/// load, per-event `rdtsc` plus estimator work under potential overload.
#[derive(Debug, Clone, Copy)]
pub struct OverheadModel {
    /// Cost per event in sampled-timestamp mode (ns).
    pub sampled_ns: u64,
    /// Cost per event in precise-timestamp mode (ns).
    pub precise_ns: u64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        Self {
            sampled_ns: 25,
            precise_ns: 450,
        }
    }
}

/// The controller's side of the cancellation contract: decisions arriving
/// from the runtime are buffered and drained into server [`Action`]s on
/// the next tick (the simulator applies actions at tick boundaries).
struct BufferedInitiator {
    cancel: Arc<Mutex<Vec<u64>>>,
    reexec: Arc<Mutex<Vec<u64>>>,
    drop: Arc<Mutex<Vec<u64>>>,
}

impl CancelInitiator for BufferedInitiator {
    fn cancel(&self, key: TaskKey) {
        self.cancel.lock().push(key.0);
    }

    fn reexec(&self, key: TaskKey) {
        self.reexec.lock().push(key.0);
    }

    fn drop_parked(&self, key: TaskKey) {
        self.drop.lock().push(key.0);
    }
}

/// The Atropos integration controller.
pub struct AtroposController {
    rt: Arc<AtroposRuntime>,
    /// The protocol surface every event goes through; either the runtime
    /// itself or a middleware stack over it.
    port: Arc<dyn RuntimePort>,
    resource_ids: Vec<atropos::ResourceId>,
    tasks: HashMap<RequestId, TaskId>,
    cancel_buf: Arc<Mutex<Vec<u64>>>,
    reexec_buf: Arc<Mutex<Vec<u64>>>,
    drop_buf: Arc<Mutex<Vec<u64>>>,
    overhead: OverheadModel,
    zero_overhead: bool,
    /// Admission controller consulted for *regular* (demand) overload —
    /// the "other overload control mechanisms in place" the paper
    /// delegates to when no application resource is bottlenecked (§3.3).
    /// Typically a `Breakwater`.
    fallback: Option<Box<dyn Controller>>,
}

impl AtroposController {
    /// Builds the controller: creates the runtime on the server's clock
    /// and registers every traced resource group.
    ///
    /// `cancellation_enabled = false` keeps tracing and decision logic
    /// running but never invokes the initiator — the configuration used to
    /// isolate overhead in Figure 14.
    pub fn new(
        cfg: AtroposConfig,
        clock: Arc<VirtualClock>,
        groups: &[ResourceGroupDef],
        cancellation_enabled: bool,
    ) -> Self {
        Self::new_with_middleware(cfg, clock, groups, cancellation_enabled, |port| port)
    }

    /// [`AtroposController::new`] with a middleware stack between the
    /// controller and the runtime: `wrap` receives the runtime's port and
    /// returns the port the controller will speak (e.g. a chaos
    /// `FaultInjector` or a counting probe over it). Resource
    /// registration and initiator installation also flow through the
    /// returned port, so middleware observes the full protocol.
    pub fn new_with_middleware(
        cfg: AtroposConfig,
        clock: Arc<VirtualClock>,
        groups: &[ResourceGroupDef],
        cancellation_enabled: bool,
        wrap: impl FnOnce(Arc<dyn RuntimePort>) -> Arc<dyn RuntimePort>,
    ) -> Self {
        let rt = Arc::new(AtroposRuntime::new(cfg, clock));
        let port = wrap(rt.clone());
        let resource_ids = groups
            .iter()
            .map(|g| port.register_resource(&g.name, g.rtype))
            .collect();
        let cancel_buf = Arc::new(Mutex::new(Vec::new()));
        let reexec_buf = Arc::new(Mutex::new(Vec::new()));
        let drop_buf = Arc::new(Mutex::new(Vec::new()));
        // Installing an initiator is observable (a runtime without one
        // answers NoInitiator and issues nothing), so the Figure 14
        // "cancellation disabled" configuration must skip installation
        // entirely. The re-execution and drop legs ride with the
        // initiator: they can only ever fire for issued cancels.
        if cancellation_enabled {
            port.install_initiator(Arc::new(BufferedInitiator {
                cancel: cancel_buf.clone(),
                reexec: reexec_buf.clone(),
                drop: drop_buf.clone(),
            }));
        }
        Self {
            rt,
            port,
            resource_ids,
            tasks: HashMap::new(),
            cancel_buf,
            reexec_buf,
            drop_buf,
            overhead: OverheadModel::default(),
            zero_overhead: false,
            fallback: None,
        }
    }

    /// Attaches the admission controller that handles regular (demand)
    /// overload. Atropos itself performs no admission control (§1); under
    /// pure demand overload the detector classifies the condition as
    /// *regular* and this controller's decisions apply.
    pub fn with_fallback(mut self, fallback: Box<dyn Controller>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Overrides the overhead model.
    pub fn with_overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Disables the overhead model entirely (for experiments that isolate
    /// policy behaviour from tracing cost).
    pub fn without_overhead(mut self) -> Self {
        self.zero_overhead = true;
        self
    }

    /// A handle to the runtime, for inspecting stats after a run.
    pub fn runtime(&self) -> Arc<AtroposRuntime> {
        self.rt.clone()
    }

    fn ensure_task(&mut self, req: &Request) -> TaskId {
        if let Some(&t) = self.tasks.get(&req.id) {
            return t;
        }
        let t = self.port.create_cancel(Some(req.id.0));
        if !req.cancellable || req.retry {
            self.port.set_cancellable(t, false);
        }
        if req.background {
            self.port.mark_background(t);
        }
        self.port.unit_started(t);
        self.port.progress(t, req.work_done, req.work_total);
        self.tasks.insert(req.id, t);
        t
    }
}

impl Controller for AtroposController {
    fn name(&self) -> &'static str {
        "atropos"
    }

    fn on_arrival(&mut self, now: SimTime, req: &Request) -> AdmitDecision {
        // Atropos performs no admission control itself (§1); demand
        // overload is the fallback's business.
        if let Some(fb) = self.fallback.as_mut() {
            if fb.on_arrival(now, req) == AdmitDecision::Reject {
                return AdmitDecision::Reject;
            }
        }
        self.ensure_task(req);
        AdmitDecision::Admit
    }

    fn on_start(&mut self, _now: SimTime, req: &Request) {
        // Re-executed (revived) requests skip admission; register here.
        self.ensure_task(req);
    }

    fn on_finish(&mut self, now: SimTime, req: &Request, outcome: Outcome) {
        if let Some(fb) = self.fallback.as_mut() {
            fb.on_finish(now, req, outcome);
        }
        let Some(task) = self.tasks.remove(&req.id) else {
            return;
        };
        match outcome {
            Outcome::Completed => {
                self.port.unit_finished(task);
            }
            Outcome::Canceled => {}
            Outcome::Dropped => {
                if !req.background {
                    self.port.record_drop();
                }
            }
        }
        self.port.free_cancel(task);
    }

    fn on_resource_event(&mut self, _now: SimTime, ev: &ResourceEvent) {
        let Some(&task) = self.tasks.get(&ev.req) else {
            return;
        };
        let rid = self.resource_ids[ev.group];
        match ev.kind {
            TraceKind::Get => self.port.get(task, rid, ev.amount),
            TraceKind::Free => self.port.free(task, rid, ev.amount),
            TraceKind::Slow => self.port.slow_by(task, rid, ev.amount),
        }
    }

    fn on_progress(&mut self, _now: SimTime, req: &Request) {
        if let Some(&task) = self.tasks.get(&req.id) {
            self.port.progress(task, req.work_done, req.work_total);
        }
    }

    fn on_tick(&mut self, now: SimTime, view: &ServerView) -> Vec<Action> {
        let _ = self.port.tick();
        let mut actions = Vec::new();
        if let Some(fb) = self.fallback.as_mut() {
            actions.extend(fb.on_tick(now, view));
        }
        for key in self.cancel_buf.lock().drain(..) {
            actions.push(Action::Cancel(RequestId(key)));
        }
        for key in self.reexec_buf.lock().drain(..) {
            actions.push(Action::Reexec(RequestId(key)));
        }
        for key in self.drop_buf.lock().drain(..) {
            actions.push(Action::DropParked(RequestId(key)));
        }
        actions
    }

    fn per_event_overhead_ns(&self) -> u64 {
        if self.zero_overhead {
            return 0;
        }
        match self.rt.timestamp_mode() {
            TimestampMode::Sampled => self.overhead.sampled_ns,
            TimestampMode::Precise => self.overhead.precise_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClassId, ClientId};
    use crate::op::Plan;
    use atropos_sim::Clock;
    use atropos_substrate::ProbePort;

    fn controller() -> AtroposController {
        let clock = Arc::new(VirtualClock::new());
        let groups = vec![ResourceGroupDef {
            name: "lock".into(),
            rtype: atropos::ResourceType::Lock,
            members: vec![],
        }];
        AtroposController::new(AtroposConfig::default(), clock, &groups, true)
    }

    fn request(id: u64) -> Request {
        Request::new(
            RequestId(id),
            ClassId(0),
            ClientId(0),
            Plan::new().compute(1000),
            SimTime::ZERO,
        )
    }

    #[test]
    fn arrival_creates_task_and_finish_frees_it() {
        let mut c = controller();
        let req = request(1);
        c.on_arrival(SimTime::ZERO, &req);
        assert_eq!(c.rt.task_count(), 1);
        c.on_finish(SimTime::from_millis(1), &req, Outcome::Completed);
        assert_eq!(c.rt.task_count(), 0);
        assert_eq!(c.rt.stats().completions, 1);
    }

    #[test]
    fn resource_events_reach_the_runtime() {
        let mut c = controller();
        let req = request(1);
        c.on_arrival(SimTime::ZERO, &req);
        c.on_resource_event(
            SimTime::ZERO,
            &ResourceEvent {
                group: 0,
                kind: TraceKind::Get,
                req: req.id,
                amount: 1,
            },
        );
        assert_eq!(c.rt.stats().trace_events, 1);
    }

    #[test]
    fn events_for_unknown_requests_are_skipped() {
        let mut c = controller();
        c.on_resource_event(
            SimTime::ZERO,
            &ResourceEvent {
                group: 0,
                kind: TraceKind::Get,
                req: RequestId(99),
                amount: 1,
            },
        );
        assert_eq!(c.rt.stats().trace_events, 0);
    }

    #[test]
    fn non_cancellable_and_background_flags_propagate() {
        let mut c = controller();
        let mut req = request(1);
        req.cancellable = false;
        req.background = true;
        c.on_arrival(SimTime::ZERO, &req);
        // The runtime's estimator will never offer this task to the
        // policy; verified indirectly via task flags in the runtime.
        assert_eq!(c.rt.task_count(), 1);
    }

    #[test]
    fn overhead_follows_timestamp_mode() {
        let c = controller();
        assert_eq!(
            c.per_event_overhead_ns(),
            OverheadModel::default().sampled_ns
        );
        let z = controller().without_overhead();
        assert_eq!(z.per_event_overhead_ns(), 0);
    }

    /// Drives a lock-hog overload purely through the controller hooks and
    /// asserts the runtime's cancel decision surfaces as a `Cancel` action
    /// naming the hog's request id.
    #[test]
    fn runtime_cancellations_surface_as_actions() {
        let clock = Arc::new(VirtualClock::new());
        let groups = vec![ResourceGroupDef {
            name: "lock".into(),
            rtype: atropos::ResourceType::Lock,
            members: vec![],
        }];
        let mut cfg = AtroposConfig::default().with_slo_ns(10_000_000);
        cfg.cancel_min_interval_ns = 0;
        let mut c = AtroposController::new(cfg, clock.clone(), &groups, true);
        let view = ServerView {
            now: SimTime::ZERO,
            requests: vec![],
            recent: Default::default(),
            client_p99: vec![],
            queues: vec![],
            workers_active: 0,
            workers_queued: 0,
        };
        const MS: u64 = 1_000_000;
        // The hog holds the lock from t = 0 with low progress.
        let mut hog = request(99);
        hog.work_done = 5;
        hog.work_total = 100;
        c.on_arrival(SimTime::ZERO, &hog);
        c.on_resource_event(
            SimTime::ZERO,
            &ResourceEvent {
                group: 0,
                kind: TraceKind::Get,
                req: hog.id,
                amount: 1,
            },
        );
        // Victims wait on the lock; healthy traffic fills window 0.
        for i in 0..10u64 {
            let v = request(i);
            c.on_arrival(SimTime::ZERO, &v);
            c.on_resource_event(
                SimTime::ZERO,
                &ResourceEvent {
                    group: 0,
                    kind: TraceKind::Slow,
                    req: v.id,
                    amount: 1,
                },
            );
        }
        for step in 1..=20u64 {
            clock.advance_to(atropos_sim::SimTime::from_nanos(step * 5 * MS / 2));
            let t = request(1000 + step);
            c.on_arrival(clock.now(), &t);
            c.on_finish(clock.now(), &t, Outcome::Completed);
        }
        // Completions stop at 50 ms while the hog and its victims stay in
        // flight: a stall the detector flags within a couple of windows.
        clock.advance_to(atropos_sim::SimTime::from_millis(100));
        let actions = c.on_tick(clock.now(), &view);
        assert!(
            actions.contains(&Action::Cancel(RequestId(99))),
            "expected cancel of the hog, got {actions:?}"
        );
    }

    /// The controller drives the runtime identically whichever ingest
    /// path the config selects: the same hog scenario produces the same
    /// action stream and the same event accounting under direct
    /// per-event ingestion, sharded batch-drained ingestion, and the
    /// lock-free epoch-drained default.
    #[test]
    fn ingest_modes_produce_identical_action_streams() {
        let drive = |mode: atropos::IngestMode| {
            let clock = Arc::new(VirtualClock::new());
            let groups = vec![ResourceGroupDef {
                name: "lock".into(),
                rtype: atropos::ResourceType::Lock,
                members: vec![],
            }];
            let mut cfg = AtroposConfig::default().with_slo_ns(10_000_000);
            cfg.cancel_min_interval_ns = 0;
            cfg.ingest_mode = mode;
            let mut c = AtroposController::new(cfg, clock.clone(), &groups, true);
            let view = ServerView {
                now: SimTime::ZERO,
                requests: vec![],
                recent: Default::default(),
                client_p99: vec![],
                queues: vec![],
                workers_active: 0,
                workers_queued: 0,
            };
            const MS: u64 = 1_000_000;
            let mut hog = request(99);
            hog.work_done = 5;
            hog.work_total = 100;
            c.on_arrival(SimTime::ZERO, &hog);
            c.on_resource_event(
                SimTime::ZERO,
                &ResourceEvent {
                    group: 0,
                    kind: TraceKind::Get,
                    req: hog.id,
                    amount: 1,
                },
            );
            for i in 0..10u64 {
                let v = request(i);
                c.on_arrival(SimTime::ZERO, &v);
                c.on_resource_event(
                    SimTime::ZERO,
                    &ResourceEvent {
                        group: 0,
                        kind: TraceKind::Slow,
                        req: v.id,
                        amount: 1,
                    },
                );
            }
            let mut all_actions = Vec::new();
            for step in 1..=20u64 {
                clock.advance_to(atropos_sim::SimTime::from_nanos(step * 5 * MS / 2));
                let t = request(1000 + step);
                c.on_arrival(clock.now(), &t);
                c.on_finish(clock.now(), &t, Outcome::Completed);
            }
            clock.advance_to(atropos_sim::SimTime::from_millis(100));
            all_actions.extend(c.on_tick(clock.now(), &view));
            clock.advance_to(atropos_sim::SimTime::from_millis(200));
            all_actions.extend(c.on_tick(clock.now(), &view));
            let stats = c.runtime().stats();
            (all_actions, stats.trace_events, stats.ignored_events)
        };
        let direct = drive(atropos::IngestMode::Direct);
        let sharded = drive(atropos::IngestMode::Sharded);
        let lockfree = drive(atropos::IngestMode::LockFree);
        assert_eq!(direct, sharded);
        assert_eq!(direct, lockfree);
        assert!(direct.0.contains(&Action::Cancel(RequestId(99))));
    }

    /// A middleware stack between the controller and the runtime sees the
    /// full protocol — registration, task scoping, tracing, ticks — and
    /// the controller behaves identically through it.
    #[test]
    fn middleware_observes_the_full_protocol() {
        let clock = Arc::new(VirtualClock::new());
        let groups = vec![ResourceGroupDef {
            name: "lock".into(),
            rtype: atropos::ResourceType::Lock,
            members: vec![],
        }];
        let probe = Arc::new(Mutex::new(None::<Arc<ProbePort>>));
        let p2 = probe.clone();
        let mut c = AtroposController::new_with_middleware(
            AtroposConfig::default(),
            clock,
            &groups,
            true,
            move |port| {
                let p = Arc::new(ProbePort::new(port));
                *p2.lock() = Some(p.clone());
                p
            },
        );
        let req = request(1);
        c.on_arrival(SimTime::ZERO, &req);
        c.on_resource_event(
            SimTime::ZERO,
            &ResourceEvent {
                group: 0,
                kind: TraceKind::Get,
                req: req.id,
                amount: 1,
            },
        );
        c.on_finish(SimTime::from_millis(1), &req, Outcome::Completed);
        let counts = probe.lock().as_ref().unwrap().counts();
        assert_eq!(counts.gets, 1);
        assert_eq!(counts.units_started, 1);
        assert_eq!(counts.units_finished, 1);
        // Forwarded through to the real runtime unchanged.
        assert_eq!(c.rt.stats().trace_events, 1);
        assert_eq!(c.rt.stats().completions, 1);
    }

    #[test]
    fn progress_reports_flow_to_the_runtime() {
        let mut c = controller();
        let mut req = request(1);
        req.work_total = 100;
        c.on_arrival(SimTime::ZERO, &req);
        req.work_done = 40;
        c.on_progress(SimTime::ZERO, &req);
        // No panic and the task still registered; progress value is
        // asserted through the estimator in runtime tests.
        assert_eq!(c.rt.task_count(), 1);
    }

    #[test]
    fn dropped_requests_record_into_the_detector_series() {
        let mut c = controller();
        let req = request(1);
        c.on_arrival(SimTime::ZERO, &req);
        c.on_finish(SimTime::ZERO, &req, Outcome::Dropped);
        assert_eq!(c.rt.task_count(), 0);
    }

    #[test]
    fn tick_with_no_load_produces_no_actions() {
        let mut c = controller();
        let view = ServerView {
            now: SimTime::ZERO,
            requests: vec![],
            recent: Default::default(),
            client_p99: vec![],
            queues: vec![],
            workers_active: 0,
            workers_queued: 0,
        };
        assert!(c.on_tick(SimTime::ZERO, &view).is_empty());
    }
}
