#![warn(missing_docs)]

//! The task-cancellation prevalence survey (paper §2.4, Table 1).
//!
//! The paper manually reviews 151 popular open-source projects and labels
//! each with (a) whether it implements task cancellation and (b) whether
//! that cancellation is exposed through a *cancellation initiator* — a
//! callable entry point (like MySQL's `KILL` / `sql_kill`) Atropos can
//! hook. This crate encodes the survey as data so Table 1 regenerates
//! from code. Per-project labels are best-effort reconstructions from
//! public documentation; the per-language totals match the paper's.

mod dataset;

pub use dataset::DATASET;

use serde::{Deserialize, Serialize};

/// Implementation language groups used by Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Language {
    /// C or C++.
    CCpp,
    /// Java (and JVM).
    Java,
    /// Go.
    Go,
    /// Python.
    Python,
}

impl std::fmt::Display for Language {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Language::CCpp => "C/C++",
            Language::Java => "Java",
            Language::Go => "Go",
            Language::Python => "Python",
        };
        f.write_str(s)
    }
}

/// One surveyed application.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AppEntry {
    /// Project name.
    pub name: &'static str,
    /// Implementation language.
    pub language: Language,
    /// Implements task cancellation in its codebase.
    pub supports_cancel: bool,
    /// Exposes a built-in initiator for launching cancellation.
    pub has_initiator: bool,
}

/// One row of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LanguageSummary {
    /// Language label.
    pub language: String,
    /// Applications surveyed.
    pub applications: usize,
    /// Applications supporting cancellation.
    pub supporting_cancel: usize,
    /// Applications with a built-in initiator.
    pub with_initiator: usize,
}

/// Summarizes the dataset into Table 1's rows (one per language) plus a
/// total row.
pub fn summarize() -> Vec<LanguageSummary> {
    let mut rows = Vec::new();
    for lang in [
        Language::CCpp,
        Language::Java,
        Language::Go,
        Language::Python,
    ] {
        let apps: Vec<&AppEntry> = DATASET.iter().filter(|a| a.language == lang).collect();
        rows.push(LanguageSummary {
            language: lang.to_string(),
            applications: apps.len(),
            supporting_cancel: apps.iter().filter(|a| a.supports_cancel).count(),
            with_initiator: apps.iter().filter(|a| a.has_initiator).count(),
        });
    }
    rows.push(LanguageSummary {
        language: "Total".into(),
        applications: DATASET.len(),
        supporting_cancel: DATASET.iter().filter(|a| a.supports_cancel).count(),
        with_initiator: DATASET.iter().filter(|a| a.has_initiator).count(),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table_1() {
        let rows = summarize();
        let total = rows.last().unwrap();
        assert_eq!(total.applications, 151);
        assert_eq!(total.supporting_cancel, 115);
        assert_eq!(total.with_initiator, 109);
    }

    #[test]
    fn per_language_rows_match_table_1() {
        let rows = summarize();
        let expect = [
            ("C/C++", 60, 49, 46),
            ("Java", 34, 25, 25),
            ("Go", 44, 32, 29),
            ("Python", 13, 9, 9),
        ];
        for (lang, apps, sup, init) in expect {
            let row = rows.iter().find(|r| r.language == lang).unwrap();
            assert_eq!(row.applications, apps, "{lang} apps");
            assert_eq!(row.supporting_cancel, sup, "{lang} supporting");
            assert_eq!(row.with_initiator, init, "{lang} initiators");
        }
    }

    #[test]
    fn initiator_implies_support() {
        for a in DATASET {
            assert!(
                !a.has_initiator || a.supports_cancel,
                "{} has an initiator without cancellation support",
                a.name
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = DATASET.iter().map(|a| a.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn initiator_share_is_95_percent_of_supporters() {
        let sup = DATASET.iter().filter(|a| a.supports_cancel).count();
        let init = DATASET.iter().filter(|a| a.has_initiator).count();
        let share = init as f64 / sup as f64;
        assert!((share - 0.95).abs() < 0.01, "share {share}");
    }
}
