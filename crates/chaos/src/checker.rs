//! Runtime-wide invariants, checked after every tick.
//!
//! The checker compares the runtime's [`DebugSnapshot`] against the
//! injector's ground [`Truth`]. Each invariant is stated *relative to the
//! injected damage*: with a quiet plan every bound collapses to exact
//! equality, and with faults armed the runtime is allowed to be wrong by
//! at most the injected loss budget — anything beyond that is a real
//! accounting bug (lost ingest, double-application, stale windows).
//!
//! The invariants (numbering used in failure output and DESIGN.md §10):
//!
//! - **I1 delivery conservation** — for every live task, cumulative
//!   `acquired`/`freed`/`slow_amount` equal exactly the units the
//!   injector delivered. The transport may lie; the runtime may not.
//! - **I2 no negative holds** — `held <= acquired` (underflow would wrap).
//! - **I3 hold conservation** — `held + freed >= acquired`: units never
//!   vanish without a free.
//! - **I4 loss-budget bound** — observed `held` stays within
//!   `[app_held − dup − pending_gets,`
//!   `app_held + dropped + pending_frees + disorder]`: injected damage
//!   explains the full deviation from the application's own accounting.
//! - **I5 cancel liveness** — no cancellation ever targets a key whose
//!   task already called `free_cancel`.
//! - **I6 detector sanity** — one evaluation per tick, `candidates <=
//!   evaluations`, both monotonically non-decreasing.
//! - **I7 blame bounded by time** — per-(task, resource) cumulative
//!   wait/hold time never exceeds elapsed time, and each estimator
//!   window's per-resource blame is bounded by `live_tasks × window`.
//! - **I8 explained cancellations** — every cancellation the runtime
//!   issued (as witnessed at the initiator boundary) is explained by a
//!   recorded decision episode naming the same key. Checked end-of-run
//!   via [`check_episode_coverage`].
//! - **I9 blame conservation across edges** — every cross-node
//!   cancellation observed at an RPC edge traces to a root key witnessed
//!   on the originating node, no proxy task without a blame-table entry
//!   is ever canceled upstream, and no identity frame was rejected.
//!   Checked each tick in the federation soaks via [`check_edge_blame`].

use std::collections::HashSet;
use std::fmt;

use atropos::{AtroposRuntime, DebugSnapshot, ResourceId, TaskId};
use atropos_obs::DecisionEpisode;

use crate::injector::Truth;

/// One violated invariant, with enough detail to debug from the log line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant (I1..I9).
    pub invariant: &'static str,
    /// Human-readable specifics: task, resource, observed vs bound.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant {} violated: {}", self.invariant, self.detail)
    }
}

fn violation(invariant: &'static str, detail: String) -> Result<(), Violation> {
    Err(Violation { invariant, detail })
}

/// Stateful invariant checker; call [`InvariantChecker::after_tick`] once
/// after every injector tick.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    prev_evaluations: u64,
    prev_candidates: u64,
    prev_now_ns: u64,
    max_gap_ns: u64,
    max_live_tasks: u64,
    checks: u64,
}

impl InvariantChecker {
    /// A fresh checker (use one per run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of `after_tick` calls so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Verifies every invariant against the current runtime state and the
    /// injector's ground truth. Returns the first violation found.
    pub fn after_tick(&mut self, rt: &AtroposRuntime, truth: &Truth) -> Result<(), Violation> {
        let snap = rt.debug_snapshot();
        self.checks += 1;
        let gap = snap.now_ns.saturating_sub(self.prev_now_ns);
        self.max_gap_ns = self.max_gap_ns.max(gap);
        self.prev_now_ns = snap.now_ns;
        self.max_live_tasks = self.max_live_tasks.max(snap.tasks.len() as u64);

        self.check_accounting(&snap, truth)?;
        self.check_cancel_liveness(truth)?;
        self.check_detector(&snap)?;
        self.check_blame(rt, &snap)?;
        Ok(())
    }

    /// End-of-run variant for wall-clock substrates (the async fault
    /// leg): the estimator-window half of I7 is only meaningful when the
    /// checker observes every tick on a virtual clock, but all the
    /// *cumulative* invariants — I1–I6 plus the wait/hold-vs-elapsed half
    /// of I7 — hold against the final quiesced state, and that is what
    /// this validates.
    pub fn final_check(&mut self, rt: &AtroposRuntime, truth: &Truth) -> Result<(), Violation> {
        let snap = rt.debug_snapshot();
        self.checks += 1;
        self.max_live_tasks = self.max_live_tasks.max(snap.tasks.len() as u64);
        self.check_accounting(&snap, truth)?;
        self.check_cancel_liveness(truth)?;
        self.check_detector(&snap)?;
        self.check_time_bounds(&snap)?;
        Ok(())
    }

    fn check_accounting(&self, snap: &DebugSnapshot, truth: &Truth) -> Result<(), Violation> {
        for task in &snap.tasks {
            for (idx, u) in task.usage.iter().enumerate() {
                let rid = ResourceId(idx as u32);
                let t = truth
                    .per
                    .get(&(TaskId(task.id.0), rid))
                    .copied()
                    .unwrap_or_default();
                // I1: the runtime heard exactly what the wire carried.
                if u.acquired != t.delivered_gets
                    || u.freed != t.delivered_frees
                    || u.slow_amount != t.delivered_slows
                {
                    return violation(
                        "I1",
                        format!(
                            "task {:?} resource {idx}: runtime saw get/free/slow = \
                             {}/{}/{} but injector delivered {}/{}/{}",
                            task.key,
                            u.acquired,
                            u.freed,
                            u.slow_amount,
                            t.delivered_gets,
                            t.delivered_frees,
                            t.delivered_slows
                        ),
                    );
                }
                // I2: held never exceeds what was acquired.
                if u.held > u.acquired {
                    return violation(
                        "I2",
                        format!(
                            "task {:?} resource {idx}: held {} > acquired {}",
                            task.key, u.held, u.acquired
                        ),
                    );
                }
                // I3: no unit vanishes without a free.
                if u.held + u.freed < u.acquired {
                    return violation(
                        "I3",
                        format!(
                            "task {:?} resource {idx}: held {} + freed {} < acquired {}",
                            task.key, u.held, u.freed, u.acquired
                        ),
                    );
                }
                // I4: deviation from app truth is explained by injected
                // damage. All in i128: app truth can be transiently
                // "negative" from the runtime's viewpoint.
                let app_held = t.app_gets as i128 - t.app_frees as i128;
                let held = u.held as i128;
                let upper = app_held
                    + t.dropped_free_units as i128
                    + t.pending_free_units as i128
                    + t.disorder_units as i128;
                let lower = app_held - t.dup_free_units as i128 - t.pending_get_units as i128;
                if held > upper || held < lower {
                    return violation(
                        "I4",
                        format!(
                            "task {:?} resource {idx}: held {held} outside loss budget \
                             [{lower}, {upper}] (app_held {app_held}, dropped {}, dup {}, \
                             pending get/free {}/{}, disorder {})",
                            task.key,
                            t.dropped_free_units,
                            t.dup_free_units,
                            t.pending_get_units,
                            t.pending_free_units,
                            t.disorder_units
                        ),
                    );
                }
            }
        }
        Ok(())
    }

    fn check_cancel_liveness(&self, truth: &Truth) -> Result<(), Violation> {
        for obs in &truth.cancel_log {
            if obs.was_finished {
                return violation(
                    "I5",
                    format!(
                        "cancel issued at tick {} targets key {} whose task already \
                         called free_cancel",
                        obs.tick, obs.key
                    ),
                );
            }
        }
        Ok(())
    }

    fn check_detector(&mut self, snap: &DebugSnapshot) -> Result<(), Violation> {
        let d = &snap.detector;
        if d.evaluations != snap.stats.ticks {
            return violation(
                "I6",
                format!(
                    "detector ran {} evaluations over {} ticks (must be 1:1)",
                    d.evaluations, snap.stats.ticks
                ),
            );
        }
        if d.candidates > d.evaluations {
            return violation(
                "I6",
                format!(
                    "candidates {} > evaluations {}",
                    d.candidates, d.evaluations
                ),
            );
        }
        if d.evaluations < self.prev_evaluations || d.candidates < self.prev_candidates {
            return violation(
                "I6",
                format!(
                    "detector counters regressed: evaluations {} -> {}, candidates {} -> {}",
                    self.prev_evaluations, d.evaluations, self.prev_candidates, d.candidates
                ),
            );
        }
        self.prev_evaluations = d.evaluations;
        self.prev_candidates = d.candidates;
        Ok(())
    }

    /// The wait/hold-vs-elapsed half of I7: cumulative per-(task,
    /// resource) wait/hold time cannot outrun the clock.
    fn check_time_bounds(&self, snap: &DebugSnapshot) -> Result<(), Violation> {
        for task in &snap.tasks {
            for (idx, u) in task.usage.iter().enumerate() {
                if u.total_wait_ns > snap.now_ns || u.total_hold_ns > snap.now_ns {
                    return violation(
                        "I7",
                        format!(
                            "task {:?} resource {idx}: wait {} / hold {} ns exceed \
                             elapsed time {} ns",
                            task.key, u.total_wait_ns, u.total_hold_ns, snap.now_ns
                        ),
                    );
                }
            }
        }
        Ok(())
    }

    fn check_blame(&self, rt: &AtroposRuntime, snap: &DebugSnapshot) -> Result<(), Violation> {
        self.check_time_bounds(snap)?;
        // Estimator window blame: each resource's attributed waiting time
        // is at most (every live task waiting the entire window).
        if let Some(est) = rt.last_estimate() {
            let bound = self.max_live_tasks.saturating_mul(self.max_gap_ns);
            for r in &est.resources {
                if r.wait_ns > bound {
                    return violation(
                        "I7",
                        format!(
                            "estimator blames {} ns of waiting on resource {:?} but at \
                             most {} tasks × {} ns window = {} ns were observable",
                            r.wait_ns, r.id, self.max_live_tasks, self.max_gap_ns, bound
                        ),
                    );
                }
                if !(0.0..=1.000_001).contains(&r.weight) {
                    return violation(
                        "I7",
                        format!("resource {:?} weight {} outside [0, 1]", r.id, r.weight),
                    );
                }
            }
        }
        Ok(())
    }
}

/// I8: every cancellation the runtime issued has a decision episode that
/// explains it. The injector's `cancel_log` is the ground truth of what
/// was issued (it sits between the runtime and the fail/delay faults, so
/// swallowed cancellations still appear); the episodes come from the
/// flight recorder. An issued cancel with no episode means the recorder
/// missed a decision — the observability layer lost the audit trail.
pub fn check_episode_coverage(
    truth: &Truth,
    episodes: &[DecisionEpisode],
) -> Result<(), Violation> {
    let explained: Vec<u64> = episodes.iter().filter_map(|e| e.canceled_key).collect();
    for obs in &truth.cancel_log {
        if !explained.contains(&obs.key) {
            return Err(Violation {
                invariant: "I8",
                detail: format!(
                    "cancel of key {} issued at tick {} has no recorded decision episode \
                     ({} episodes, {} with a canceled key)",
                    obs.key,
                    obs.tick,
                    episodes.len(),
                    explained.len()
                ),
            });
        }
    }
    // And the converse bound: the recorder never invents cancellations.
    let issued = episodes.iter().filter(|e| e.canceled_key.is_some()).count();
    if issued > truth.cancel_log.len() {
        return Err(Violation {
            invariant: "I8",
            detail: format!(
                "{issued} episodes claim an issued cancel but the initiator saw only {}",
                truth.cancel_log.len()
            ),
        });
    }
    Ok(())
}

/// One cross-node cancellation as observed at an RPC edge: a callee node
/// canceled a task and the edge routed (or declined to route) the cancel
/// upstream toward the identity's claimed origin. Recorded by the
/// federation harness at the edge boundary, *before* any injected edge
/// faults, so partitioned or delayed deliveries still appear here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeCancelObservation {
    /// Root key the upstream leg carried.
    pub root_key: u64,
    /// Node the piggybacked identity claims as origin.
    pub origin_node: u16,
    /// Whether the edge held a blame-table entry for the canceled proxy
    /// key. `false` means a cancel crossed the edge with no blame path.
    pub had_blame: bool,
    /// Harness tick when observed.
    pub tick: u64,
}

/// I9: blame conservation across edges. Every cross-node cancellation
/// must (a) carry a blame path — the edge's blame table knew the proxy
/// key — and (b) name a root key actually witnessed (registered) on the
/// originating node; and no identity frame may have been rejected by the
/// codec. Together these say the federation never sheds anonymous load:
/// a cancel that crosses a node boundary is always the targeted
/// cancellation of a specific, witnessed end-to-end root.
pub fn check_edge_blame(
    witnessed_roots: &HashSet<u64>,
    observations: &[EdgeCancelObservation],
    frames_rejected: u64,
) -> Result<(), Violation> {
    if frames_rejected > 0 {
        return Err(Violation {
            invariant: "I9",
            detail: format!("{frames_rejected} identity frames rejected by the edge codec"),
        });
    }
    for obs in observations {
        if !obs.had_blame {
            return Err(Violation {
                invariant: "I9",
                detail: format!(
                    "cross-node cancel of root {} (origin n{}) at tick {} crossed the \
                     edge without a blame-table entry",
                    obs.root_key, obs.origin_node, obs.tick
                ),
            });
        }
        if !witnessed_roots.contains(&obs.root_key) {
            return Err(Violation {
                invariant: "I9",
                detail: format!(
                    "cross-node cancel names root {} (origin n{}) at tick {} but no such \
                     root was witnessed on the originating node ({} roots witnessed)",
                    obs.root_key,
                    obs.origin_node,
                    obs.tick,
                    witnessed_roots.len()
                ),
            });
        }
    }
    Ok(())
}

/// Paired-run detector monotonicity: under the same seed and script, a
/// strictly heavier load must flag at least as many candidate overloads.
/// Both snapshots must cover the same number of evaluations.
pub fn check_detector_monotonicity(
    base: &DebugSnapshot,
    loaded: &DebugSnapshot,
) -> Result<(), Violation> {
    if base.detector.evaluations != loaded.detector.evaluations {
        return Err(Violation {
            invariant: "I6",
            detail: format!(
                "monotonicity runs disagree on evaluations: {} vs {}",
                base.detector.evaluations, loaded.detector.evaluations
            ),
        });
    }
    if loaded.detector.candidates < base.detector.candidates {
        return Err(Violation {
            invariant: "I6",
            detail: format!(
                "added load lowered candidate count: {} -> {}",
                base.detector.candidates, loaded.detector.candidates
            ),
        });
    }
    Ok(())
}
