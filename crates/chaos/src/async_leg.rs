//! The async substrate under *armed* fault plans (ROADMAP item 3
//! follow-on).
//!
//! PR 7 proved the chaos stack composes over the async port with a quiet
//! plan; this module actually hurts it: a full wall-clock async serving
//! session runs behind a [`FaultInjector`] whose plan drops, duplicates,
//! delays and reorders the protocol, fails and delays cancellations, and
//! skews ticks — the same seeded plans the scripted scenarios soak under.
//!
//! What can honestly be validated differs from the scripted leg. There
//! the checker owns the virtual clock and asserts I1–I8 after every tick;
//! here real threads race the tick, so a mid-run snapshot is inherently
//! torn (the app updates the injector's ground truth and the runtime in
//! two steps). The contract is therefore checked against the *quiesced*
//! end state, where it is exact again:
//!
//! - I1–I4 accounting against ground truth, I5 cancel liveness over the
//!   full cancel log, I6 detector sanity, and the wait/hold half of I7 —
//!   via [`InvariantChecker::final_check`];
//! - I8 episode coverage over the drained flight-recorder episodes;
//! - and a drain guarantee with real teeth under dropped frees and
//!   swallowed cancels: every task scope closes ([`AsyncLegOutcome::leaked_tasks`]
//!   must be 0), i.e. no fault pattern can wedge a future's task record
//!   in the runtime.

use std::sync::Arc;
use std::time::Duration;

use atropos_live::{live_atropos_config, ControlMode, LiveReport};
use atropos_substrate::ScenarioFamily;
use parking_lot::Mutex;

use crate::checker::{check_episode_coverage, InvariantChecker, Violation};
use crate::differential::live_config_for;
use crate::injector::{FaultInjector, InjectionLog};
use crate::plan::FaultPlan;

/// Everything one async fault run produces.
#[derive(Debug)]
pub struct AsyncLegOutcome {
    /// The harness report (latencies, cancels, episodes, metrics).
    pub report: LiveReport,
    /// What the injector actually did to the protocol.
    pub injection: InjectionLog,
    /// Task records still live after the executor shut down; any value
    /// but 0 means a fault pattern wedged a task scope open.
    pub leaked_tasks: usize,
    /// First invariant violated against the quiesced end state, if any.
    pub violation: Option<Violation>,
}

/// Runs one async serving session for `family` behind `plan`, then
/// validates the quiesced invariants. The geometry is the family's pinned
/// descriptor compressed in time (same shape, shorter run) so a 128-plan
/// soak stays affordable.
pub fn run_async_scenario(family: ScenarioFamily, plan: &FaultPlan) -> AsyncLegOutcome {
    let mut cfg = live_config_for(&atropos_workload::family_descriptor(family));
    cfg.run_for = Duration::from_millis(450);
    cfg.culprit_after = Duration::from_millis(120);
    cfg.culprit_hold = Duration::from_millis(250);
    cfg.tick_period = Duration::from_millis(25);

    let slot: Arc<Mutex<Option<Arc<FaultInjector>>>> = Arc::new(Mutex::new(None));
    let fill = slot.clone();
    let plan = plan.clone();
    let (report, rt) = atropos_async::run_instrumented(
        cfg,
        ControlMode::Atropos(live_atropos_config()),
        move |port| {
            let inj = Arc::new(FaultInjector::over(port, &plan));
            *fill.lock() = Some(inj.clone());
            inj
        },
    );
    let inj = slot.lock().take().expect("wrap hook always runs");
    let truth = inj.truth();
    let injection = inj.injection_log();
    let leaked_tasks = rt.debug_snapshot().tasks.len();

    let mut checker = InvariantChecker::new();
    let mut violation = checker.final_check(&rt, &truth).err();
    if violation.is_none() {
        violation = check_episode_coverage(&truth, &report.episodes).err();
    }
    AsyncLegOutcome {
        report,
        injection,
        leaked_tasks,
        violation,
    }
}
