//! Long-soak chaos driver.
//!
//! Runs seeded fault plans through the scripted scenarios with every
//! invariant checked after every tick, and exits nonzero with a seed +
//! minimized plan on the first violation.
//!
//! ```text
//! chaos [--scenario lock_hog|buffer_scan|ticket_queue|all|async_live] [--seed N]
//!       [--plans N] [--load N] [--quiet-only] [--episodes]
//! ```
//!
//! `--scenario async_live` soaks the wall-clock async substrate behind
//! armed fault plans instead of the scripted virtual-clock scenarios
//! (plan `i` exercises scenario family `i % 3`), validating the quiesced
//! invariants after every run.
//!
//! `--episodes` dumps each run's folded decision episodes (why every
//! cancellation was issued) — the flight recorder's audit trail.
//!
//! The base seed defaults to `$CHAOS_SEED` (so CI can randomize per run),
//! then 42. Plan `i` uses seed `base + i`. The chosen base seed is always
//! printed, so any CI failure is replayable with `--seed`.

use std::process::ExitCode;

use atropos_chaos::{run_async_scenario, run_checked, FaultPlan, ScenarioKind};
use atropos_substrate::ScenarioFamily;

struct Args {
    scenarios: Vec<ScenarioKind>,
    async_live: bool,
    seed: u64,
    plans: u64,
    load: u64,
    quiet_only: bool,
    episodes: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenarios: ScenarioKind::ALL.to_vec(),
        async_live: false,
        seed: std::env::var("CHAOS_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(42),
        plans: 100,
        load: 1,
        quiet_only: false,
        episodes: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--scenario" => {
                let v = value("--scenario")?;
                args.scenarios = match v.as_str() {
                    "lock_hog" | "lock-hog" => vec![ScenarioKind::LockHog],
                    "buffer_scan" | "buffer-scan" => vec![ScenarioKind::BufferScan],
                    "ticket_queue" | "ticket-queue" => vec![ScenarioKind::TicketQueue],
                    "all" => ScenarioKind::ALL.to_vec(),
                    "async_live" | "async-live" => {
                        args.async_live = true;
                        vec![]
                    }
                    other => return Err(format!("unknown scenario {other:?}")),
                };
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--plans" => {
                args.plans = value("--plans")?
                    .parse()
                    .map_err(|e| format!("--plans: {e}"))?
            }
            "--load" => {
                args.load = value("--load")?
                    .parse()
                    .map_err(|e| format!("--load: {e}"))?
            }
            "--quiet-only" => args.quiet_only = true,
            "--episodes" => args.episodes = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "chaos soak: base seed {} | {} plan(s) per scenario | load x{} | scenarios: {}",
        args.seed,
        args.plans,
        args.load,
        if args.async_live {
            "async_live".to_string()
        } else {
            args.scenarios
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
                .join(",")
        }
    );
    if args.async_live {
        return soak_async(&args);
    }
    let mut runs = 0u64;
    for scenario in &args.scenarios {
        for i in 0..args.plans {
            let seed = args.seed.wrapping_add(i);
            let plan = if args.quiet_only {
                FaultPlan::quiet(seed)
            } else {
                FaultPlan::sample(seed)
            };
            match run_checked(*scenario, &plan, args.load) {
                Ok(out) => {
                    runs += 1;
                    if args.episodes && !out.episodes.is_empty() {
                        println!("  {} seed {} decision episodes:", scenario.name(), seed);
                        for line in atropos_obs::render_episodes(&out.episodes).lines() {
                            println!("    {line}");
                        }
                    }
                    if i == 0 || (i + 1) % 25 == 0 {
                        println!(
                            "  {} seed {} ok: {} faults armed, {} ticks, {} candidates, \
                             hog_canceled={}",
                            scenario.name(),
                            seed,
                            plan.faults.len(),
                            out.ticks,
                            out.candidates,
                            out.hog_canceled
                        );
                    }
                }
                Err(report) => {
                    eprintln!("chaos: FAILED after {runs} clean runs\n{report}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!("chaos soak: all {runs} runs clean");
    ExitCode::SUCCESS
}

/// The async fault leg: wall-clock async runs behind armed plans, the
/// quiesced invariants validated after each. Plan `i` (seed `base + i`)
/// exercises scenario family `i % 3`.
fn soak_async(args: &Args) -> ExitCode {
    let mut runs = 0u64;
    for i in 0..args.plans {
        let seed = args.seed.wrapping_add(i);
        let plan = if args.quiet_only {
            FaultPlan::quiet(seed)
        } else {
            FaultPlan::sample(seed)
        };
        let family = ScenarioFamily::ALL[(i % 3) as usize];
        let out = run_async_scenario(family, &plan);
        if let Some(v) = &out.violation {
            eprintln!(
                "chaos: async_live {} seed {seed} FAILED after {runs} clean runs: {v}\n\
                 replay: cargo run -p atropos-chaos --bin chaos -- \
                 --scenario async_live --seed {seed} --plans 1",
                family.name()
            );
            return ExitCode::FAILURE;
        }
        if out.leaked_tasks > 0 {
            eprintln!(
                "chaos: async_live {} seed {seed}: {} task scope(s) leaked",
                family.name(),
                out.leaked_tasks
            );
            return ExitCode::FAILURE;
        }
        runs += 1;
        if args.episodes && !out.report.episodes.is_empty() {
            println!(
                "  async_live {} seed {seed} decision episodes:",
                family.name()
            );
            for line in atropos_obs::render_episodes(&out.report.episodes).lines() {
                println!("    {line}");
            }
        }
        if i == 0 || (i + 1) % 25 == 0 {
            println!(
                "  async_live {} seed {seed} ok: {} faults armed, {} ticks, {} served, \
                 {} cancel(s) issued",
                family.name(),
                plan.faults.len(),
                out.report.ticks,
                out.report.victim.count,
                out.report.canceled_keys.len()
            );
        }
    }
    println!("chaos soak: all {runs} async runs clean");
    ExitCode::SUCCESS
}
