#![warn(missing_docs)]

//! Deterministic fault injection and invariant checking for Atropos.
//!
//! The rest of the workspace tests Atropos on *well-behaved* transports:
//! every traced event arrives, in order, exactly once, and every
//! cancellation is delivered. This crate is the adversarial counterpart
//! — the reliability layer the paper's instrumentation quietly assumes,
//! made explicit and then broken on purpose:
//!
//! - [`plan`]: [`FaultPlan`] — a seeded, replayable, *shrinkable*
//!   description of which faults to arm (dropped/duplicated frees,
//!   delayed/reordered ingest batches, failed/late cancellations, skewed
//!   ticks),
//! - [`injector`]: [`FaultInjector`] — a faulty transport wrapping the
//!   Figure 6 protocol of [`atropos::AtroposRuntime`], keeping ground
//!   truth of what was emitted vs delivered,
//! - [`checker`]: [`InvariantChecker`] — runtime-wide invariants (I1–I7)
//!   verified after every tick, each stated relative to the injected loss
//!   budget so a quiet plan demands exact equality, plus the end-of-run
//!   I8 (every issued cancellation is explained by a recorded decision
//!   episode from the `atropos-obs` flight recorder),
//! - [`scenario`]: scripted lock-hog and buffer-scan convoys driven
//!   through the injector on a virtual clock,
//! - [`differential`]: the same culprits replayed through the
//!   `atropos-app` simulator and the `atropos-live` wall-clock harness,
//!   asserting both substrates reach the same decision.
//!
//! Any failing run reports its seed plus a minimized fault plan (greedy
//! delta-debugging — the vendored proptest shim does not shrink), which
//! the `chaos` soak binary can replay.

pub mod async_leg;
pub mod checker;
pub mod differential;
pub mod injector;
pub mod plan;
pub mod scenario;

use std::fmt;

pub use async_leg::{run_async_scenario, AsyncLegOutcome};
pub use checker::{
    check_detector_monotonicity, check_edge_blame, check_episode_coverage, EdgeCancelObservation,
    InvariantChecker, Violation,
};
pub use injector::{CancelObservation, FaultInjector, InjectionLog, Truth};
pub use plan::{Fault, FaultPlan};
pub use scenario::{
    run_scenario, run_scenario_with_ingest, ScenarioKind, ScenarioOutcome, HOG_KEY,
};

/// A reproducible scenario failure: the violated invariant plus the
/// minimized plan that still reproduces it.
#[derive(Debug)]
pub struct FailureReport {
    /// Scenario that failed.
    pub scenario: ScenarioKind,
    /// The plan as originally sampled.
    pub original: FaultPlan,
    /// The smallest plan (greedy delta-debugging) still failing.
    pub minimized: FaultPlan,
    /// The violation the minimized plan reproduces.
    pub violation: Violation,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario {} failed under seed {}: {}\n  minimized plan: {}\n  original plan:  {}\n  replay: cargo run -p atropos-chaos --bin chaos -- --scenario {} --seed {}",
            self.scenario.name(),
            self.original.seed,
            self.violation,
            self.minimized,
            self.original,
            self.scenario.name(),
            self.original.seed,
        )
    }
}

/// Runs `plan` through `scenario`; on an invariant violation, minimizes
/// the plan and returns a [`FailureReport`] carrying seed, minimized
/// plan, and the violation.
pub fn run_checked(
    scenario: ScenarioKind,
    plan: &FaultPlan,
    load_scale: u64,
) -> Result<ScenarioOutcome, Box<FailureReport>> {
    let out = run_scenario(scenario, plan, load_scale);
    match out.violation {
        None => Ok(out),
        Some(_) => {
            let minimized = plan
                .clone()
                .minimize(|cand| run_scenario(scenario, cand, load_scale).violation.is_some());
            let violation = run_scenario(scenario, &minimized, load_scale)
                .violation
                .expect("minimized plan still fails by construction");
            Err(Box::new(FailureReport {
                scenario,
                original: plan.clone(),
                minimized,
                violation,
            }))
        }
    }
}
