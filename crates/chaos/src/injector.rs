//! The fault injector: a faulty transport between an app and the runtime.
//!
//! [`FaultInjector`] is port middleware: it implements the substrate's
//! [`RuntimePort`] over an inner port and sits where the wire would be —
//! every protocol event the application emits passes through it, and
//! every cancellation the runtime issues passes back through it (the
//! initiator installed through the injector is wrapped in the cancel
//! faults). Because both the sim glue and the live harness emit through
//! `Arc<dyn RuntimePort>`, the same injector composes with either
//! substrate unchanged. Faults from the armed [`FaultPlan`] corrupt the
//! transport — frees are dropped or duplicated, events are held across
//! tick boundaries and reordered, cancellations are swallowed or
//! delivered late, ticks fire late.
//!
//! Every decision comes from a per-fault [`FaultSite`] forked off the
//! plan seed, so (a) a plan replays bit-for-bit, and (b) removing one
//! fault during shrinking never re-randomizes the others.
//!
//! The injector simultaneously keeps the *ground truth* the
//! [`crate::checker::InvariantChecker`] compares the runtime against:
//! what the app emitted, what was actually delivered, and per-(task,
//! resource) budgets for each kind of injected damage.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use atropos::{AtroposRuntime, ResourceId, ResourceType, TaskId, TaskKey, TickOutcome};
use atropos_sim::{Clock, FaultSite, SimRng, TickJitter};
use atropos_substrate::{CancelInitiator, RuntimePort, TraceKind};
use parking_lot::Mutex;

use crate::plan::{Fault, FaultPlan};

// Sub-stream constants for forking the plan seed: one stream per fault
// kind, so each site draws from an independent deterministic sequence.
const STREAM_DROP: u64 = 1;
const STREAM_DUP: u64 = 2;
const STREAM_DELAY: u64 = 3;
const STREAM_REORDER: u64 = 4;
const STREAM_FAIL_CANCEL: u64 = 5;
const STREAM_SHUFFLE: u64 = 6;
const STREAM_JITTER: u64 = 7;

/// Per-(task, resource) ground truth: emitted vs delivered units, plus
/// the damage budgets the invariant bounds are stated in.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceTruth {
    /// Units the application emitted as `get_resource`.
    pub app_gets: u64,
    /// Units the application emitted as `free_resource`.
    pub app_frees: u64,
    /// Units the application emitted as `slow_by_resource`.
    pub app_slows: u64,
    /// Get units actually forwarded to the runtime.
    pub delivered_gets: u64,
    /// Free units actually forwarded (duplicates counted twice).
    pub delivered_frees: u64,
    /// Slow units actually forwarded.
    pub delivered_slows: u64,
    /// Free units dropped outright.
    pub dropped_free_units: u64,
    /// Extra free units delivered by duplication.
    pub dup_free_units: u64,
    /// Get units currently diverted and not yet delivered.
    pub pending_get_units: u64,
    /// Free units currently diverted and not yet delivered.
    pub pending_free_units: u64,
    /// Slow units currently diverted and not yet delivered.
    pub pending_slow_units: u64,
    /// Units (gets and frees) that were delivered out of emission order;
    /// a permanent budget, since out-of-order frees can be lost to the
    /// runtime's saturating subtraction forever.
    pub disorder_units: u64,
}

/// One cancellation observed at the initiator boundary.
#[derive(Debug, Clone, Copy)]
pub struct CancelObservation {
    /// The task key the runtime asked to cancel.
    pub key: u64,
    /// Injector tick index at which the runtime issued it.
    pub tick: u64,
    /// Whether the application had already called `free_cancel` for this
    /// key when the cancellation was issued. True = invariant violation.
    pub was_finished: bool,
}

/// Aggregate counts of what the injector actually did.
#[derive(Debug, Clone, Copy, Default)]
pub struct InjectionLog {
    /// `free_resource` events dropped.
    pub frees_dropped: u64,
    /// `free_resource` events duplicated.
    pub frees_duplicated: u64,
    /// Trace events diverted into held batches.
    pub events_diverted: u64,
    /// Cancellations swallowed.
    pub cancels_failed: u64,
    /// Cancellations delivered late.
    pub cancels_delayed: u64,
    /// Total tick lateness injected (ns).
    pub skew_ns: u64,
}

impl InjectionLog {
    /// True if any fault actually fired.
    pub fn any(&self) -> bool {
        self.frees_dropped
            + self.frees_duplicated
            + self.events_diverted
            + self.cancels_failed
            + self.cancels_delayed
            + self.skew_ns
            > 0
    }
}

/// Ground-truth snapshot for the invariant checker.
#[derive(Debug, Clone, Default)]
pub struct Truth {
    /// Per-(task, resource) delivery accounting.
    pub per: HashMap<(TaskId, ResourceId), ResourceTruth>,
    /// Keys the application has `free_cancel`ed (and not re-registered).
    pub finished_keys: HashSet<u64>,
    /// Every cancellation seen at the initiator boundary, in order.
    pub cancel_log: Vec<CancelObservation>,
    /// What the injector did.
    pub log: InjectionLog,
}

#[derive(Debug, Clone, Copy)]
struct HeldEvent {
    due_tick: u64,
    task: TaskId,
    rid: ResourceId,
    amount: u64,
    kind: TraceKind,
}

struct State {
    drop_free: FaultSite,
    dup_free: FaultSite,
    delay: FaultSite,
    delay_ticks: u64,
    reorder: FaultSite,
    shuffle_on_release: bool,
    shuffle_rng: SimRng,
    fail_cancel: FaultSite,
    delay_cancel_ticks: u64,
    jitter: TickJitter,
    tick_index: u64,
    held: Vec<HeldEvent>,
    delayed_cancels: Vec<(u64, u64)>, // (due_tick, key)
    app_cb: Option<Arc<dyn CancelInitiator>>,
    task_keys: HashMap<TaskId, u64>,
    truth: Truth,
}

impl State {
    fn entry(&mut self, task: TaskId, rid: ResourceId) -> &mut ResourceTruth {
        self.truth.per.entry((task, rid)).or_default()
    }
}

/// Routing decision for one trace event, made under the state lock and
/// executed against the runtime outside it.
enum Route {
    Forward,
    Twice,
    Swallowed,
    Held,
}

/// The faulty transport. See module docs.
pub struct FaultInjector {
    inner: Arc<dyn RuntimePort>,
    rt: Option<Arc<AtroposRuntime>>,
    st: Arc<Mutex<State>>,
}

impl FaultInjector {
    /// Arms `plan` in front of `rt`. Call [`FaultInjector::install_initiator`]
    /// before the first tick if the application wants cancellations.
    pub fn new(rt: Arc<AtroposRuntime>, plan: &FaultPlan) -> Self {
        let inner: Arc<dyn RuntimePort> = rt.clone();
        Self {
            inner,
            rt: Some(rt),
            st: Arc::new(Mutex::new(State::armed(plan))),
        }
    }

    /// Arms `plan` over an arbitrary inner port — the middleware
    /// constructor. Use this to stack the injector over another layer (or
    /// over a runtime whose concrete handle the caller keeps); fault
    /// behavior is identical to [`FaultInjector::new`].
    pub fn over(inner: Arc<dyn RuntimePort>, plan: &FaultPlan) -> Self {
        Self {
            inner,
            rt: None,
            st: Arc::new(Mutex::new(State::armed(plan))),
        }
    }
}

impl State {
    /// Builds the armed fault state for `plan`, forking one deterministic
    /// stream per fault site off the plan seed.
    fn armed(plan: &FaultPlan) -> State {
        let mut root = SimRng::new(plan.seed ^ 0xFA17_FA17_FA17_FA17);
        let mut drop_free = FaultSite::disabled();
        let mut dup_free = FaultSite::disabled();
        let mut delay = FaultSite::disabled();
        let mut delay_ticks = 0;
        let mut reorder = FaultSite::disabled();
        let mut shuffle_on_release = false;
        let mut fail_cancel = FaultSite::disabled();
        let mut delay_cancel_ticks = 0;
        let mut jitter = TickJitter::disabled();
        for fault in &plan.faults {
            match *fault {
                Fault::DropFree {
                    probability,
                    budget,
                } => drop_free = FaultSite::new(&mut root, STREAM_DROP, probability, budget),
                Fault::DupFree {
                    probability,
                    budget,
                } => dup_free = FaultSite::new(&mut root, STREAM_DUP, probability, budget),
                Fault::DelayBatch {
                    probability,
                    budget,
                    ticks,
                } => {
                    delay = FaultSite::new(&mut root, STREAM_DELAY, probability, budget);
                    delay_ticks = ticks;
                }
                Fault::ReorderBatch {
                    probability,
                    budget,
                } => {
                    reorder = FaultSite::new(&mut root, STREAM_REORDER, probability, budget);
                    shuffle_on_release = true;
                }
                Fault::FailCancel { budget } => {
                    fail_cancel = FaultSite::new(&mut root, STREAM_FAIL_CANCEL, 1.0, budget)
                }
                Fault::DelayCancel { ticks } => delay_cancel_ticks = ticks,
                Fault::SkewTick { max_skew_ns } => {
                    jitter = TickJitter::new(&mut root, STREAM_JITTER, max_skew_ns)
                }
            }
        }
        let shuffle_rng = root.fork(STREAM_SHUFFLE);
        State {
            drop_free,
            dup_free,
            delay,
            delay_ticks,
            reorder,
            shuffle_on_release,
            shuffle_rng,
            fail_cancel,
            delay_cancel_ticks,
            jitter,
            tick_index: 0,
            held: Vec::new(),
            delayed_cancels: Vec::new(),
            app_cb: None,
            task_keys: HashMap::new(),
            truth: Truth::default(),
        }
    }
}

/// The initiator the injector installs on its *inner* port: the fail and
/// delay faults live here, between the runtime issuing a cancellation and
/// the application's real initiator receiving it. The re-execution and
/// drop legs are never faulted and forward straight through.
struct FaultyInitiator {
    st: Arc<Mutex<State>>,
}

impl CancelInitiator for FaultyInitiator {
    fn cancel(&self, key: TaskKey) {
        let key = key.0;
        let (deliver, cb) = {
            let mut s = self.st.lock();
            let was_finished = s.truth.finished_keys.contains(&key);
            let tick = s.tick_index;
            s.truth.cancel_log.push(CancelObservation {
                key,
                tick,
                was_finished,
            });
            if s.fail_cancel.fires() {
                s.truth.log.cancels_failed += 1;
                (false, None)
            } else if s.delay_cancel_ticks > 0 {
                let due = s.tick_index + s.delay_cancel_ticks;
                s.delayed_cancels.push((due, key));
                s.truth.log.cancels_delayed += 1;
                (false, None)
            } else {
                (true, s.app_cb.clone())
            }
        };
        if deliver {
            if let Some(cb) = cb {
                cb.cancel(TaskKey(key));
            }
        }
    }

    fn reexec(&self, key: TaskKey) {
        let cb = self.st.lock().app_cb.clone();
        if let Some(cb) = cb {
            cb.reexec(key);
        }
    }

    fn drop_parked(&self, key: TaskKey) {
        let cb = self.st.lock().app_cb.clone();
        if let Some(cb) = cb {
            cb.drop_parked(key);
        }
    }
}

/// Adapter: a plain `Fn(u64)` cancel callback as a [`CancelInitiator`].
struct KeyFn<F>(F);

impl<F: Fn(u64) + Send + Sync> CancelInitiator for KeyFn<F> {
    fn cancel(&self, key: TaskKey) {
        (self.0)(key.0)
    }
}

impl FaultInjector {
    /// The wrapped runtime (for `debug_snapshot` and configuration).
    ///
    /// # Panics
    ///
    /// If the injector was built with [`FaultInjector::over`] — a generic
    /// middleware layer has no concrete runtime handle; keep your own.
    pub fn runtime(&self) -> &Arc<AtroposRuntime> {
        self.rt
            .as_ref()
            .expect("FaultInjector::over has no concrete runtime handle")
    }

    /// Installs `app` as the application's cancel initiator, wrapped in
    /// the fail/delay faults. The callback must not call back into the
    /// injector synchronously (record the key, act on the next event).
    pub fn install_initiator(&self, app: impl Fn(u64) + Send + Sync + 'static) {
        self.install(Arc::new(KeyFn(app)));
    }

    /// The initiator plumbing shared by the inherent and trait paths:
    /// remembers `app` for delivery and registers the fault layer on the
    /// inner port.
    fn install(&self, app: Arc<dyn CancelInitiator>) {
        self.st.lock().app_cb = Some(app);
        self.inner.install_initiator(Arc::new(FaultyInitiator {
            st: self.st.clone(),
        }));
    }

    /// Mirrors [`AtroposRuntime::create_cancel`]. Keys are tracked for
    /// the cancel-liveness invariant; prefer explicit keys in scripts.
    pub fn create_cancel(&self, key: Option<u64>) -> TaskId {
        let task = self.inner.create_cancel(key);
        if let Some(k) = key {
            let mut s = self.st.lock();
            s.task_keys.insert(task, k);
            s.truth.finished_keys.remove(&k);
        }
        task
    }

    /// Mirrors [`AtroposRuntime::free_cancel`], recording the key as
    /// finished *before* forwarding — any cancellation issued after this
    /// point that targets the key is an invariant violation.
    pub fn free_cancel(&self, task: TaskId) {
        // Forward first, record second. On wall-clock substrates the
        // runtime's tick thread can issue a cancel for this still-live
        // task while we block on the runtime lock here; marking the key
        // finished before the runtime has processed the free would make
        // that perfectly legal cancel look like an I5 violation. Under
        // the scripted (single-threaded, virtual-clock) scenarios the two
        // orders are indistinguishable, so I5 stays falsifiable.
        self.inner.free_cancel(task);
        let mut s = self.st.lock();
        if let Some(k) = s.task_keys.get(&task).copied() {
            s.truth.finished_keys.insert(k);
        }
    }

    /// Mirrors [`AtroposRuntime::unit_started`] (never faulted).
    pub fn unit_started(&self, task: TaskId) {
        self.inner.unit_started(task);
    }

    /// Mirrors [`AtroposRuntime::unit_finished`] (never faulted).
    pub fn unit_finished(&self, task: TaskId) {
        self.inner.unit_finished(task);
    }

    /// Mirrors [`AtroposRuntime::report_progress`] (never faulted).
    pub fn report_progress(&self, task: TaskId, done: u64, total: u64) {
        self.inner.progress(task, done, total);
    }

    /// Mirrors [`AtroposRuntime::get_resource`], subject to delay and
    /// reorder faults.
    pub fn get_resource(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.trace(task, rid, amount, TraceKind::Get);
    }

    /// Mirrors [`AtroposRuntime::free_resource`], subject to drop,
    /// duplicate, delay and reorder faults.
    pub fn free_resource(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.trace(task, rid, amount, TraceKind::Free);
    }

    /// Mirrors [`AtroposRuntime::slow_by_resource`], subject to delay and
    /// reorder faults.
    pub fn slow_by_resource(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.trace(task, rid, amount, TraceKind::Slow);
    }

    fn trace(&self, task: TaskId, rid: ResourceId, amount: u64, kind: TraceKind) {
        let route = {
            let mut s = self.st.lock();
            // Every site consumes its decision on every opportunity it
            // applies to, regardless of earlier sites' outcomes: streams
            // stay aligned when shrinking removes a fault.
            let (dropped, dup) = match kind {
                TraceKind::Free => (s.drop_free.fires(), s.dup_free.fires()),
                _ => (false, false),
            };
            let delayed = s.delay.fires();
            let reordered = s.reorder.fires();
            let e = s.entry(task, rid);
            match kind {
                TraceKind::Get => e.app_gets += amount,
                TraceKind::Free => e.app_frees += amount,
                TraceKind::Slow => e.app_slows += amount,
            }
            // Precedence: drop > dup > delay > reorder > pass-through.
            if dropped {
                s.entry(task, rid).dropped_free_units += amount;
                s.truth.log.frees_dropped += 1;
                Route::Swallowed
            } else if dup {
                let e = s.entry(task, rid);
                e.delivered_frees += 2 * amount;
                e.dup_free_units += amount;
                s.truth.log.frees_duplicated += 1;
                Route::Twice
            } else if delayed || reordered {
                // ReorderBatch diverts into the very next boundary;
                // DelayBatch holds for its configured tick count.
                let ticks = if delayed { s.delay_ticks } else { 0 };
                let due_tick = s.tick_index + ticks;
                let e = s.entry(task, rid);
                match kind {
                    TraceKind::Get => e.pending_get_units += amount,
                    TraceKind::Free => e.pending_free_units += amount,
                    TraceKind::Slow => e.pending_slow_units += amount,
                }
                s.truth.log.events_diverted += 1;
                s.held.push(HeldEvent {
                    due_tick,
                    task,
                    rid,
                    amount,
                    kind,
                });
                Route::Held
            } else {
                let e = s.entry(task, rid);
                match kind {
                    TraceKind::Get => e.delivered_gets += amount,
                    TraceKind::Free => e.delivered_frees += amount,
                    TraceKind::Slow => e.delivered_slows += amount,
                }
                Route::Forward
            }
        };
        match route {
            Route::Forward => self.deliver(task, rid, amount, kind),
            Route::Twice => {
                self.deliver(task, rid, amount, kind);
                self.deliver(task, rid, amount, kind);
            }
            Route::Swallowed | Route::Held => {}
        }
    }

    fn deliver(&self, task: TaskId, rid: ResourceId, amount: u64, kind: TraceKind) {
        match kind {
            TraceKind::Get => self.inner.get(task, rid, amount),
            TraceKind::Free => self.inner.free(task, rid, amount),
            TraceKind::Slow => self.inner.slow_by(task, rid, amount),
        }
    }

    /// The lateness to add to this tick's scheduled time. The driver owns
    /// the clock, so it asks for the skew, advances the clock past the
    /// boundary by that much, then calls [`FaultInjector::tick`].
    pub fn tick_skew_ns(&self) -> u64 {
        let mut s = self.st.lock();
        let skew = s.jitter.next_skew_ns();
        s.truth.log.skew_ns += skew;
        skew
    }

    /// A tick boundary: releases held batches and delayed cancellations
    /// that have come due, runs the runtime's tick, and advances the
    /// injector's tick index.
    pub fn tick(&self) -> TickOutcome {
        let (due, cancels, cb) = {
            let mut s = self.st.lock();
            let now_tick = s.tick_index;
            let mut due = Vec::new();
            let mut keep = Vec::new();
            for ev in s.held.drain(..) {
                if ev.due_tick <= now_tick {
                    due.push(ev);
                } else {
                    keep.push(ev);
                }
            }
            s.held = keep;
            if s.shuffle_on_release && due.len() > 1 {
                // Fisher–Yates off the dedicated shuffle stream.
                for i in (1..due.len()).rev() {
                    let j = s.shuffle_rng.below(i as u64 + 1) as usize;
                    due.swap(i, j);
                }
            }
            for ev in &due {
                let e = s.entry(ev.task, ev.rid);
                match ev.kind {
                    TraceKind::Get => {
                        e.pending_get_units -= ev.amount;
                        e.delivered_gets += ev.amount;
                    }
                    TraceKind::Free => {
                        e.pending_free_units -= ev.amount;
                        e.delivered_frees += ev.amount;
                    }
                    TraceKind::Slow => {
                        e.pending_slow_units -= ev.amount;
                        e.delivered_slows += ev.amount;
                    }
                }
                if !matches!(ev.kind, TraceKind::Slow) {
                    e.disorder_units += ev.amount;
                }
            }
            let mut due_cancels = Vec::new();
            let mut keep_cancels = Vec::new();
            for (due_tick, key) in s.delayed_cancels.drain(..) {
                if due_tick <= now_tick {
                    due_cancels.push(key);
                } else {
                    keep_cancels.push((due_tick, key));
                }
            }
            s.delayed_cancels = keep_cancels;
            (due, due_cancels, s.app_cb.clone())
        };
        for ev in due {
            self.deliver(ev.task, ev.rid, ev.amount, ev.kind);
        }
        if let Some(cb) = &cb {
            for key in cancels {
                cb.cancel(TaskKey(key));
            }
        }
        let out = self.inner.tick();
        self.st.lock().tick_index += 1;
        out
    }

    /// Ground-truth snapshot for invariant checking.
    pub fn truth(&self) -> Truth {
        self.st.lock().truth.clone()
    }

    /// What the injector actually did so far.
    pub fn injection_log(&self) -> InjectionLog {
        self.st.lock().truth.log
    }
}

/// The injector as composable middleware: every verb routes through the
/// same fault machinery as the inherent API, so a substrate that emits
/// through `Arc<dyn RuntimePort>` (the sim glue, the live harness) gets
/// the identical fault behavior without naming the injector.
impl RuntimePort for FaultInjector {
    fn register_resource(&self, name: &str, rtype: ResourceType) -> ResourceId {
        self.inner.register_resource(name, rtype)
    }

    fn create_cancel(&self, key: Option<u64>) -> TaskId {
        FaultInjector::create_cancel(self, key)
    }

    fn free_cancel(&self, task: TaskId) {
        FaultInjector::free_cancel(self, task)
    }

    fn set_cancellable(&self, task: TaskId, cancellable: bool) {
        self.inner.set_cancellable(task, cancellable)
    }

    fn mark_background(&self, task: TaskId) {
        self.inner.mark_background(task)
    }

    fn install_initiator(&self, initiator: Arc<dyn CancelInitiator>) {
        self.install(initiator)
    }

    fn get(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.trace(task, rid, amount, TraceKind::Get)
    }

    fn free(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.trace(task, rid, amount, TraceKind::Free)
    }

    fn slow_by(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.trace(task, rid, amount, TraceKind::Slow)
    }

    fn progress(&self, task: TaskId, done: u64, total: u64) {
        self.inner.progress(task, done, total)
    }

    fn unit_started(&self, task: TaskId) {
        self.inner.unit_started(task)
    }

    fn unit_finished(&self, task: TaskId) -> Option<u64> {
        self.inner.unit_finished(task)
    }

    fn record_drop(&self) {
        self.inner.record_drop()
    }

    fn tick(&self) -> TickOutcome {
        FaultInjector::tick(self)
    }

    fn clock(&self) -> Arc<dyn Clock> {
        self.inner.clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos::{AtroposConfig, ResourceType};
    use atropos_sim::{Clock, SimTime, VirtualClock};

    fn setup(plan: &FaultPlan) -> (Arc<VirtualClock>, FaultInjector) {
        let clock = Arc::new(VirtualClock::new());
        let rt = Arc::new(AtroposRuntime::new(
            AtroposConfig::default(),
            clock.clone() as Arc<dyn Clock>,
        ));
        (clock, FaultInjector::new(rt, plan))
    }

    #[test]
    fn quiet_plan_is_pure_pass_through() {
        let (clock, inj) = setup(&FaultPlan::quiet(1));
        let rid = inj.runtime().register_resource("r", ResourceType::Memory);
        let t = inj.create_cancel(Some(10));
        inj.unit_started(t);
        inj.get_resource(t, rid, 5);
        inj.free_resource(t, rid, 3);
        inj.slow_by_resource(t, rid, 2);
        clock.advance_to(SimTime::from_millis(100));
        inj.tick();
        let snap = inj.runtime().debug_snapshot();
        let task = snap.task_by_key(atropos::TaskKey(10)).expect("task live");
        let u = &task.usage[rid.index()];
        assert_eq!((u.acquired, u.freed, u.held, u.slow_amount), (5, 3, 2, 2));
        assert!(!inj.injection_log().any());
    }

    #[test]
    fn dropped_free_inflates_held_within_budget() {
        let plan = FaultPlan {
            seed: 9,
            faults: vec![Fault::DropFree {
                probability: 1.0,
                budget: 1,
            }],
        };
        let (clock, inj) = setup(&plan);
        let rid = inj.runtime().register_resource("r", ResourceType::Memory);
        let t = inj.create_cancel(Some(10));
        inj.unit_started(t);
        inj.get_resource(t, rid, 4);
        inj.free_resource(t, rid, 4); // dropped (budget 1)
        inj.get_resource(t, rid, 2);
        inj.free_resource(t, rid, 2); // budget exhausted: delivered
        clock.advance_to(SimTime::from_millis(100));
        inj.tick();
        let snap = inj.runtime().debug_snapshot();
        let u = &snap.task_by_key(atropos::TaskKey(10)).unwrap().usage[rid.index()];
        assert_eq!(u.held, 4, "dropped free must leak held units");
        let truth = inj.truth();
        let e = truth.per[&(t, rid)];
        assert_eq!(e.dropped_free_units, 4);
        assert_eq!(e.delivered_frees, 2);
        assert_eq!(inj.injection_log().frees_dropped, 1);
    }

    #[test]
    fn delayed_events_arrive_at_their_tick_boundary() {
        let plan = FaultPlan {
            seed: 9,
            faults: vec![Fault::DelayBatch {
                probability: 1.0,
                budget: 1,
                ticks: 2,
            }],
        };
        let (clock, inj) = setup(&plan);
        let rid = inj.runtime().register_resource("r", ResourceType::Memory);
        let t = inj.create_cancel(Some(10));
        inj.unit_started(t);
        inj.get_resource(t, rid, 7); // diverted, due at tick index 2
        for tick in 1..=3u64 {
            clock.advance_to(SimTime::from_millis(100 * tick));
            inj.tick();
            let snap = inj.runtime().debug_snapshot();
            let u = &snap.task_by_key(atropos::TaskKey(10)).unwrap().usage[rid.index()];
            if tick <= 2 {
                assert_eq!(u.acquired, 0, "event leaked early at tick {tick}");
            } else {
                assert_eq!(u.acquired, 7, "event not delivered by tick {tick}");
            }
        }
        let truth = inj.truth();
        let e = truth.per[&(t, rid)];
        assert_eq!(e.pending_get_units, 0);
        assert_eq!(e.disorder_units, 7);
    }

    #[test]
    fn same_plan_same_seed_is_bitwise_deterministic() {
        let run = || {
            let plan = FaultPlan::sample(77);
            let (clock, inj) = setup(&plan);
            let rid = inj.runtime().register_resource("r", ResourceType::Lock);
            let mut log = Vec::new();
            for i in 0..40u64 {
                let t = inj.create_cancel(Some(100 + i));
                inj.unit_started(t);
                inj.get_resource(t, rid, 1 + i % 3);
                inj.free_resource(t, rid, 1 + i % 3);
                inj.unit_finished(t);
                inj.free_cancel(t);
                if i % 10 == 9 {
                    clock.advance_to(SimTime::from_millis(10 * (i + 1)));
                    inj.tick();
                }
            }
            let l = inj.injection_log();
            log.push((l.frees_dropped, l.frees_duplicated, l.events_diverted));
            (log, format!("{:?}", inj.truth().per.len()))
        };
        assert_eq!(run(), run());
    }
}
