//! Seeded, scripted overload scenarios driven through the fault injector.
//!
//! The scenarios mirror the live harness's culprit kinds
//! (`atropos_live::CulpritKind`): a **lock hog** convoy (a long task
//! holds the table lock while victims queue behind it), a **buffer
//! scan** (a sweep accumulates buffer-pool pages while victims stall on
//! evictions), and a **ticket queue** hog (one task drains a bounded
//! ticket pool dry while arrivals starve). Each runs 12 detection
//! windows on a virtual clock with every protocol event routed through a
//! [`FaultInjector`] and every invariant checked after every tick.
//!
//! The script reacts to cancellations like a real application: a canceled
//! hog releases its resources and finishes at the start of the next
//! window, and blocked victims then drain. Under an armed fault plan the
//! run may fail to recover (cancellations swallowed, blame starved of
//! events) — that is fine; what must *never* happen, and what
//! [`run_scenario`] reports, is an invariant violation.

use std::sync::Arc;

use atropos::{AtroposConfig, AtroposRuntime, IngestMode, ResourceType, TaskId};
use atropos_sim::{Clock, SimRng, SimTime, VirtualClock};
use parking_lot::Mutex;

use crate::checker::{check_episode_coverage, InvariantChecker, Violation};
use crate::injector::{FaultInjector, InjectionLog};
use crate::plan::FaultPlan;

const MS: u64 = 1_000_000;
/// Detection window length (also the tick period before skew).
pub const WINDOW_NS: u64 = 100 * MS;
/// Number of windows each scenario runs.
pub const WINDOWS: u64 = 12;
/// Window at which the culprit arrives.
pub const HOG_START_WINDOW: u64 = 2;
/// Task key of the culprit; victim keys count up from 100 and stay below.
pub const HOG_KEY: u64 = 9_000;

/// Which scripted culprit to run. This *is* the substrate's shared
/// [`ScenarioFamily`](atropos_substrate::ScenarioFamily): the scripted
/// scenarios, the sim case variants and the live configurations all key
/// off one vocabulary, so the differential can drive all three from the
/// same descriptor.
pub use atropos_substrate::ScenarioFamily as ScenarioKind;

/// What one scenario run observed.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Keys actually delivered to the application's initiator, in order.
    pub canceled_keys: Vec<u64>,
    /// Keys the runtime *issued* (before fail/delay faults), in order.
    pub issued_keys: Vec<u64>,
    /// Whether the hog's cancellation was delivered.
    pub hog_canceled: bool,
    /// Whether any victim's cancellation was delivered.
    pub victim_canceled: bool,
    /// Ticks executed.
    pub ticks: u64,
    /// Detector candidate count at the end of the run.
    pub candidates: u64,
    /// First invariant violation, if any (the run stops there).
    pub violation: Option<Violation>,
    /// Full runtime snapshot at the end of the run.
    pub final_snapshot: atropos::DebugSnapshot,
    /// Decision episodes folded from the flight recorder (checked against
    /// the injector's cancel log by invariant I8).
    pub episodes: Vec<atropos_obs::DecisionEpisode>,
    /// Observer metrics snapshot at the end of the run.
    pub metrics: atropos_obs::MetricsSnapshot,
    /// What the injector actually did (fault-fire counts).
    pub injection: InjectionLog,
}

struct Victim {
    task: TaskId,
    key: u64,
    amount: u64,
}

/// Runs one scripted scenario under `plan` and checks every invariant
/// after every tick. `load_scale` multiplies the arrival rate (used by
/// the detector-monotonicity check); 1 is the base load.
///
/// Buffered ingest (`Sharded`) is the scenarios' default so replay and
/// the mid-window-flush path stay exercised; `run_scenario_with_ingest`
/// exposes the mode for the cross-mode equivalence corpus.
pub fn run_scenario(kind: ScenarioKind, plan: &FaultPlan, load_scale: u64) -> ScenarioOutcome {
    run_scenario_with_ingest(kind, plan, load_scale, IngestMode::Sharded)
}

/// [`run_scenario`] with the trace-ingest mode chosen by the caller.
/// The script, clock, seeds and fault plan are otherwise identical, so
/// any observable difference between two modes on the same inputs is an
/// ingest bug — the cross-mode differential in `tests/ingest_modes.rs`
/// runs the corpus through all three modes and demands bit-identical
/// outcomes.
pub fn run_scenario_with_ingest(
    kind: ScenarioKind,
    plan: &FaultPlan,
    load_scale: u64,
    ingest: IngestMode,
) -> ScenarioOutcome {
    let load = load_scale.max(1);
    let clock = Arc::new(VirtualClock::new());
    let mut cfg = AtroposConfig::default();
    cfg.detector.window_ns = WINDOW_NS;
    cfg.detector.slo_latency_ns = 10 * MS;
    cfg.cancel_min_interval_ns = 0;
    cfg.ingest_mode = ingest;
    let rt = Arc::new(AtroposRuntime::new(cfg, clock.clone() as Arc<dyn Clock>));
    let obs = atropos_obs::Observer::install(&rt, 32 * 1024);
    let inj = FaultInjector::new(rt.clone(), plan);
    let delivered: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let d = delivered.clone();
        let reg = obs.clone();
        inj.install_initiator(move |key| {
            reg.registry().observe_cancel_delivered();
            d.lock().push(key);
        });
    }
    let res = match kind {
        ScenarioKind::LockHog => rt.register_resource("table_lock", ResourceType::Lock),
        ScenarioKind::BufferScan => rt.register_resource("buffer_pool", ResourceType::Memory),
        ScenarioKind::TicketQueue => rt.register_resource("tickets", ResourceType::Queue),
    };
    let mut rng = SimRng::new(plan.seed ^ 0x5CE2_A210);
    let mut checker = InvariantChecker::new();

    let mut blocked: Vec<Victim> = Vec::new();
    let mut hog: Option<TaskId> = None;
    let mut hog_held = 0u64;
    let mut hog_done = false;
    let mut next_key = 100u64;
    let mut canceled_keys: Vec<u64> = Vec::new();
    let mut victim_canceled = false;
    let mut violation = None;
    let at = |ns: u64| SimTime::from_nanos(ns);

    for w in 0..WINDOWS {
        let start = w * WINDOW_NS;

        // React to cancellations delivered during the previous tick.
        let newly: Vec<u64> = std::mem::take(&mut *delivered.lock());
        for key in newly {
            canceled_keys.push(key);
            if key == HOG_KEY {
                if let Some(h) = hog.take() {
                    clock.advance_to(at(start + MS));
                    if hog_held > 0 {
                        inj.free_resource(h, res, hog_held);
                        hog_held = 0;
                    }
                    inj.unit_finished(h);
                    inj.free_cancel(h);
                    hog_done = true;
                }
            } else if let Some(pos) = blocked.iter().position(|v| v.key == key) {
                let v = blocked.remove(pos);
                victim_canceled = true;
                clock.advance_to(at(start + MS));
                inj.unit_finished(v.task);
                inj.free_cancel(v.task);
            }
        }

        // The culprit arrives.
        if w == HOG_START_WINDOW && !hog_done {
            clock.advance_to(at(start + 2 * MS));
            let h = inj.create_cancel(Some(HOG_KEY));
            inj.unit_started(h);
            inj.report_progress(h, 5, 100);
            match kind {
                ScenarioKind::LockHog => {
                    inj.get_resource(h, res, 1);
                    hog_held = 1;
                }
                ScenarioKind::TicketQueue => {
                    // The hog takes the whole (two-ticket) pool.
                    inj.get_resource(h, res, 2);
                    hog_held = 2;
                }
                ScenarioKind::BufferScan => {}
            }
            hog = Some(h);
        }
        // The scan sweeps more of the pool every window it survives.
        if let Some(h) = hog {
            if kind == ScenarioKind::BufferScan {
                clock.advance_to(at(start + 3 * MS));
                inj.get_resource(h, res, 60);
                hog_held += 60;
                inj.report_progress(h, (5 + w).min(99), 100);
            }
        }
        let hog_active = hog.is_some();

        // With the culprit gone, the convoy drains early in the window.
        if !hog_active && !blocked.is_empty() {
            let n = blocked.len() as u64;
            for (i, v) in blocked.drain(..).enumerate() {
                clock.advance_to(at(start + 4 * MS + (i as u64) * (12 * MS) / n));
                inj.get_resource(v.task, res, v.amount);
                inj.free_resource(v.task, res, v.amount);
                inj.unit_finished(v.task);
                inj.free_cancel(v.task);
            }
        }

        // Arrivals: complete in ~3 ms when healthy, join the convoy when
        // the culprit holds the resource.
        let arrivals = 10 * load;
        for i in 0..arrivals {
            let t0 = start + 20 * MS + i * (70 * MS) / arrivals;
            clock.advance_to(at(t0));
            let key = next_key;
            next_key += 1;
            let t = inj.create_cancel(Some(key));
            inj.unit_started(t);
            let amount = match kind {
                ScenarioKind::LockHog | ScenarioKind::TicketQueue => 1,
                ScenarioKind::BufferScan => 2 + rng.below(4),
            };
            inj.slow_by_resource(t, res, amount);
            if hog_active {
                blocked.push(Victim {
                    task: t,
                    key,
                    amount,
                });
            } else {
                clock.advance_to(at(t0 + MS));
                inj.get_resource(t, res, amount);
                clock.advance_to(at(t0 + 3 * MS));
                inj.free_resource(t, res, amount);
                inj.unit_finished(t);
                inj.free_cancel(t);
            }
        }

        // Under the convoy, the two oldest victims give up at the window
        // edge: the few completions the detector sees are far over SLO.
        if hog_active {
            for j in 0..2usize.min(blocked.len()) {
                let v = blocked.remove(0);
                clock.advance_to(at(start + 95 * MS + j as u64 * MS));
                inj.unit_finished(v.task);
                inj.free_cancel(v.task);
            }
        }

        // Tick, possibly late, then check every invariant.
        let skew = inj.tick_skew_ns();
        clock.advance_to(at((w + 1) * WINDOW_NS + skew));
        inj.tick();
        if let Err(v) = checker.after_tick(&rt, &inj.truth()) {
            violation = Some(v);
            break;
        }
    }

    canceled_keys.extend(std::mem::take(&mut *delivered.lock()));
    let snap = rt.debug_snapshot();
    let truth = inj.truth();
    let names = atropos_obs::ResourceNames::from_snapshot(&snap);
    let episodes = obs.drain_episodes(&names);
    // I8 runs end-of-run: the flight recorder must explain every issued
    // cancellation, even under fail/delay faults. An earlier violation
    // (which stops the script mid-run) takes precedence.
    if violation.is_none() {
        if let Err(v) = check_episode_coverage(&truth, &episodes) {
            violation = Some(v);
        }
    }
    ScenarioOutcome {
        hog_canceled: canceled_keys.contains(&HOG_KEY),
        victim_canceled: victim_canceled || canceled_keys.iter().any(|k| *k != HOG_KEY),
        issued_keys: truth.cancel_log.iter().map(|o| o.key).collect(),
        canceled_keys,
        ticks: snap.stats.ticks,
        candidates: snap.detector.candidates,
        violation,
        final_snapshot: snap,
        episodes,
        metrics: obs.metrics(),
        injection: truth.log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_lock_hog_cancels_the_hog_and_only_the_hog() {
        let out = run_scenario(ScenarioKind::LockHog, &FaultPlan::quiet(1), 1);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.hog_canceled, "hog survived: {out:?}");
        assert!(!out.victim_canceled, "victim canceled: {out:?}");
        assert_eq!(out.canceled_keys.first(), Some(&HOG_KEY));
        assert!(out.candidates >= 1);
        assert_eq!(out.ticks, WINDOWS);
    }

    #[test]
    fn quiet_buffer_scan_cancels_the_scan_and_only_the_scan() {
        let out = run_scenario(ScenarioKind::BufferScan, &FaultPlan::quiet(1), 1);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.hog_canceled, "scan survived: {out:?}");
        assert!(!out.victim_canceled, "victim canceled: {out:?}");
    }

    #[test]
    fn quiet_ticket_queue_cancels_the_hog_and_only_the_hog() {
        let out = run_scenario(ScenarioKind::TicketQueue, &FaultPlan::quiet(1), 1);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.hog_canceled, "hog survived: {out:?}");
        assert!(!out.victim_canceled, "victim canceled: {out:?}");
        assert_eq!(out.canceled_keys.first(), Some(&HOG_KEY));
    }

    #[test]
    fn scenario_is_deterministic() {
        let plan = FaultPlan::sample(1234);
        let a = run_scenario(ScenarioKind::LockHog, &plan, 1);
        let b = run_scenario(ScenarioKind::LockHog, &plan, 1);
        assert_eq!(a.canceled_keys, b.canceled_keys);
        assert_eq!(a.issued_keys, b.issued_keys);
        assert_eq!(a.candidates, b.candidates);
    }
}
