//! Sim ↔ thread ↔ async differential: the same overload, three execution
//! substrates.
//!
//! The simulator (`atropos-app` on a virtual clock), the thread harness
//! (`atropos-live` on real threads with cooperative cancel tokens), and
//! the async harness (`atropos-async` on a hand-rolled executor with
//! future-drop cancellation) all reproduce the three scenario families of
//! [`ScenarioFamily`]: a lock-hog convoy, a buffer-pool scan, and a
//! ticket-queue hog. Each family is pinned by a shared
//! [`ScenarioDescriptor`] — one sim seed plus the live geometry — so
//! every side provably runs the same story. This module replays each
//! through the substrates and compares the *decision trace* — who was
//! blamed, who was canceled, in what order.
//!
//! The async leg additionally runs with the chaos [`FaultInjector`]
//! composed over its port (armed with a quiet plan, i.e. pure
//! pass-through): the middleware stack that was written against the
//! thread substrate must compose over the async substrate *unchanged* —
//! that compositionality is part of the portability claim under test.
//!
//! ## What must agree, and the timing tolerance
//!
//! Exact tick-for-tick agreement is impossible: the simulator runs 10 ms
//! detector windows on a virtual clock, the live harness 50 ms windows on
//! the wall clock with scheduler noise. The contract is therefore scoped
//! to the **decision episode** — the span from disturbance onset to the
//! first cancellation that lands on the culprit:
//!
//! 1. **Culprit identity is exact.** Within the episode, every canceled
//!    task belongs to the culprit — the culprit workload classes in the
//!    sim, keys `>= CULPRIT_KEY_BASE` in the live harness. A victim
//!    canceled *before* the culprit is misblame and fails the test.
//! 2. **Timing agrees within [`DECISION_TOLERANCE_NS`]** (2 s, ~a few
//!    dozen detector windows in either domain): each substrate issues its
//!    first cancellation within that budget of its own disturbance start,
//!    measured on its own clock. The budget is wide because it absorbs
//!    wall-clock scheduling noise; healthy runs decide within a few
//!    windows.
//!
//! After the episode resolves, the two substrates intentionally diverge:
//! the live run is a single culprit pulse and simply drains, while the
//! sim's sustained workload re-injects the culprit every few seconds and
//! may shed load during the thrash-recovery gap between instances
//! (latency is still over SLO while the cache refills, so the policy
//! keeps relieving the still-overloaded resource). That post-resolution
//! shedding is load regulation, not decision disagreement; what it must
//! never do — target a completed task — is invariant **I5**'s job
//! ([`crate::checker`]).

use std::sync::Arc;

use atropos_app::ids::ClassId;
use atropos_live::{
    live_atropos_config, run, ControlMode, LiveConfig, LiveReport, CULPRIT_KEY_BASE,
};
use atropos_scenarios::chaos::{run_variant, variant_for, ChaosCulprit};
use atropos_substrate::{ScenarioDescriptor, ScenarioFamily};
use atropos_workload::family_descriptor;

use crate::injector::FaultInjector;
use crate::plan::FaultPlan;

/// Both substrates must issue their first cancellation within this much
/// of the disturbance, on their own clock (virtual for the sim, wall for
/// the live harness).
pub const DECISION_TOLERANCE_NS: u64 = 2_000_000_000;

/// A substrate-neutral decision trace for one decision episode.
#[derive(Debug)]
pub struct DecisionTrace {
    /// Which substrate produced it (for error messages).
    pub substrate: &'static str,
    /// Cancellations that hit the culprit (whole run).
    pub culprit_cancels: u64,
    /// Victims canceled *within the decision episode* — before the first
    /// cancellation reached the culprit (must stay 0).
    pub victim_cancels: u64,
    /// Whether the first cancellation targeted the culprit.
    pub first_is_culprit: bool,
    /// Delay from disturbance start to the first cancellation (own
    /// clock), if any cancellation happened.
    pub first_cancel_delay_ns: Option<u64>,
}

/// The chaos-variant culprit a scenario family maps onto in the sim.
pub fn family_culprit(family: ScenarioFamily) -> ChaosCulprit {
    match family {
        ScenarioFamily::LockHog => ChaosCulprit::LockHog,
        ScenarioFamily::BufferScan => ChaosCulprit::BufferScan,
        ScenarioFamily::TicketQueue => ChaosCulprit::TicketQueue,
    }
}

/// Runs a scenario family through the simulator at its descriptor's
/// pinned seed.
pub fn sim_trace_for(family: ScenarioFamily) -> DecisionTrace {
    sim_trace(family_culprit(family), family_descriptor(family).sim_seed)
}

/// Runs a chaos variant through the simulator and extracts its decision
/// trace from the server's cancellation log. The victim count is scoped
/// to the decision episode (see the module docs): records after the
/// first culprit cancellation are post-resolution load regulation in the
/// sustained sim workload, not part of the decision under comparison.
pub fn sim_trace(culprit: ChaosCulprit, seed: u64) -> DecisionTrace {
    let variant = variant_for(culprit);
    let run = run_variant(&variant, seed);
    let log = &run.metrics.cancel_log;
    let is_culprit = |class: ClassId| variant.is_culprit_class(class);
    let culprit_cancels = log.iter().filter(|r| is_culprit(r.class)).count() as u64;
    let victim_cancels = log.iter().take_while(|r| !is_culprit(r.class)).count() as u64;
    DecisionTrace {
        substrate: "sim",
        culprit_cancels,
        victim_cancels,
        first_is_culprit: log.first().map(|r| is_culprit(r.class)).unwrap_or(false),
        first_cancel_delay_ns: log
            .first()
            .map(|r| r.at.as_nanos().saturating_sub(run.disturb_at.as_nanos())),
    }
}

/// The live configuration a scenario descriptor pins. Thin alias for
/// [`LiveConfig::from_scenario`], kept so existing chaos call sites and
/// docs read naturally.
pub fn live_config_for(d: &ScenarioDescriptor) -> LiveConfig {
    LiveConfig::from_scenario(d)
}

/// Runs a scenario family through the thread harness at its descriptor's
/// pinned geometry.
pub fn live_trace_for(family: ScenarioFamily) -> DecisionTrace {
    live_trace(&family_descriptor(family))
}

/// Extracts a wall-clock substrate's decision trace from its report's
/// issued-cancellation key log: culprit keys are `>= CULPRIT_KEY_BASE` by
/// construction of the shared workload, so classification is exact.
///
/// The delivered-count cross-check guards the classification, scoped by
/// `victims_deliverable`. In the thread substrate victims never register
/// cancel tokens, so every delivered cancellation must correspond to a
/// culprit key. In the async substrate *every* task registers an abort
/// handle — cancellation is future drop, there is no opt-in token — so
/// after the decision episode resolves, sustained over-SLO latency (e.g.
/// cache refill behind a buffer scan) can legitimately shed a victim,
/// exactly like the sim's post-resolution load regulation. There the
/// bound is the full issued log, and misblame detection falls to the
/// episode-scoped `victim_cancels` / `first_is_culprit` fields.
fn trace_from_report(
    substrate: &'static str,
    report: &LiveReport,
    victims_deliverable: bool,
) -> DecisionTrace {
    let keys = &report.canceled_keys;
    let is_culprit = |k: u64| k >= CULPRIT_KEY_BASE;
    let culprit_cancels = keys.iter().filter(|&&k| is_culprit(k)).count() as u64;
    let deliverable = if victims_deliverable {
        keys.len() as u64
    } else {
        culprit_cancels
    };
    assert!(
        report.cancellations_delivered <= deliverable,
        "{substrate}: delivered {} cancellations but only {} were deliverable",
        report.cancellations_delivered,
        deliverable
    );
    DecisionTrace {
        substrate,
        culprit_cancels,
        victim_cancels: keys.iter().take_while(|&&k| !is_culprit(k)).count() as u64,
        first_is_culprit: keys.first().map(|&k| is_culprit(k)).unwrap_or(false),
        first_cancel_delay_ns: report.time_to_cancel.map(|d| d.as_nanos() as u64),
    }
}

/// Runs the thread-substrate analog of a chaos variant and extracts its
/// decision trace.
pub fn live_trace(descriptor: &ScenarioDescriptor) -> DecisionTrace {
    let report = run(
        live_config_for(descriptor),
        ControlMode::Atropos(live_atropos_config()),
    );
    trace_from_report("live", &report, false)
}

/// Runs a scenario family through the async harness at its descriptor's
/// pinned geometry.
pub fn async_trace_for(family: ScenarioFamily) -> DecisionTrace {
    async_trace(&family_descriptor(family))
}

/// Runs the async-substrate analog and extracts its decision trace. The
/// run goes through [`FaultInjector`] middleware armed with a quiet plan
/// (pure pass-through), proving the chaos stack composes over the async
/// port unchanged: tracing, the supervisor tick, and the abort-initiator
/// installation all cross the middleware.
pub fn async_trace(descriptor: &ScenarioDescriptor) -> DecisionTrace {
    let plan = FaultPlan::quiet(descriptor.sim_seed);
    let report = atropos_async::run_with(
        live_config_for(descriptor),
        ControlMode::Atropos(live_atropos_config()),
        move |port| Arc::new(FaultInjector::over(port, &plan)),
    );
    trace_from_report("async", &report, true)
}

/// Asserts one substrate's trace is a correct decision, returning a
/// description of the first disagreement with the contract.
fn check_trace(t: &DecisionTrace) -> Result<(), String> {
    if t.culprit_cancels == 0 {
        return Err(format!("{}: culprit was never canceled", t.substrate));
    }
    if !t.first_is_culprit {
        return Err(format!(
            "{}: first cancellation did not target the culprit",
            t.substrate
        ));
    }
    if t.victim_cancels > 0 {
        return Err(format!(
            "{}: {} victim(s) canceled before the culprit",
            t.substrate, t.victim_cancels
        ));
    }
    match t.first_cancel_delay_ns {
        None => Err(format!("{}: no cancellation recorded", t.substrate)),
        Some(d) if d > DECISION_TOLERANCE_NS => Err(format!(
            "{}: first cancellation {d} ns after disturbance exceeds tolerance {} ns",
            t.substrate, DECISION_TOLERANCE_NS
        )),
        Some(_) => Ok(()),
    }
}

/// The differential judgment: both substrates individually satisfy the
/// decision contract (culprit-only, within tolerance), which makes their
/// decision traces equal modulo the documented timing tolerance.
pub fn compare(sim: &DecisionTrace, live: &DecisionTrace) -> Result<(), String> {
    check_trace(sim)?;
    check_trace(live)?;
    Ok(())
}

/// The three-way judgment: sim, thread, and async substrates each
/// satisfy the decision contract, which means all three agree on culprit
/// identity modulo the documented timing tolerance — across a virtual
/// clock, parked threads with cooperative tokens, and dropped futures.
pub fn compare3(
    sim: &DecisionTrace,
    live: &DecisionTrace,
    asynchronous: &DecisionTrace,
) -> Result<(), String> {
    check_trace(sim)?;
    check_trace(live)?;
    check_trace(asynchronous)?;
    Ok(())
}
