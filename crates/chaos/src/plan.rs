//! Fault plans: what to inject, sampled from a seed, shrinkable on failure.
//!
//! A [`FaultPlan`] is the complete description of one chaos experiment:
//! a seed (driving both the workload script and every fault decision) and
//! a set of [`Fault`]s to arm. Plans are *values* — they can be sampled,
//! printed, replayed, and minimized. The vendored proptest shim does not
//! shrink, so [`FaultPlan::minimize`] implements greedy delta-debugging
//! directly: drop whole faults, then halve their parameters, keeping every
//! step that still reproduces the failure. Any test failure reports the
//! seed plus the minimized plan as JSON, which can be replayed with the
//! `chaos` binary.

use atropos_sim::SimRng;
use std::fmt;

/// One injected fault, with its trigger parameters.
///
/// Probabilities are per-opportunity (per matching protocol event);
/// budgets cap how many times the fault fires over a run, so a shrunk
/// plan can pin a failure to "exactly one dropped free".
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Drop a `free_resource` event entirely (the app thinks it freed,
    /// the runtime never hears about it).
    DropFree {
        /// Per-free probability of dropping.
        probability: f64,
        /// Maximum number of drops over the run.
        budget: u64,
    },
    /// Deliver a `free_resource` event twice.
    DupFree {
        /// Per-free probability of duplicating.
        probability: f64,
        /// Maximum number of duplications over the run.
        budget: u64,
    },
    /// Divert a trace event (get/free/slow) into a held batch delivered
    /// `ticks` tick boundaries later.
    DelayBatch {
        /// Per-event probability of diversion.
        probability: f64,
        /// Maximum number of diverted events.
        budget: u64,
        /// How many tick boundaries to hold the event for.
        ticks: u64,
    },
    /// Divert a trace event into the *next* tick boundary's batch and
    /// shuffle the batch before delivery (reordering relative to
    /// pass-through events and within the batch).
    ReorderBatch {
        /// Per-event probability of diversion.
        probability: f64,
        /// Maximum number of diverted events.
        budget: u64,
    },
    /// Make the cancel initiator silently swallow a cancellation: the
    /// runtime believes it fired, the application never sees it.
    FailCancel {
        /// Maximum number of swallowed cancellations.
        budget: u64,
    },
    /// Deliver every cancellation `ticks` tick boundaries late.
    DelayCancel {
        /// Delivery delay in tick boundaries.
        ticks: u64,
    },
    /// Fire each tick up to `max_skew_ns` late (uniform, additive-only),
    /// desynchronizing the control loop from the detector's window grid.
    SkewTick {
        /// Maximum per-tick lateness in nanoseconds.
        max_skew_ns: u64,
    },
}

impl Fault {
    /// Stable name of the fault kind (used in logs and JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::DropFree { .. } => "drop_free",
            Fault::DupFree { .. } => "dup_free",
            Fault::DelayBatch { .. } => "delay_batch",
            Fault::ReorderBatch { .. } => "reorder_batch",
            Fault::FailCancel { .. } => "fail_cancel",
            Fault::DelayCancel { .. } => "delay_cancel",
            Fault::SkewTick { .. } => "skew_tick",
        }
    }

    fn to_json(&self) -> String {
        match self {
            Fault::DropFree {
                probability,
                budget,
            }
            | Fault::DupFree {
                probability,
                budget,
            } => format!(
                "{{\"kind\":\"{}\",\"probability\":{probability:.4},\"budget\":{budget}}}",
                self.kind()
            ),
            Fault::DelayBatch {
                probability,
                budget,
                ticks,
            } => format!(
                "{{\"kind\":\"delay_batch\",\"probability\":{probability:.4},\"budget\":{budget},\"ticks\":{ticks}}}"
            ),
            Fault::ReorderBatch {
                probability,
                budget,
            } => format!(
                "{{\"kind\":\"reorder_batch\",\"probability\":{probability:.4},\"budget\":{budget}}}"
            ),
            Fault::FailCancel { budget } => {
                format!("{{\"kind\":\"fail_cancel\",\"budget\":{budget}}}")
            }
            Fault::DelayCancel { ticks } => {
                format!("{{\"kind\":\"delay_cancel\",\"ticks\":{ticks}}}")
            }
            Fault::SkewTick { max_skew_ns } => {
                format!("{{\"kind\":\"skew_tick\",\"max_skew_ns\":{max_skew_ns}}}")
            }
        }
    }

    /// Smaller variants of this fault (halved parameters), for shrinking.
    fn shrunk(&self) -> Vec<Fault> {
        let mut out = Vec::new();
        let mut push = |f: Fault| {
            if &f != self {
                out.push(f);
            }
        };
        match *self {
            Fault::DropFree {
                probability,
                budget,
            } => {
                if budget > 1 {
                    push(Fault::DropFree {
                        probability,
                        budget: budget / 2,
                    });
                }
                if probability > 0.02 {
                    push(Fault::DropFree {
                        probability: probability / 2.0,
                        budget,
                    });
                }
            }
            Fault::DupFree {
                probability,
                budget,
            } => {
                if budget > 1 {
                    push(Fault::DupFree {
                        probability,
                        budget: budget / 2,
                    });
                }
                if probability > 0.02 {
                    push(Fault::DupFree {
                        probability: probability / 2.0,
                        budget,
                    });
                }
            }
            Fault::DelayBatch {
                probability,
                budget,
                ticks,
            } => {
                if budget > 1 {
                    push(Fault::DelayBatch {
                        probability,
                        budget: budget / 2,
                        ticks,
                    });
                }
                if ticks > 1 {
                    push(Fault::DelayBatch {
                        probability,
                        budget,
                        ticks: ticks / 2,
                    });
                }
                if probability > 0.02 {
                    push(Fault::DelayBatch {
                        probability: probability / 2.0,
                        budget,
                        ticks,
                    });
                }
            }
            Fault::ReorderBatch {
                probability,
                budget,
            } => {
                if budget > 1 {
                    push(Fault::ReorderBatch {
                        probability,
                        budget: budget / 2,
                    });
                }
                if probability > 0.02 {
                    push(Fault::ReorderBatch {
                        probability: probability / 2.0,
                        budget,
                    });
                }
            }
            Fault::FailCancel { budget } => {
                if budget > 1 {
                    push(Fault::FailCancel { budget: budget / 2 });
                }
            }
            Fault::DelayCancel { ticks } => {
                if ticks > 1 {
                    push(Fault::DelayCancel { ticks: ticks / 2 });
                }
            }
            Fault::SkewTick { max_skew_ns } => {
                if max_skew_ns > 1_000_000 {
                    push(Fault::SkewTick {
                        max_skew_ns: max_skew_ns / 2,
                    });
                }
            }
        }
        out
    }
}

/// A complete, replayable chaos experiment description.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed driving the workload script and every fault decision.
    pub seed: u64,
    /// The armed faults. Empty = quiet plan (pure pass-through).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults: the injector becomes a pass-through and
    /// every invariant bound collapses to exact equality.
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Samples a random plan from `seed`: each fault kind is armed
    /// independently with probability 1/2 and its parameters drawn from
    /// deliberately wide ranges.
    pub fn sample(seed: u64) -> Self {
        let mut rng = SimRng::new(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let mut faults = Vec::new();
        let prob = |r: &mut SimRng| r.range_f64(0.05, 0.5);
        let budget = |r: &mut SimRng| r.below(16) + 1;
        if rng.chance(0.5) {
            faults.push(Fault::DropFree {
                probability: prob(&mut rng),
                budget: budget(&mut rng),
            });
        }
        if rng.chance(0.5) {
            faults.push(Fault::DupFree {
                probability: prob(&mut rng),
                budget: budget(&mut rng),
            });
        }
        if rng.chance(0.5) {
            faults.push(Fault::DelayBatch {
                probability: prob(&mut rng),
                budget: budget(&mut rng),
                ticks: rng.below(3) + 1,
            });
        }
        if rng.chance(0.5) {
            faults.push(Fault::ReorderBatch {
                probability: prob(&mut rng),
                budget: budget(&mut rng),
            });
        }
        if rng.chance(0.5) {
            faults.push(Fault::FailCancel {
                budget: rng.below(4) + 1,
            });
        }
        if rng.chance(0.5) {
            faults.push(Fault::DelayCancel {
                ticks: rng.below(3) + 1,
            });
        }
        if rng.chance(0.5) {
            faults.push(Fault::SkewTick {
                max_skew_ns: (rng.below(30) + 1) * 1_000_000,
            });
        }
        Self { seed, faults }
    }

    /// One-step-smaller candidate plans, largest reductions first: every
    /// single-fault removal, then every single-parameter halving.
    pub fn shrink_candidates(&self) -> Vec<FaultPlan> {
        let mut out = Vec::new();
        for i in 0..self.faults.len() {
            let mut faults = self.faults.clone();
            faults.remove(i);
            out.push(FaultPlan {
                seed: self.seed,
                faults,
            });
        }
        for (i, f) in self.faults.iter().enumerate() {
            for smaller in f.shrunk() {
                let mut faults = self.faults.clone();
                faults[i] = smaller;
                out.push(FaultPlan {
                    seed: self.seed,
                    faults,
                });
            }
        }
        out
    }

    /// Greedy delta-debugging: repeatedly replace the plan with the first
    /// shrink candidate for which `still_fails` returns true, until no
    /// candidate reproduces the failure. `still_fails(&self)` is assumed
    /// true on entry.
    pub fn minimize(mut self, mut still_fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
        'outer: loop {
            for cand in self.shrink_candidates() {
                if still_fails(&cand) {
                    self = cand;
                    continue 'outer;
                }
            }
            return self;
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let faults: Vec<String> = self.faults.iter().map(Fault::to_json).collect();
        write!(
            f,
            "{{\"seed\":{},\"faults\":[{}]}}",
            self.seed,
            faults.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        assert_eq!(FaultPlan::sample(7), FaultPlan::sample(7));
        // Not all seeds give the same plan.
        let distinct = (0..32)
            .map(FaultPlan::sample)
            .collect::<Vec<_>>()
            .windows(2)
            .any(|w| w[0].faults != w[1].faults);
        assert!(distinct, "32 consecutive seeds produced identical plans");
    }

    #[test]
    fn minimize_isolates_the_culpable_fault() {
        // Failure reproduces iff the plan contains a DropFree — minimize
        // must strip everything else and shrink DropFree to budget 1.
        let plan = FaultPlan {
            seed: 3,
            faults: vec![
                Fault::SkewTick {
                    max_skew_ns: 8_000_000,
                },
                Fault::DropFree {
                    probability: 0.4,
                    budget: 8,
                },
                Fault::FailCancel { budget: 4 },
            ],
        };
        let min = plan.minimize(|p| p.faults.iter().any(|f| matches!(f, Fault::DropFree { .. })));
        assert_eq!(min.faults.len(), 1);
        match &min.faults[0] {
            Fault::DropFree { budget, .. } => assert_eq!(*budget, 1),
            other => panic!("expected DropFree to survive, got {other:?}"),
        }
    }

    #[test]
    fn minimize_keeps_interacting_fault_pairs() {
        // Failure needs both DropFree and FailCancel: neither may be
        // removed, but both shrink to budget 1.
        let plan = FaultPlan {
            seed: 3,
            faults: vec![
                Fault::DropFree {
                    probability: 0.4,
                    budget: 8,
                },
                Fault::ReorderBatch {
                    probability: 0.2,
                    budget: 4,
                },
                Fault::FailCancel { budget: 4 },
            ],
        };
        let min = plan.minimize(|p| {
            let drop = p.faults.iter().any(|f| matches!(f, Fault::DropFree { .. }));
            let fail = p
                .faults
                .iter()
                .any(|f| matches!(f, Fault::FailCancel { .. }));
            drop && fail
        });
        assert_eq!(min.faults.len(), 2);
        assert!(min.faults.iter().all(|f| matches!(
            f,
            Fault::DropFree { budget: 1, .. } | Fault::FailCancel { budget: 1 }
        )));
    }

    #[test]
    fn display_renders_replayable_json() {
        let plan = FaultPlan {
            seed: 42,
            faults: vec![
                Fault::DropFree {
                    probability: 0.25,
                    budget: 2,
                },
                Fault::DelayCancel { ticks: 3 },
            ],
        };
        let s = plan.to_string();
        assert!(s.contains("\"seed\":42"), "{s}");
        assert!(s.contains("\"kind\":\"drop_free\""), "{s}");
        assert!(s.contains("\"ticks\":3"), "{s}");
    }
}
