//! The async substrate under armed fault plans, and I9 falsifiability.
//!
//! PR 7's differential only ever ran the async port behind the *quiet*
//! plan. These tests arm real plans — dropped/duplicated frees, delayed
//! and reordered batches, failed/delayed cancels, tick skew — over full
//! wall-clock async serving sessions and validate the quiesced
//! invariants (I1–I6, the wait/hold half of I7, I8) plus the drain
//! guarantee that no fault pattern wedges a task scope open.

use std::collections::HashSet;

use atropos_chaos::{check_edge_blame, run_async_scenario, EdgeCancelObservation, FaultPlan};
use atropos_substrate::ScenarioFamily;

/// Quiet plan first: the leg itself is sound — the culprit story plays
/// out through the instrumented run and nothing violates.
#[test]
fn async_leg_quiet_plan_is_clean_and_cancels_the_culprit() {
    let out = run_async_scenario(ScenarioFamily::LockHog, &FaultPlan::quiet(7));
    assert!(out.violation.is_none(), "{:?}", out.violation);
    assert_eq!(out.leaked_tasks, 0);
    assert!(
        out.report.culprits_canceled >= 1,
        "quiet async run never canceled the culprit: {:?}",
        out.report.canceled_keys
    );
    assert!(out.injection.frees_dropped == 0 && out.injection.frees_duplicated == 0);
}

/// Armed plans across all three families: invariants hold against the
/// quiesced end state and every task scope closes, whatever the plan
/// dropped, duplicated, delayed, reordered or swallowed.
#[test]
fn async_leg_survives_armed_fault_plans() {
    let mut armed_seen = false;
    for (i, family) in ScenarioFamily::ALL.iter().cycle().take(6).enumerate() {
        let seed = 900 + i as u64;
        let plan = FaultPlan::sample(seed);
        armed_seen |= !plan.faults.is_empty();
        let out = run_async_scenario(*family, &plan);
        assert!(
            out.violation.is_none(),
            "async {} seed {seed}: {}",
            family.name(),
            out.violation.unwrap()
        );
        assert_eq!(
            out.leaked_tasks,
            0,
            "async {} seed {seed} leaked task scopes under {:?}",
            family.name(),
            plan.faults
        );
    }
    assert!(
        armed_seen,
        "every sampled plan was quiet; soak proved nothing"
    );
}

fn obs(root_key: u64, had_blame: bool) -> EdgeCancelObservation {
    EdgeCancelObservation {
        root_key,
        origin_node: 0,
        had_blame,
        tick: 3,
    }
}

/// I9 accepts exactly the conserving histories...
#[test]
fn edge_blame_conservation_passes_on_witnessed_roots() {
    let witnessed: HashSet<u64> = [5, 9].into_iter().collect();
    let log = [obs(5, true), obs(9, true)];
    assert!(check_edge_blame(&witnessed, &log, 0).is_ok());
}

/// ...and is falsifiable on each leg: a cancel without a blame path, a
/// root never witnessed at the origin, and a rejected identity frame are
/// all caught.
#[test]
fn edge_blame_conservation_is_falsifiable() {
    let witnessed: HashSet<u64> = [5].into_iter().collect();

    let no_path = [obs(5, false)];
    let v = check_edge_blame(&witnessed, &no_path, 0).unwrap_err();
    assert_eq!(v.invariant, "I9");
    assert!(v.detail.contains("without a blame-table entry"), "{v}");

    let unwitnessed = [obs(6, true)];
    let v = check_edge_blame(&witnessed, &unwitnessed, 0).unwrap_err();
    assert_eq!(v.invariant, "I9");
    assert!(v.detail.contains("no such root was witnessed"), "{v}");

    let v = check_edge_blame(&witnessed, &[], 2).unwrap_err();
    assert_eq!(v.invariant, "I9");
    assert!(v.detail.contains("frames rejected"), "{v}");
}
