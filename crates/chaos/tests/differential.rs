//! Sim ↔ live differential tests: the simulator and the wall-clock
//! harness, given the same culprit kind, reach the same decision — the
//! culprit is canceled, victims are spared, within the documented timing
//! tolerance ([`atropos_chaos::differential::DECISION_TOLERANCE_NS`]).
//!
//! These run real threads on the live side; margins follow the live
//! crate's e2e test (structural contrast far above scheduler noise).

use atropos_chaos::differential::{compare, live_trace, sim_trace};
use atropos_scenarios::ChaosCulprit;

#[test]
fn sim_and_live_agree_on_the_lock_hog_culprit() {
    let sim = sim_trace(ChaosCulprit::LockHog, 42);
    let live = live_trace(ChaosCulprit::LockHog);
    if let Err(e) = compare(&sim, &live) {
        panic!("decision traces disagree: {e}\n  sim: {sim:?}\n  live: {live:?}");
    }
}

#[test]
fn sim_and_live_agree_on_the_buffer_scan_culprit() {
    let sim = sim_trace(ChaosCulprit::BufferScan, 42);
    let live = live_trace(ChaosCulprit::BufferScan);
    if let Err(e) = compare(&sim, &live) {
        panic!("decision traces disagree: {e}\n  sim: {sim:?}\n  live: {live:?}");
    }
}
