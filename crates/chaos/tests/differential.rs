//! Sim ↔ thread ↔ async differential tests: three execution substrates,
//! driven from the same pinned [`ScenarioDescriptor`], reach the same
//! decision — the culprit is canceled, victims are spared, within the
//! documented timing tolerance
//! ([`atropos_chaos::differential::DECISION_TOLERANCE_NS`]).
//!
//! The thread leg runs real worker threads with cooperative cancel
//! tokens; the async leg runs the hand-rolled executor with future-drop
//! cancellation, behind a quiet-plan [`FaultInjector`] to prove the
//! chaos middleware composes over the async port unchanged. Margins
//! follow the live crate's e2e test (structural contrast far above
//! scheduler noise).
//!
//! On failure, each test dumps all three decision traces to
//! `$DIFFERENTIAL_OUT/<family>.txt` (if the env var is set) so CI can
//! upload the disagreement as an artifact.
//!
//! [`ScenarioDescriptor`]: atropos_substrate::ScenarioDescriptor
//! [`FaultInjector`]: atropos_chaos::FaultInjector

use atropos_chaos::differential::{
    async_trace_for, compare3, live_trace_for, sim_trace_for, DecisionTrace,
};
use atropos_substrate::ScenarioFamily;

fn differential(family: ScenarioFamily) {
    let sim = sim_trace_for(family);
    let live = live_trace_for(family);
    let asynchronous = async_trace_for(family);
    if let Err(e) = compare3(&sim, &live, &asynchronous) {
        dump_artifact(family, &[&sim, &live, &asynchronous], &e);
        panic!(
            "decision traces disagree: {e}\n  sim: {sim:?}\n  live: {live:?}\n  async: {asynchronous:?}"
        );
    }
}

/// Writes the disagreeing traces where CI can pick them up. Best-effort:
/// artifact trouble must never mask the real failure.
fn dump_artifact(family: ScenarioFamily, traces: &[&DecisionTrace], err: &str) {
    let Ok(dir) = std::env::var("DIFFERENTIAL_OUT") else {
        return;
    };
    let _ = std::fs::create_dir_all(&dir);
    let mut body = format!(
        "family: {}\ndescriptor: {:?}\nerror: {err}\n",
        family.name(),
        atropos_workload::family_descriptor(family),
    );
    for t in traces {
        body.push_str(&format!("{}: {t:?}\n", t.substrate));
    }
    let _ = std::fs::write(format!("{dir}/{}.txt", family.name()), body);
}

#[test]
fn substrates_agree_on_the_lock_hog_culprit() {
    differential(ScenarioFamily::LockHog);
}

#[test]
fn substrates_agree_on_the_buffer_scan_culprit() {
    differential(ScenarioFamily::BufferScan);
}

#[test]
fn substrates_agree_on_the_ticket_queue_culprit() {
    differential(ScenarioFamily::TicketQueue);
}
