//! Sim ↔ live differential tests: the simulator and the wall-clock
//! harness, driven from the same pinned [`ScenarioDescriptor`], reach
//! the same decision — the culprit is canceled, victims are spared,
//! within the documented timing tolerance
//! ([`atropos_chaos::differential::DECISION_TOLERANCE_NS`]).
//!
//! These run real threads on the live side; margins follow the live
//! crate's e2e test (structural contrast far above scheduler noise).
//!
//! On failure, each test dumps both decision traces to
//! `$DIFFERENTIAL_OUT/<family>.txt` (if the env var is set) so CI can
//! upload the disagreement as an artifact.
//!
//! [`ScenarioDescriptor`]: atropos_substrate::ScenarioDescriptor

use atropos_chaos::differential::{compare, live_trace_for, sim_trace_for, DecisionTrace};
use atropos_substrate::ScenarioFamily;

fn differential(family: ScenarioFamily) {
    let sim = sim_trace_for(family);
    let live = live_trace_for(family);
    if let Err(e) = compare(&sim, &live) {
        dump_artifact(family, &sim, &live, &e);
        panic!("decision traces disagree: {e}\n  sim: {sim:?}\n  live: {live:?}");
    }
}

/// Writes the disagreeing traces where CI can pick them up. Best-effort:
/// artifact trouble must never mask the real failure.
fn dump_artifact(family: ScenarioFamily, sim: &DecisionTrace, live: &DecisionTrace, err: &str) {
    let Ok(dir) = std::env::var("DIFFERENTIAL_OUT") else {
        return;
    };
    let _ = std::fs::create_dir_all(&dir);
    let body = format!(
        "family: {}\ndescriptor: {:?}\nerror: {err}\nsim: {sim:?}\nlive: {live:?}\n",
        family.name(),
        family.descriptor(),
    );
    let _ = std::fs::write(format!("{dir}/{}.txt", family.name()), body);
}

#[test]
fn sim_and_live_agree_on_the_lock_hog_culprit() {
    differential(ScenarioFamily::LockHog);
}

#[test]
fn sim_and_live_agree_on_the_buffer_scan_culprit() {
    differential(ScenarioFamily::BufferScan);
}

#[test]
fn sim_and_live_agree_on_the_ticket_queue_culprit() {
    differential(ScenarioFamily::TicketQueue);
}
