//! Injector-as-middleware parity: the [`FaultInjector`]'s `RuntimePort`
//! implementation must be indistinguishable from its inherent API.
//!
//! The refactor that made the injector composable middleware
//! ([`FaultInjector::over`] + `impl RuntimePort for FaultInjector`) must
//! not open a second code path around the fault machinery: a substrate
//! emitting through `Arc<dyn RuntimePort>` has to hit exactly the same
//! drop/dup/delay/reorder/fail-cancel decisions, in the same RNG-stream
//! order, as a harness calling the inherent methods. These tests pin that
//! down three ways:
//!
//! 1. one scripted protocol run, written twice (inherent vs trait
//!    dispatch), compared on the delivered-cancel ledger, the full ground
//!    truth, and the per-tick I1–I7 invariant outcomes;
//! 2. the injector stacked *over* another middleware layer
//!    ([`ProbePort`]), proving the documented app → injector → recorder →
//!    runtime order composes and that the probe sees post-fault traffic;
//! 3. a live end-to-end run where a `FailCancel` fault injected via
//!    [`run_with`] survives into the harness report as `cancels_failed`
//!    and an un-canceled culprit.

use std::sync::Arc;

use atropos::{AtroposConfig, AtroposRuntime, ResourceType, TaskKey};
use atropos_chaos::{Fault, FaultInjector, FaultPlan, InvariantChecker, Truth};
use atropos_live::{live_atropos_config, run_with, ControlMode, LiveConfig};
use atropos_sim::{Clock, SimTime, VirtualClock};
use atropos_substrate::{CancelInitiator, ProbePort, RuntimePort};
use parking_lot::Mutex;

/// Initiator that records every delivered cancel key, in order.
#[derive(Default)]
struct Collect(Mutex<Vec<u64>>);

impl CancelInitiator for Collect {
    fn cancel(&self, key: TaskKey) {
        self.0.lock().push(key.0);
    }
}

/// Order-independent digest of the injector's ground truth (the per-map
/// iterates in hash order, so entries are sorted before comparing).
fn truth_digest(truth: &Truth) -> String {
    let mut per: Vec<String> = truth
        .per
        .iter()
        .map(|(k, v)| format!("{k:?}={v:?}"))
        .collect();
    per.sort();
    let mut finished: Vec<u64> = truth.finished_keys.iter().copied().collect();
    finished.sort_unstable();
    format!(
        "per={per:?} finished={finished:?} cancels={:?} log={:?}",
        truth.cancel_log, truth.log
    )
}

/// Everything one scripted run produced, for whole-run equality.
type RunTrace = (Vec<u64>, Vec<Option<String>>, String);

fn fresh_runtime() -> (Arc<VirtualClock>, Arc<AtroposRuntime>) {
    let clock = Arc::new(VirtualClock::new());
    let rt = Arc::new(AtroposRuntime::new(
        AtroposConfig::default(),
        clock.clone() as Arc<dyn Clock>,
    ));
    (clock, rt)
}

// The two drivers below run the SAME script and must stay line-for-line
// parallel: 60 tasks over one lock, every third get un-freed, a manual
// cancel every 7th task while its key is live, a tick (plus invariant
// check) every 10th iteration. Only the call syntax differs.

fn run_inherent(seed: u64) -> RunTrace {
    let plan = FaultPlan::sample(seed);
    let (clock, rt) = fresh_runtime();
    let inj = FaultInjector::new(rt.clone(), &plan);
    let delivered = Arc::new(Mutex::new(Vec::new()));
    let sink = delivered.clone();
    inj.install_initiator(move |k| sink.lock().push(k));
    let rid = rt.register_resource("r", ResourceType::Lock);
    let mut checker = InvariantChecker::new();
    let mut invariants = Vec::new();
    for i in 0..60u64 {
        let key = 100 + i;
        let t = inj.create_cancel(Some(key));
        inj.unit_started(t);
        inj.get_resource(t, rid, 1 + i % 3);
        inj.slow_by_resource(t, rid, 1 + i % 2);
        if i % 4 != 0 {
            inj.free_resource(t, rid, 1 + i % 3);
        }
        if i % 7 == 3 {
            rt.cancel_key(TaskKey(key));
        }
        inj.unit_finished(t);
        if i % 5 != 4 {
            inj.free_cancel(t);
        }
        clock.advance_to(SimTime::from_millis(50 * (i + 1)));
        if i % 10 == 9 {
            inj.tick();
            let res = checker.after_tick(&rt, &inj.truth());
            invariants.push(res.err().map(|v| v.to_string()));
        }
    }
    let trace = delivered.lock().clone();
    (trace, invariants, truth_digest(&inj.truth()))
}

fn run_trait(seed: u64) -> RunTrace {
    let plan = FaultPlan::sample(seed);
    let (clock, rt) = fresh_runtime();
    let inj = Arc::new(FaultInjector::over(
        rt.clone() as Arc<dyn RuntimePort>,
        &plan,
    ));
    let port: Arc<dyn RuntimePort> = inj.clone();
    let delivered = Arc::new(Collect::default());
    port.install_initiator(delivered.clone());
    let rid = port.register_resource("r", ResourceType::Lock);
    let mut checker = InvariantChecker::new();
    let mut invariants = Vec::new();
    for i in 0..60u64 {
        let key = 100 + i;
        let t = port.create_cancel(Some(key));
        port.unit_started(t);
        port.get(t, rid, 1 + i % 3);
        port.slow_by(t, rid, 1 + i % 2);
        if i % 4 != 0 {
            port.free(t, rid, 1 + i % 3);
        }
        if i % 7 == 3 {
            rt.cancel_key(TaskKey(key));
        }
        let _ = port.unit_finished(t);
        if i % 5 != 4 {
            port.free_cancel(t);
        }
        clock.advance_to(SimTime::from_millis(50 * (i + 1)));
        if i % 10 == 9 {
            port.tick();
            let res = checker.after_tick(&rt, &inj.truth());
            invariants.push(res.err().map(|v| v.to_string()));
        }
    }
    let trace = delivered.0.lock().clone();
    (trace, invariants, truth_digest(&inj.truth()))
}

#[test]
fn trait_dispatch_matches_inherent_api_bit_for_bit() {
    for seed in [3u64, 77, 4242] {
        let inherent = run_inherent(seed);
        let ported = run_trait(seed);
        assert_eq!(
            inherent, ported,
            "middleware dispatch diverged from the inherent API under seed {seed}"
        );
    }
}

/// A sampled plan actually fires faults under this script (otherwise the
/// parity above is vacuous pass-through equality).
#[test]
fn parity_script_exercises_the_fault_machinery() {
    let fired = [3u64, 77, 4242].iter().any(|&seed| {
        let plan = FaultPlan::sample(seed);
        let (clock, rt) = fresh_runtime();
        let inj = FaultInjector::new(rt, &plan);
        inj.install_initiator(|_| {});
        let rid = inj.runtime().register_resource("r", ResourceType::Lock);
        for i in 0..60u64 {
            let t = inj.create_cancel(Some(100 + i));
            inj.unit_started(t);
            inj.get_resource(t, rid, 1 + i % 3);
            inj.free_resource(t, rid, 1 + i % 3);
            inj.free_cancel(t);
            clock.advance_to(SimTime::from_millis(50 * (i + 1)));
            if i % 10 == 9 {
                inj.tick();
            }
        }
        inj.injection_log().any()
    });
    assert!(
        fired,
        "no sampled seed fired a single fault — script too tame"
    );
}

#[test]
fn injector_stacks_over_other_middleware() {
    let (clock, rt) = fresh_runtime();
    let probe = Arc::new(ProbePort::new(rt.clone()));
    let plan = FaultPlan {
        seed: 5,
        faults: vec![Fault::DropFree {
            probability: 1.0,
            budget: 1,
        }],
    };
    // Documented stacking order: app → injector → probe ("recorder") →
    // runtime. The probe must see only what the injector lets through.
    let inj = FaultInjector::over(probe.clone() as Arc<dyn RuntimePort>, &plan);
    let rid = inj.register_resource("r", ResourceType::Memory);
    let t = FaultInjector::create_cancel(&inj, Some(1));
    inj.unit_started(t);
    inj.get(t, rid, 4);
    inj.free(t, rid, 4); // dropped (budget 1)
    inj.free(t, rid, 2); // budget exhausted: delivered
    clock.advance_to(SimTime::from_millis(100));
    RuntimePort::tick(&inj);
    let counts = probe.counts();
    assert_eq!(counts.gets, 1);
    assert_eq!(
        counts.frees, 1,
        "the dropped free must never reach the next layer"
    );
    assert_eq!(counts.ticks, 1);
    let snap = rt.debug_snapshot();
    let u = &snap.task_by_key(TaskKey(1)).expect("task live").usage[rid.index()];
    assert_eq!(
        (u.acquired, u.freed, u.held),
        (4, 2, 2),
        "runtime view must reflect the post-fault stream"
    );
    assert_eq!(inj.injection_log().frees_dropped, 1);
}

/// Live end-to-end: a `FailCancel` plan stacked over the wall-clock
/// harness via [`run_with`] swallows every issued cancellation, so the
/// culprit runs un-canceled and the loss surfaces in the report as
/// `cancels_failed` — the fault ledger and the harness observability
/// agree on what was lost.
#[test]
fn live_fail_cancel_fault_surfaces_in_cancels_failed() {
    let plan = FaultPlan {
        seed: 11,
        faults: vec![Fault::FailCancel { budget: 1_000_000 }],
    };
    let stash: Arc<Mutex<Option<Arc<FaultInjector>>>> = Arc::new(Mutex::new(None));
    let keep = stash.clone();
    let report = run_with(
        LiveConfig::default(),
        ControlMode::Atropos(live_atropos_config()),
        move |port| {
            let inj = Arc::new(FaultInjector::over(port, &plan));
            *keep.lock() = Some(inj.clone());
            inj
        },
    );
    let inj = stash.lock().take().expect("wrap hook ran");
    let log = inj.injection_log();
    assert!(
        log.cancels_failed >= 1,
        "no cancellation reached the injector to swallow: {log:?}"
    );
    assert_eq!(
        report.cancellations_delivered, 0,
        "FailCancel must starve the token registry"
    );
    assert_eq!(
        report.culprits_canceled, 0,
        "a swallowed cancellation must not unwind the culprit"
    );
    assert!(
        report.metrics.cancels_failed >= 1,
        "issued-but-undelivered cancels missing from the metrics snapshot: {:?}",
        report.metrics
    );
    assert!(report.ticks > 0, "supervisor never ticked");
}
