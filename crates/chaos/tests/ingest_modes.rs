//! Cross-mode runtime equivalence over the chaos scenario corpus.
//!
//! Every scripted scenario runs on a virtual clock with deterministic
//! seeds, so two runs that differ only in [`IngestMode`] must be
//! **bit-identical** in everything the application can observe: the
//! cancellations issued and delivered (and their order), the tick and
//! candidate counts, the invariant verdict, the decision episodes folded
//! from the flight recorder, and the final runtime snapshot's counters.
//! This is the whole-corpus extension of the scripted equivalence tests
//! in `atropos::runtime` — if the lock-free epoch drain reordered,
//! dropped, or duplicated a single record anywhere in these runs, some
//! fingerprint below would diverge.
//!
//! The only normalization allowed: `Direct` applies events inline and so
//! never counts a mid-window flush; the buffered modes must agree with
//! each other on that counter exactly.

use atropos::IngestMode;
use atropos_chaos::{run_scenario_with_ingest, FaultPlan, ScenarioKind, ScenarioOutcome};

/// Everything the application can observe from one run, in a comparable
/// form. `mid_window_flushes` is carried separately so the Direct
/// comparison can normalize it (and *only* it).
#[derive(Debug, PartialEq)]
struct Fingerprint {
    canceled_keys: Vec<u64>,
    issued_keys: Vec<u64>,
    hog_canceled: bool,
    victim_canceled: bool,
    ticks: u64,
    candidates: u64,
    violation: Option<String>,
    stats: String,
    mid_window_flushes: u64,
    tasks: String,
    episodes: String,
}

fn fingerprint(out: &ScenarioOutcome) -> Fingerprint {
    let mut stats = out.final_snapshot.stats;
    let mid_window_flushes = stats.mid_window_flushes;
    stats.mid_window_flushes = 0;
    Fingerprint {
        canceled_keys: out.canceled_keys.clone(),
        issued_keys: out.issued_keys.clone(),
        hog_canceled: out.hog_canceled,
        victim_canceled: out.victim_canceled,
        ticks: out.ticks,
        candidates: out.candidates,
        violation: out.violation.as_ref().map(|v| format!("{v:?}")),
        stats: format!("{stats:?}"),
        mid_window_flushes,
        tasks: format!("{:?}", out.final_snapshot.tasks),
        episodes: format!("{:?}", out.episodes),
    }
}

/// Runs one (scenario, plan, load) cell under all three ingest modes and
/// demands identical fingerprints: LockFree vs Direct (normalizing only
/// the flush counter, which Direct cannot have) and LockFree vs Sharded
/// (including the flush counter — both buffer at the same geometry).
fn modes_agree(kind: ScenarioKind, plan: &FaultPlan, load: u64) {
    let direct = fingerprint(&run_scenario_with_ingest(
        kind,
        plan,
        load,
        IngestMode::Direct,
    ));
    let sharded = fingerprint(&run_scenario_with_ingest(
        kind,
        plan,
        load,
        IngestMode::Sharded,
    ));
    let lockfree = fingerprint(&run_scenario_with_ingest(
        kind,
        plan,
        load,
        IngestMode::LockFree,
    ));

    assert_eq!(
        lockfree, sharded,
        "{kind:?}: LockFree diverged from the Sharded oracle"
    );
    let mut normalized = lockfree;
    normalized.mid_window_flushes = direct.mid_window_flushes;
    assert_eq!(
        normalized, direct,
        "{kind:?}: buffered ingest diverged from Direct beyond the flush counter"
    );
}

const KINDS: [ScenarioKind; 3] = [
    ScenarioKind::LockHog,
    ScenarioKind::BufferScan,
    ScenarioKind::TicketQueue,
];

/// The healthy corpus: every scenario kind under quiet plans and two
/// load scales.
#[test]
fn ingest_modes_agree_on_quiet_corpus() {
    for kind in KINDS {
        for seed in [1u64, 7] {
            modes_agree(kind, &FaultPlan::quiet(seed), 1);
        }
        modes_agree(kind, &FaultPlan::quiet(3), 2);
    }
}

/// The faulted corpus: armed plans fire delay/fail/skew faults mid-run;
/// whatever the injected chaos does to the outcome, it must do it
/// identically under every ingest mode.
#[test]
fn ingest_modes_agree_under_armed_fault_plans() {
    for kind in KINDS {
        for seed in [11u64, 42] {
            modes_agree(kind, &FaultPlan::sample(seed), 1);
        }
    }
}
