//! The chaos invariant suite: every runtime-wide invariant holds across
//! hundreds of seeded, shrinkable fault plans per scenario.
//!
//! Any failure here prints the seed and a minimized fault plan (via
//! [`atropos_chaos::FailureReport`]) that reproduces it, replayable with
//! the `chaos` binary.

use atropos_chaos::{
    check_detector_monotonicity, run_checked, run_scenario, Fault, FaultPlan, InvariantChecker,
    ScenarioKind, HOG_KEY,
};
use proptest::prelude::*;

/// 128 sampled plans per scenario (> the 100 the acceptance bar asks
/// for), each fully invariant-checked after every tick.
fn soak(kind: ScenarioKind) {
    for seed in 0..128u64 {
        if let Err(report) = run_checked(kind, &FaultPlan::sample(seed), 1) {
            panic!("{report}");
        }
    }
}

#[test]
fn invariants_hold_across_128_fault_plans_lock_hog() {
    soak(ScenarioKind::LockHog);
}

#[test]
fn invariants_hold_across_128_fault_plans_buffer_scan() {
    soak(ScenarioKind::BufferScan);
}

proptest! {
    /// Property form over the full seed space: any sampled plan keeps
    /// every invariant, in both scenarios.
    #[test]
    fn invariants_hold_for_sampled_plans(seed in any::<u64>()) {
        for kind in ScenarioKind::ALL {
            if let Err(report) = run_checked(kind, &FaultPlan::sample(seed), 1) {
                panic!("{report}");
            }
        }
    }

    /// Heavier load never hides an overload: same script, same seed,
    /// double arrivals — the detector must flag at least as many
    /// candidates (cancellation suppressed so both runs stay overloaded
    /// the whole time).
    #[test]
    fn detector_is_monotone_under_added_load(seed in 0u64..1024) {
        let plan = FaultPlan {
            seed,
            faults: vec![Fault::FailCancel { budget: u64::MAX }],
        };
        let base = run_scenario(ScenarioKind::LockHog, &plan, 1);
        let loaded = run_scenario(ScenarioKind::LockHog, &plan, 2);
        prop_assert!(base.violation.is_none(), "base: {:?}", base.violation);
        prop_assert!(loaded.violation.is_none(), "loaded: {:?}", loaded.violation);
        if let Err(v) =
            check_detector_monotonicity(&base.final_snapshot, &loaded.final_snapshot)
        {
            panic!("seed {seed}: {v}");
        }
    }
}

#[test]
fn swallowed_cancellations_leave_the_convoy_standing_but_invariants_hold() {
    let plan = FaultPlan {
        seed: 7,
        faults: vec![Fault::FailCancel { budget: u64::MAX }],
    };
    let out = run_checked(ScenarioKind::LockHog, &plan, 1).unwrap_or_else(|r| panic!("{r}"));
    assert!(
        !out.hog_canceled,
        "initiator failure must suppress delivery"
    );
    assert!(
        out.issued_keys.contains(&HOG_KEY),
        "runtime still issues the cancellation: {:?}",
        out.issued_keys
    );
    assert!(
        out.candidates >= 5,
        "unresolved convoy must keep flagging candidates, got {}",
        out.candidates
    );
}

#[test]
fn delayed_cancellation_arrives_late_but_still_lands_on_the_hog() {
    let plan = FaultPlan {
        seed: 7,
        faults: vec![Fault::DelayCancel { ticks: 2 }],
    };
    let out = run_checked(ScenarioKind::LockHog, &plan, 1).unwrap_or_else(|r| panic!("{r}"));
    assert!(out.hog_canceled, "delayed cancel never delivered: {out:?}");
    assert!(!out.victim_canceled, "victim canceled: {out:?}");
}

#[test]
fn checker_catches_a_lying_transport() {
    // Meta-test: the invariants must be falsifiable. Bypass the injector
    // for one event — the runtime now "knows" more than was delivered —
    // and I1 must fire.
    use atropos::{AtroposConfig, AtroposRuntime, ResourceType};
    use atropos_chaos::FaultInjector;
    use atropos_sim::{Clock, SimTime, VirtualClock};
    use std::sync::Arc;

    let clock = Arc::new(VirtualClock::new());
    let rt = Arc::new(AtroposRuntime::new(
        AtroposConfig::default(),
        clock.clone() as Arc<dyn Clock>,
    ));
    let inj = FaultInjector::new(rt.clone(), &FaultPlan::quiet(1));
    let rid = rt.register_resource("r", ResourceType::Memory);
    let t = inj.create_cancel(Some(10));
    inj.unit_started(t);
    inj.get_resource(t, rid, 3);
    rt.get_resource(t, rid, 2); // smuggled past the injector
    clock.advance_to(SimTime::from_millis(100));
    inj.tick();
    let mut checker = InvariantChecker::new();
    let err = checker
        .after_tick(&rt, &inj.truth())
        .expect_err("checker must notice the smuggled event");
    assert_eq!(err.invariant, "I1", "{err}");
}

#[test]
fn flight_recorder_accounts_for_swallowed_cancellations() {
    // With the initiator swallowing every cancellation, the observer's
    // issued-minus-delivered gap must equal the injector's own ledger of
    // swallowed cancels — the metrics registry detects the lossy
    // transport without being told about it.
    let plan = FaultPlan {
        seed: 7,
        faults: vec![Fault::FailCancel { budget: u64::MAX }],
    };
    let out = run_checked(ScenarioKind::LockHog, &plan, 1).unwrap_or_else(|r| panic!("{r}"));
    assert!(out.injection.cancels_failed >= 1, "fault never fired");
    assert_eq!(
        out.metrics.cancels_failed, out.injection.cancels_failed,
        "observer cancels_failed disagrees with the injector ledger: {:?}",
        out.metrics
    );
    assert!(out.metrics.consistency_errors().is_empty());
}

#[test]
fn flight_recorder_counts_delayed_cancellations_until_delivered() {
    // Delayed cancellations eventually land, so the observer's failure
    // gap only covers those still in flight at run end: it is bounded
    // below by the injector's swallowed count (0 here) and above by the
    // delayed count.
    let plan = FaultPlan {
        seed: 7,
        faults: vec![Fault::DelayCancel { ticks: 2 }],
    };
    let out = run_checked(ScenarioKind::LockHog, &plan, 1).unwrap_or_else(|r| panic!("{r}"));
    assert!(out.injection.cancels_delayed >= 1, "fault never fired");
    assert_eq!(out.injection.cancels_failed, 0);
    assert!(
        out.metrics.cancels_failed <= out.injection.cancels_delayed,
        "gap {} exceeds delayed count {}",
        out.metrics.cancels_failed,
        out.injection.cancels_delayed
    );
}

#[test]
fn episode_coverage_is_falsifiable() {
    // Meta-test for I8, mirroring `checker_catches_a_lying_transport`:
    // a run that issued cancellations but recorded no episodes must be
    // flagged, and the violation must name I8.
    use atropos_chaos::check_episode_coverage;

    let out = run_checked(ScenarioKind::LockHog, &FaultPlan::quiet(1), 1)
        .unwrap_or_else(|r| panic!("{r}"));
    assert!(!out.issued_keys.is_empty(), "quiet run issued no cancels");
    // The real run passes I8 (run_checked already enforced it); an empty
    // episode log must fail it.
    let plan = FaultPlan::quiet(1);
    let truth_run = atropos_chaos::run_scenario(ScenarioKind::LockHog, &plan, 1);
    assert!(truth_run.violation.is_none());
    let err = check_episode_coverage(&truth_from(&truth_run), &[]);
    let err = err.expect_err("empty episode log must violate I8");
    assert_eq!(err.invariant, "I8", "{err}");
}

/// Rebuilds a minimal `Truth` carrying just the cancel log of a finished
/// run (the checker only reads `cancel_log` for I8).
fn truth_from(out: &atropos_chaos::ScenarioOutcome) -> atropos_chaos::Truth {
    let mut truth = atropos_chaos::Truth::default();
    for (i, key) in out.issued_keys.iter().enumerate() {
        truth.cancel_log.push(atropos_chaos::CancelObservation {
            key: *key,
            tick: i as u64,
            was_finished: false,
        });
    }
    truth
}

#[test]
fn failure_reports_carry_seed_and_minimized_plan() {
    // Drive the real minimization path with a predicate-style harness:
    // sample a big plan, minimize against "still contains a DelayCancel",
    // and confirm the rendered report style (seed + JSON plan) holds.
    let plan = FaultPlan {
        seed: 99,
        faults: vec![
            Fault::DropFree {
                probability: 0.3,
                budget: 6,
            },
            Fault::DelayCancel { ticks: 3 },
            Fault::SkewTick {
                max_skew_ns: 16_000_000,
            },
        ],
    };
    let min = plan.clone().minimize(|p| {
        p.faults
            .iter()
            .any(|f| matches!(f, Fault::DelayCancel { .. }))
    });
    assert_eq!(min.faults.len(), 1);
    let rendered = min.to_string();
    assert!(rendered.contains("\"seed\":99"), "{rendered}");
    assert!(rendered.contains("delay_cancel"), "{rendered}");
}
