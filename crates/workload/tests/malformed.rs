//! Malformed descriptors must be rejected loudly — with the source name,
//! the offending line, and (when identifiable) the field — never silently
//! defaulted around. The property tests mutate the real checked-in corpus
//! so every stanza shape the repo actually uses is covered.

use atropos_workload::{WorkloadDescriptor, CORPUS};
use proptest::prelude::*;

/// 1-based line numbers of every `key = value` line in `text`, with the key.
fn key_lines(text: &str) -> Vec<(usize, String)> {
    text.lines()
        .enumerate()
        .filter_map(|(i, line)| {
            let trimmed = line.trim_start();
            if trimmed.starts_with('#') || trimmed.starts_with('[') {
                return None;
            }
            let key: String = trimmed
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            let rest = trimmed[key.len()..].trim_start();
            (!key.is_empty() && rest.starts_with('=')).then(|| (i + 1, key))
        })
        .collect()
}

/// Renames the key on 1-based line `line` to `new_key`.
fn rename_key(text: &str, line: usize, new_key: &str) -> String {
    text.lines()
        .enumerate()
        .map(|(i, l)| {
            if i + 1 == line {
                let indent: String = l.chars().take_while(|c| c.is_whitespace()).collect();
                let trimmed = l.trim_start();
                let old: String = trimmed
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                format!("{indent}{new_key}{}", &trimmed[old.len()..])
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    /// Renaming any key in any checked-in descriptor to something unknown
    /// makes the parse fail, and the error names the source, a line, and
    /// a field — the fail-loud contract.
    #[test]
    fn unknown_or_missing_key_is_rejected_with_position(pick in 0u64..10_000, which in 0u64..10_000) {
        let (name, text) = CORPUS[(pick as usize) % CORPUS.len()];
        let keys = key_lines(text);
        prop_assert!(!keys.is_empty(), "descriptor `{name}` has no key lines");
        let (line, key) = &keys[(which as usize) % keys.len()];
        let mutated = rename_key(text, *line, &format!("zz_{key}"));
        let err = WorkloadDescriptor::parse(name, &mutated)
            .expect_err("a renamed key must not parse");
        // Either `zz_<key>` is flagged as unknown, or the original key is
        // flagged as missing; both must carry a position and a field.
        prop_assert_eq!(&err.source, name);
        prop_assert!(err.line > 0, "error has no line: {err}");
        let field = err.field.clone().unwrap_or_default();
        prop_assert!(
            field == format!("zz_{key}") || field == *key,
            "error field `{field}` names neither the mutated nor the original key: {err}"
        );
    }

    /// Replacing any numeric value with a string makes the parse fail
    /// with the field named (type errors are never coerced).
    #[test]
    fn type_confusion_is_rejected(pick in 0u64..10_000, which in 0u64..10_000) {
        let (name, text) = CORPUS[(pick as usize) % CORPUS.len()];
        let numeric: Vec<(usize, String)> = key_lines(text)
            .into_iter()
            .filter(|(line, _)| {
                let l = text.lines().nth(line - 1).unwrap();
                let val = l.split('=').nth(1).unwrap_or("").trim();
                val.chars().next().is_some_and(|c| c.is_ascii_digit())
            })
            .collect();
        prop_assert!(!numeric.is_empty(), "descriptor `{name}` has no numeric keys");
        let (line, key) = &numeric[(which as usize) % numeric.len()];
        let mutated: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i + 1 == *line {
                    format!("{key} = \"bogus\"")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = WorkloadDescriptor::parse(name, &mutated)
            .expect_err("a string where a number belongs must not parse");
        prop_assert_eq!(&err.source, name);
        prop_assert!(err.line > 0, "error has no line: {err}");
        prop_assert!(err.field.is_some(), "error has no field: {err}");
    }
}

#[test]
fn unknown_stanza_is_rejected() {
    let (name, text) = CORPUS[0];
    let mutated = format!("{text}\n[bogus]\nx = 1\n");
    let err = WorkloadDescriptor::parse(name, &mutated).expect_err("unknown stanza");
    assert!(err.line > 0);
    assert!(
        err.to_string().contains("bogus"),
        "error does not name the stanza: {err}"
    );
}

#[test]
fn degenerate_ramps_are_rejected() {
    let base = "\
substrates = [\"sim\"]

[case]
id = \"c2tq\"
app = \"minidb\"
display_app = \"MySQL\"
resource_type = \"Thread pool\"
resource = \"InnoDB queue\"
trigger = \"test fixture\"
base_qps = 1000.0

[[class]]
kind = \"point_select\"
weight = 1.0
";
    for (ramp, offender) in [
        ("initial_rps = 0.0\nincrement_rps = 100.0\nmax_rps = 200.0\nstep_ms = 100\nwarmup_ms = 0", "initial_rps"),
        ("initial_rps = 100.0\nincrement_rps = 0.0\nmax_rps = 200.0\nstep_ms = 100\nwarmup_ms = 0", "increment_rps"),
        ("initial_rps = 100.0\nincrement_rps = 50.0\nmax_rps = 50.0\nstep_ms = 100\nwarmup_ms = 0", "max_rps"),
        ("initial_rps = 100.0\nincrement_rps = 50.0\nmax_rps = 200.0\nstep_ms = 0\nwarmup_ms = 0", "step_ms"),
    ] {
        let text = format!("{base}\n[ramp]\n{ramp}\n");
        let err = match WorkloadDescriptor::parse("degenerate", &text) {
            Err(e) => e,
            Ok(_) => panic!("ramp with bad {offender} parsed"),
        };
        assert_eq!(
            err.field.as_deref(),
            Some(offender),
            "wrong field blamed: {err}"
        );
        assert!(err.line > 0, "error has no line: {err}");
    }
}

#[test]
fn ramp_without_matching_stanza_is_rejected() {
    // A ramp that sweeps the sim substrate needs a [case]; one that
    // sweeps a wall-clock substrate needs a [scenario].
    let text = "\
substrates = [\"sim\"]

[ramp]
initial_rps = 100.0
increment_rps = 100.0
max_rps = 200.0
step_ms = 100
warmup_ms = 0
";
    let err = WorkloadDescriptor::parse("rampless", text).expect_err("no [case]");
    assert!(
        err.to_string().contains("[case]"),
        "error does not explain the missing stanza: {err}"
    );
}
