//! `atropos-workload` — declarative workload descriptors.
//!
//! Before this crate, the repository's overload workloads were hand-coded
//! four separate times: the 16 Table 2 cases in `scenarios::cases`, the
//! pinned `ScenarioDescriptor` literals in the chaos differential, the
//! `live`/`async-live` harness configs, and the `fed` topologies. A
//! geometry tweak in one place could silently desynchronize the others —
//! exactly the class of bug the sim↔live differential exists to catch,
//! except the bug would be in the *inputs*.
//!
//! This crate replaces all of that with one declarative layer:
//!
//! - [`toml`] — a dependency-free parser for the TOML subset the
//!   descriptor files use (the environment vendors no external crates);
//! - [`descriptor`] — the typed schema ([`WorkloadDescriptor`]) with
//!   strict validation: unknown keys, missing stanzas and bad ramps are
//!   rejected with the offending line and field;
//! - [`corpus`] — the checked-in descriptor files, embedded and parsed
//!   once, that every substrate resolves its workloads from.
//!
//! The descriptor format follows the IC scalability-suite shape: a
//! `[case]` stanza declares a request-class mix plus culprit-injection
//! schedules, a `[scenario]` stanza declares wall-clock geometry, and a
//! `[ramp]` stanza (`initial_rps`/`increment_rps`/`max_rps`) declares the
//! offered-load sweep the `capacity` binary executes (DESIGN.md §17).

pub mod corpus;
pub mod descriptor;
pub mod toml;

pub use corpus::{
    all_case_descriptors, all_descriptors, capacity_descriptor, chaos_ticket_queue, descriptor,
    family_descriptor, fed_live_spec, fed_topology, CORPUS,
};
pub use descriptor::{
    class_signature, AppKind, BackgroundDecl, CaseDescriptor, ClassDecl, ClassParams, FedLiveSpec,
    FedTopology, InjectDecl, RampSpec, SloSpec, SubstrateSel, WorkloadDescriptor,
};
pub use toml::ParseError;
