//! The descriptor schema: typed stanzas over the parsed TOML document,
//! with strict validation.
//!
//! A descriptor file declares *what the workload is* — request-class
//! mixes, resource geometry, culprit-injection schedules, an offered-load
//! ramp — and every substrate (sim cases, the scripted chaos scenarios,
//! the live/async harnesses, the federation topologies, the capacity
//! sweep) interprets the same file. Because four substrates trust these
//! numbers, validation is deliberately unforgiving: unknown keys, missing
//! stanzas, out-of-range ramps and malformed class declarations are all
//! rejected with the offending line and field, never defaulted around.

use std::collections::HashSet;

use atropos_substrate::{ScenarioDescriptor, ScenarioFamily};

use crate::toml::{self, Document, Entry, ParseError, Table, Value};

/// Which simulated application a `[case]` stanza instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// `atropos_app::apps::minidb` (the MySQL/PostgreSQL-like engine).
    MiniDb,
    /// `atropos_app::apps::webserver` (the Apache-like worker pool).
    WebServer,
    /// `atropos_app::apps::search` (the Elasticsearch/Solr-like engine).
    Search,
    /// `atropos_app::apps::kvstore` (the etcd-like store).
    KvStore,
}

impl AppKind {
    /// Stable name used in descriptor files.
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::MiniDb => "minidb",
            AppKind::WebServer => "webserver",
            AppKind::Search => "search",
            AppKind::KvStore => "kvstore",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "minidb" => Some(AppKind::MiniDb),
            "webserver" => Some(AppKind::WebServer),
            "search" => Some(AppKind::Search),
            "kvstore" => Some(AppKind::KvStore),
            _ => None,
        }
    }
}

/// A substrate a descriptor's ramp can be executed against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubstrateSel {
    /// The discrete-event simulator (`atropos-scenarios`).
    Sim,
    /// The wall-clock thread harness (`atropos-live`).
    Thread,
    /// The hand-rolled async executor (`atropos-async`).
    Async,
}

impl SubstrateSel {
    /// Stable name used in descriptor files and `BENCH_capacity.json`.
    pub fn name(&self) -> &'static str {
        match self {
            SubstrateSel::Sim => "sim",
            SubstrateSel::Thread => "thread",
            SubstrateSel::Async => "async",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "sim" => Some(SubstrateSel::Sim),
            "thread" => Some(SubstrateSel::Thread),
            "async" => Some(SubstrateSel::Async),
            _ => None,
        }
    }
}

/// Numeric plan parameters a `[[class]]` stanza may carry. Which of them
/// are *required* (and which forbidden) depends on the class kind — see
/// [`class_signature`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassParams {
    /// `table_scan` scan duration.
    pub duration_ns: Option<u64>,
    /// Fixed service time (`slow_query`, `long_query`, `nested_range`).
    pub ns: Option<u64>,
    /// Resource hold time (`select_for_update`, `bulk_write`, `purge`,
    /// `big_update`, `complex_boolean`, `range_read`).
    pub hold_ns: Option<u64>,
    /// `wal_writer` flush time.
    pub flush_ns: Option<u64>,
    /// `backup` per-table copy time.
    pub copy_ns_per_table: Option<u64>,
    /// `dump` page count.
    pub pages: Option<u64>,
    /// `big_search` entry count.
    pub entries: Option<u64>,
    /// `nested_agg` allocation total.
    pub total_bytes: Option<u64>,
    /// `nested_agg` step count.
    pub steps: Option<u64>,
    /// `vacuum` IO chunk count.
    pub io_chunks: Option<u64>,
    /// `vacuum` per-chunk time.
    pub chunk_ns: Option<u64>,
    /// `select_with_io` IO time.
    pub io_ns: Option<u64>,
    /// `slow_script` script time.
    pub script_ns: Option<u64>,
}

/// Every parameter key [`ClassParams`] can hold, in stanza order.
pub const PARAM_KEYS: [&str; 13] = [
    "duration_ns",
    "ns",
    "hold_ns",
    "flush_ns",
    "copy_ns_per_table",
    "pages",
    "entries",
    "total_bytes",
    "steps",
    "io_chunks",
    "chunk_ns",
    "io_ns",
    "script_ns",
];

impl ClassParams {
    fn get(&self, key: &str) -> Option<u64> {
        match key {
            "duration_ns" => self.duration_ns,
            "ns" => self.ns,
            "hold_ns" => self.hold_ns,
            "flush_ns" => self.flush_ns,
            "copy_ns_per_table" => self.copy_ns_per_table,
            "pages" => self.pages,
            "entries" => self.entries,
            "total_bytes" => self.total_bytes,
            "steps" => self.steps,
            "io_chunks" => self.io_chunks,
            "chunk_ns" => self.chunk_ns,
            "io_ns" => self.io_ns,
            "script_ns" => self.script_ns,
            _ => None,
        }
    }

    /// The required parameter, which validation guarantees is present.
    ///
    /// # Panics
    ///
    /// Panics if the parameter was not validated in — interpreters only
    /// call this for keys named by the class's [`class_signature`].
    pub fn expect(&self, key: &str) -> u64 {
        self.get(key)
            .unwrap_or_else(|| panic!("validated descriptor is missing param `{key}`"))
    }

    fn set(&mut self, key: &str, v: u64) {
        match key {
            "duration_ns" => self.duration_ns = Some(v),
            "ns" => self.ns = Some(v),
            "hold_ns" => self.hold_ns = Some(v),
            "flush_ns" => self.flush_ns = Some(v),
            "copy_ns_per_table" => self.copy_ns_per_table = Some(v),
            "pages" => self.pages = Some(v),
            "entries" => self.entries = Some(v),
            "total_bytes" => self.total_bytes = Some(v),
            "steps" => self.steps = Some(v),
            "io_chunks" => self.io_chunks = Some(v),
            "chunk_ns" => self.chunk_ns = Some(v),
            "io_ns" => self.io_ns = Some(v),
            "script_ns" => self.script_ns = Some(v),
            _ => unreachable!("unknown param key `{key}` passed validation"),
        }
    }
}

/// The signature of a class kind: whether its constructor takes a mix
/// weight, and which [`ClassParams`] keys it requires. `None` means the
/// kind does not exist on that app.
pub fn class_signature(app: AppKind, kind: &str) -> Option<(bool, &'static [&'static str])> {
    match (app, kind) {
        (AppKind::MiniDb, "point_select") => Some((true, &[])),
        (AppKind::MiniDb, "row_update") => Some((true, &[])),
        (AppKind::MiniDb, "table_scan") => Some((true, &["duration_ns"])),
        (AppKind::MiniDb, "slow_query") => Some((true, &["ns"])),
        (AppKind::MiniDb, "dump") => Some((true, &["pages"])),
        (AppKind::MiniDb, "backup") => Some((false, &["copy_ns_per_table"])),
        (AppKind::MiniDb, "select_for_update") => Some((false, &["hold_ns"])),
        (AppKind::MiniDb, "bulk_write") => Some((false, &["hold_ns"])),
        (AppKind::MiniDb, "purge") => Some((false, &["hold_ns"])),
        (AppKind::MiniDb, "wal_writer") => Some((false, &["flush_ns"])),
        (AppKind::MiniDb, "vacuum") => Some((false, &["io_chunks", "chunk_ns"])),
        (AppKind::MiniDb, "select_with_io") => Some((true, &["io_ns"])),
        (AppKind::WebServer, "http_request") => Some((true, &[])),
        (AppKind::WebServer, "slow_script") => Some((true, &["script_ns"])),
        (AppKind::Search, "search") => Some((true, &[])),
        (AppKind::Search, "big_search") => Some((true, &["entries"])),
        (AppKind::Search, "nested_agg") => Some((true, &["total_bytes", "steps"])),
        (AppKind::Search, "long_query") => Some((true, &["ns"])),
        (AppKind::Search, "big_update") => Some((true, &["hold_ns"])),
        (AppKind::Search, "index_doc") => Some((true, &[])),
        (AppKind::Search, "complex_boolean") => Some((true, &["hold_ns"])),
        (AppKind::Search, "nested_range") => Some((true, &["ns"])),
        (AppKind::KvStore, "kv_get") => Some((true, &[])),
        (AppKind::KvStore, "kv_put") => Some((true, &[])),
        (AppKind::KvStore, "range_read") => Some((true, &["hold_ns"])),
        _ => None,
    }
}

/// One `[[class]]` stanza: a request class in the mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class kind — an app method name (see [`class_signature`]).
    pub kind: String,
    /// Mix weight in the baseline (no-overload) variant; 0 for kinds
    /// whose constructor takes no weight.
    pub weight: f64,
    /// Mix weight under overload, for cases whose culprit arrives by
    /// sampling weight rather than by schedule (c2, c9, c12, c15).
    pub overload_weight: Option<f64>,
    /// Fixed owning client id, or `None` to round-robin.
    pub client: Option<u16>,
    /// Kind-specific plan parameters.
    pub params: ClassParams,
}

/// One `[[inject]]` stanza: a one-off class injection repeated every
/// `every_ms` from `disturb_at + offset_ms` until the run ends
/// (overload variants only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectDecl {
    /// Index into the `[[class]]` list.
    pub class: u16,
    /// Repeat period, ms.
    pub every_ms: u64,
    /// Offset of the first injection past `disturb_at`, ms.
    pub offset_ms: u64,
}

/// One `[[background]]` stanza: a recurring background job started at
/// `disturb_at`, re-spawned `interval_ms` after each completion
/// (overload variants only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundDecl {
    /// Index into the `[[class]]` list.
    pub class: u16,
    /// Gap between a run's completion and the next spawn, ms.
    pub interval_ms: u64,
}

/// A `[case]` stanza plus its class/injection/background stanzas: one
/// Table 2 overload case, the declarative form of what
/// `scenarios::cases` used to hard-code.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseDescriptor {
    /// Case id (`c1`..`c16`, `c2tq`, or a capacity scenario id).
    pub id: String,
    /// Which simulated application to instantiate.
    pub app: AppKind,
    /// Application name as Table 2 prints it (`MySQL`, `Apache`, ...).
    pub display_app: String,
    /// Resource type (Table 2 column 3).
    pub resource_type: String,
    /// Resource detail (Table 2 column 4).
    pub resource: String,
    /// Overload triggering condition (Table 2 column 5).
    pub trigger: String,
    /// Default open-loop load, qps (scaled by `load_scale` / the ramp).
    pub base_qps: f64,
    /// Class indices exempt from the latency SLO (controller hints).
    pub slo_exempt: Vec<u16>,
    /// The request-class mix, in `ClassId` order.
    pub classes: Vec<ClassDecl>,
    /// Timed injection schedules.
    pub injections: Vec<InjectDecl>,
    /// Recurring background jobs.
    pub background: Vec<BackgroundDecl>,
}

/// A `[ramp]` stanza: the offered-load sweep a capacity run executes
/// (the IC scalability-suite shape: start at `initial_rps`, add
/// `increment_rps` per step until `max_rps`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampSpec {
    /// Offered load of the first step, rps.
    pub initial_rps: f64,
    /// Load added per step, rps.
    pub increment_rps: f64,
    /// Load of the last step, rps (inclusive).
    pub max_rps: f64,
    /// Measured duration of one step, ms.
    pub step_ms: u64,
    /// Per-step warmup excluded from measurement, ms.
    pub warmup_ms: u64,
}

impl RampSpec {
    /// The offered loads the ramp visits, in order.
    pub fn steps(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut rps = self.initial_rps;
        // Tolerate float accumulation on the last step.
        while rps <= self.max_rps * (1.0 + 1e-9) {
            out.push(rps);
            rps += self.increment_rps;
        }
        out
    }
}

/// An `[slo]` stanza: the target the capacity knee is judged against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Victim p99 latency budget, ms.
    pub victim_p99_ms: f64,
}

impl SloSpec {
    /// The budget in nanoseconds.
    pub fn victim_p99_ns(&self) -> u64 {
        (self.victim_p99_ms * 1_000_000.0) as u64
    }
}

/// A `[fed]` stanza: service-graph shape for a federated scenario kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FedTopology {
    /// Scenario kind name (`partition`, `delayed_cancel`, `fan_convoy`).
    pub kind: String,
    /// Service-graph depth including the frontend.
    pub tiers: u8,
    /// Backend fan-out per frontend request.
    pub fanout: u8,
}

/// A `[fed_live]` stanza: wall-clock geometry of the two-tier federation
/// harness (`fed::FedLiveConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FedLiveSpec {
    /// Frontend worker threads.
    pub workers: usize,
    /// Wall-clock duration load is offered for, ms.
    pub run_for_ms: u64,
    /// Open-loop spacing between arrivals, µs.
    pub interarrival_us: u64,
    /// Backend shard hold of a normal request, µs.
    pub backend_hold_us: u64,
    /// When the culprit is injected, ms.
    pub culprit_after_ms: u64,
    /// Maximum culprit hold if never canceled, ms.
    pub culprit_hold_ms: u64,
    /// Culprit cancellation-checkpoint interval, ms.
    pub checkpoint_ms: u64,
    /// Supervisor tick period / DAGOR adaptation epoch, ms.
    pub tick_period_ms: u64,
    /// DAGOR's average queuing-time overload threshold, ns.
    pub queue_time_ns: u64,
}

/// A fully parsed and validated descriptor file.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadDescriptor {
    /// Descriptor name (file stem), carried into errors and artifacts.
    pub name: String,
    /// The sim-substrate case, if declared.
    pub case: Option<CaseDescriptor>,
    /// The thread/async-substrate scenario geometry, if declared.
    pub scenario: Option<ScenarioDescriptor>,
    /// Federated topology, if declared.
    pub fed: Option<FedTopology>,
    /// Federated wall-clock geometry, if declared.
    pub fed_live: Option<FedLiveSpec>,
    /// The offered-load ramp, if declared.
    pub ramp: Option<RampSpec>,
    /// The capacity SLO, if declared.
    pub slo: Option<SloSpec>,
    /// Substrates a capacity run should sweep (root `substrates` key).
    pub substrates: Vec<SubstrateSel>,
}

impl WorkloadDescriptor {
    /// Parses and validates a descriptor from TOML text. `name` labels
    /// errors and artifacts (conventionally the file stem).
    pub fn parse(name: &str, text: &str) -> Result<Self, ParseError> {
        parse_descriptor(name, text).map_err(|e| e.in_source(name))
    }

    /// The `[case]` stanza, or a loud error naming the descriptor.
    pub fn require_case(&self) -> Result<&CaseDescriptor, ParseError> {
        self.case.as_ref().ok_or_else(|| {
            ParseError::at(0, "descriptor has no [case] stanza").in_source(&self.name)
        })
    }

    /// The `[scenario]` stanza, or a loud error naming the descriptor.
    pub fn require_scenario(&self) -> Result<&ScenarioDescriptor, ParseError> {
        self.scenario.as_ref().ok_or_else(|| {
            ParseError::at(0, "descriptor has no [scenario] stanza").in_source(&self.name)
        })
    }

    /// The `[ramp]` stanza, or a loud error naming the descriptor.
    pub fn require_ramp(&self) -> Result<&RampSpec, ParseError> {
        self.ramp.as_ref().ok_or_else(|| {
            ParseError::at(0, "descriptor has no [ramp] stanza").in_source(&self.name)
        })
    }
}

/// Tracks which keys of a table an extractor consumed, so leftovers can
/// be rejected by name and line.
struct Reader<'a> {
    table: &'a Table,
    used: HashSet<&'a str>,
}

impl<'a> Reader<'a> {
    fn new(table: &'a Table) -> Self {
        Self {
            table,
            used: HashSet::new(),
        }
    }

    fn take(&mut self, key: &'a str) -> Option<&'a Entry> {
        let e = self.table.get(key)?;
        self.used.insert(key);
        Some(e)
    }

    fn req(&mut self, key: &'a str) -> Result<&'a Entry, ParseError> {
        self.take(key).ok_or_else(|| {
            ParseError::at(self.table.line, format!("missing required key `{key}`")).field(key)
        })
    }

    fn req_str(&mut self, key: &'a str) -> Result<String, ParseError> {
        as_str(self.req(key)?)
    }

    fn req_f64(&mut self, key: &'a str) -> Result<f64, ParseError> {
        as_f64(self.req(key)?)
    }

    fn req_u64(&mut self, key: &'a str) -> Result<u64, ParseError> {
        as_u64(self.req(key)?)
    }

    fn opt_u64(&mut self, key: &'a str) -> Result<Option<u64>, ParseError> {
        self.take(key).map(as_u64).transpose()
    }

    fn opt_f64(&mut self, key: &'a str) -> Result<Option<f64>, ParseError> {
        self.take(key).map(as_f64).transpose()
    }

    /// Errors on the first key no extractor consumed.
    fn finish(self) -> Result<(), ParseError> {
        for e in &self.table.entries {
            if !self.used.contains(e.key.as_str()) {
                return Err(
                    ParseError::at(e.line, format!("unknown key `{}`", e.key)).field(&e.key)
                );
            }
        }
        Ok(())
    }
}

fn as_str(e: &Entry) -> Result<String, ParseError> {
    match &e.value {
        Value::Str(s) => Ok(s.clone()),
        v => Err(type_err(e, "string", v)),
    }
}

fn as_f64(e: &Entry) -> Result<f64, ParseError> {
    match &e.value {
        Value::Float(f) => Ok(*f),
        Value::Int(i) => Ok(*i as f64),
        v => Err(type_err(e, "float", v)),
    }
}

fn as_u64(e: &Entry) -> Result<u64, ParseError> {
    match &e.value {
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        Value::Int(_) => {
            Err(ParseError::at(e.line, format!("`{}` must be >= 0", e.key)).field(&e.key))
        }
        v => Err(type_err(e, "integer", v)),
    }
}

fn as_u16(e: &Entry) -> Result<u16, ParseError> {
    let v = as_u64(e)?;
    u16::try_from(v)
        .map_err(|_| ParseError::at(e.line, format!("`{}` = {v} exceeds u16", e.key)).field(&e.key))
}

fn as_u16_list(e: &Entry) -> Result<Vec<u16>, ParseError> {
    let Value::Array(items) = &e.value else {
        return Err(type_err(e, "array of integers", &e.value));
    };
    items
        .iter()
        .map(|v| match v {
            Value::Int(i) if *i >= 0 && *i <= u16::MAX as i64 => Ok(*i as u16),
            other => Err(ParseError::at(
                e.line,
                format!(
                    "`{}` items must be small non-negative integers, got {}",
                    e.key,
                    other.type_name()
                ),
            )
            .field(&e.key)),
        })
        .collect()
}

fn type_err(e: &Entry, want: &str, got: &Value) -> ParseError {
    ParseError::at(
        e.line,
        format!("`{}` must be a {want}, got {}", e.key, got.type_name()),
    )
    .field(&e.key)
}

fn parse_class(table: &Table, app: AppKind) -> Result<ClassDecl, ParseError> {
    let mut r = Reader::new(table);
    let kind = r.req_str("kind")?;
    let kind_line = table.get("kind").expect("just read").line;
    let Some((takes_weight, required)) = class_signature(app, &kind) else {
        return Err(ParseError::at(
            kind_line,
            format!("unknown class kind `{kind}` for app `{}`", app.name()),
        )
        .field("kind"));
    };
    let weight = if takes_weight {
        r.req_f64("weight")?
    } else {
        if let Some(e) = r.take("weight") {
            return Err(ParseError::at(
                e.line,
                format!("class kind `{kind}` takes no `weight` (its mix weight is fixed at 0)"),
            )
            .field("weight"));
        }
        0.0
    };
    let overload_weight = if takes_weight {
        r.opt_f64("overload_weight")?
    } else {
        if let Some(e) = r.take("overload_weight") {
            return Err(ParseError::at(
                e.line,
                format!("class kind `{kind}` takes no `overload_weight`"),
            )
            .field("overload_weight"));
        }
        None
    };
    if weight < 0.0 || overload_weight.is_some_and(|w| w < 0.0) {
        return Err(
            ParseError::at(kind_line, format!("class `{kind}` has a negative weight"))
                .field("weight"),
        );
    }
    let client = r.take("client").map(as_u16).transpose()?;
    let mut params = ClassParams::default();
    for key in required {
        params.set(key, r.req_u64(key)?);
    }
    for key in PARAM_KEYS {
        if !required.contains(&key) {
            if let Some(e) = r.take(key) {
                return Err(ParseError::at(
                    e.line,
                    format!("class kind `{kind}` takes no param `{key}`"),
                )
                .field(key));
            }
        }
    }
    r.finish()?;
    Ok(ClassDecl {
        kind,
        weight,
        overload_weight,
        client,
        params,
    })
}

fn parse_case(doc: &Document, table: &Table) -> Result<CaseDescriptor, ParseError> {
    let mut r = Reader::new(table);
    let id = r.req_str("id")?;
    let app_name = r.req_str("app")?;
    let app_line = table.get("app").expect("just read").line;
    let Some(app) = AppKind::from_name(&app_name) else {
        return Err(ParseError::at(
            app_line,
            format!("unknown app `{app_name}` (expected minidb|webserver|search|kvstore)"),
        )
        .field("app"));
    };
    let display_app = r.req_str("display_app")?;
    let resource_type = r.req_str("resource_type")?;
    let resource = r.req_str("resource")?;
    let trigger = r.req_str("trigger")?;
    let base_qps = r.req_f64("base_qps")?;
    if base_qps <= 0.0 {
        let e = table.get("base_qps").expect("just read");
        return Err(ParseError::at(e.line, "`base_qps` must be positive").field("base_qps"));
    }
    let slo_exempt = match r.take("slo_exempt") {
        Some(e) => as_u16_list(e)?,
        None => Vec::new(),
    };
    r.finish()?;

    let classes: Vec<ClassDecl> = doc
        .array("class")
        .into_iter()
        .map(|t| parse_class(t, app))
        .collect::<Result<_, _>>()?;
    if classes.is_empty() {
        return Err(ParseError::at(
            table.line,
            "a [case] needs at least one [[class]] stanza",
        ));
    }
    let n = classes.len() as u64;
    let class_index = |r: &mut Reader| -> Result<u16, ParseError> {
        let e = r.req("class")?;
        let idx = as_u64(e)?;
        if idx >= n {
            return Err(ParseError::at(
                e.line,
                format!("class index {idx} out of range (the case declares {n} classes)"),
            )
            .field("class"));
        }
        Ok(idx as u16)
    };

    let mut injections = Vec::new();
    for t in doc.array("inject") {
        let mut r = Reader::new(t);
        let class = class_index(&mut r)?;
        let every_ms = r.req_u64("every_ms")?;
        if every_ms == 0 {
            let e = t.get("every_ms").expect("just read");
            return Err(ParseError::at(e.line, "`every_ms` must be positive").field("every_ms"));
        }
        let offset_ms = r.opt_u64("offset_ms")?.unwrap_or(0);
        r.finish()?;
        injections.push(InjectDecl {
            class,
            every_ms,
            offset_ms,
        });
    }

    let mut background = Vec::new();
    for t in doc.array("background") {
        let mut r = Reader::new(t);
        let class = class_index(&mut r)?;
        let interval_ms = r.req_u64("interval_ms")?;
        if interval_ms == 0 {
            let e = t.get("interval_ms").expect("just read");
            return Err(
                ParseError::at(e.line, "`interval_ms` must be positive").field("interval_ms")
            );
        }
        r.finish()?;
        background.push(BackgroundDecl { class, interval_ms });
    }

    for ex in &slo_exempt {
        if u64::from(*ex) >= n {
            let e = table.get("slo_exempt").expect("validated above");
            return Err(ParseError::at(
                e.line,
                format!("slo_exempt index {ex} out of range (the case declares {n} classes)"),
            )
            .field("slo_exempt"));
        }
    }

    Ok(CaseDescriptor {
        id,
        app,
        display_app,
        resource_type,
        resource,
        trigger,
        base_qps,
        slo_exempt,
        classes,
        injections,
        background,
    })
}

fn parse_scenario(table: &Table) -> Result<ScenarioDescriptor, ParseError> {
    let mut r = Reader::new(table);
    let family_name = r.req_str("family")?;
    let family_line = table.get("family").expect("just read").line;
    let family = ScenarioFamily::ALL
        .into_iter()
        .find(|f| f.name() == family_name)
        .ok_or_else(|| {
            ParseError::at(
                family_line,
                format!("unknown scenario family `{family_name}` (expected lock_hog|buffer_scan|ticket_queue)"),
            )
            .field("family")
        })?;
    let d = ScenarioDescriptor {
        family,
        sim_seed: r.req_u64("sim_seed")?,
        workers: r.req_u64("workers")? as usize,
        interarrival_us: r.req_u64("interarrival_us")?,
        tickets: r.req_u64("tickets")? as usize,
        culprit_after_ms: r.req_u64("culprit_after_ms")?,
        culprit_hold_ms: r.req_u64("culprit_hold_ms")?,
        hot_pages: r.req_u64("hot_pages")?,
        lru_capacity: r.req_u64("lru_capacity")? as usize,
        pages_per_request: r.req_u64("pages_per_request")?,
        miss_penalty_us: r.req_u64("miss_penalty_us")?,
        scan_pages: r.req_u64("scan_pages")?,
        tiers: r.req_u64("tiers")? as u8,
        fanout: r.req_u64("fanout")? as u8,
    };
    r.finish()?;
    for (key, ok) in [
        ("workers", d.workers > 0),
        ("tickets", d.tickets > 0),
        ("interarrival_us", d.interarrival_us > 0),
        ("lru_capacity", d.lru_capacity > 0),
        ("tiers", d.tiers >= 1),
        ("fanout", d.fanout >= 1),
    ] {
        if !ok {
            let e = table.get(key).expect("validated above");
            return Err(ParseError::at(e.line, format!("`{key}` must be positive")).field(key));
        }
    }
    Ok(d)
}

fn parse_ramp(table: &Table) -> Result<RampSpec, ParseError> {
    let mut r = Reader::new(table);
    let ramp = RampSpec {
        initial_rps: r.req_f64("initial_rps")?,
        increment_rps: r.req_f64("increment_rps")?,
        max_rps: r.req_f64("max_rps")?,
        step_ms: r.req_u64("step_ms")?,
        warmup_ms: r.opt_u64("warmup_ms")?.unwrap_or(0),
    };
    r.finish()?;
    let bad = |key: &str, msg: &str| -> Result<RampSpec, ParseError> {
        let e = table.get(key).expect("validated above");
        Err(ParseError::at(e.line, msg).field(key))
    };
    if ramp.initial_rps <= 0.0 || !ramp.initial_rps.is_finite() {
        return bad(
            "initial_rps",
            "`initial_rps` must be a positive finite rate",
        );
    }
    if ramp.increment_rps <= 0.0 || !ramp.increment_rps.is_finite() {
        return bad(
            "increment_rps",
            "`increment_rps` must be a positive finite rate (a flat ramp never terminates)",
        );
    }
    if ramp.max_rps < ramp.initial_rps || !ramp.max_rps.is_finite() {
        return bad("max_rps", "`max_rps` must be finite and >= `initial_rps`");
    }
    if ramp.step_ms == 0 {
        return bad("step_ms", "`step_ms` must be positive");
    }
    Ok(ramp)
}

fn parse_slo(table: &Table) -> Result<SloSpec, ParseError> {
    let mut r = Reader::new(table);
    let slo = SloSpec {
        victim_p99_ms: r.req_f64("victim_p99_ms")?,
    };
    r.finish()?;
    if slo.victim_p99_ms <= 0.0 || !slo.victim_p99_ms.is_finite() {
        let e = table.get("victim_p99_ms").expect("validated above");
        return Err(
            ParseError::at(e.line, "`victim_p99_ms` must be a positive finite budget")
                .field("victim_p99_ms"),
        );
    }
    Ok(slo)
}

fn parse_fed(table: &Table) -> Result<FedTopology, ParseError> {
    let mut r = Reader::new(table);
    let fed = FedTopology {
        kind: r.req_str("kind")?,
        tiers: r.req_u64("tiers")? as u8,
        fanout: r.req_u64("fanout")? as u8,
    };
    r.finish()?;
    if fed.tiers < 2 {
        let e = table.get("tiers").expect("validated above");
        return Err(ParseError::at(
            e.line,
            "`tiers` must be >= 2 (a federation has a frontend and at least one backend)",
        )
        .field("tiers"));
    }
    if fed.fanout == 0 || u64::from(fed.fanout) != u64::from(fed.tiers) - 1 {
        let e = table.get("fanout").expect("validated above");
        return Err(ParseError::at(
            e.line,
            format!(
                "`fanout` must equal tiers - 1 = {} (every backend tier serves the fan-out)",
                fed.tiers - 1
            ),
        )
        .field("fanout"));
    }
    Ok(fed)
}

fn parse_fed_live(table: &Table) -> Result<FedLiveSpec, ParseError> {
    let mut r = Reader::new(table);
    let spec = FedLiveSpec {
        workers: r.req_u64("workers")? as usize,
        run_for_ms: r.req_u64("run_for_ms")?,
        interarrival_us: r.req_u64("interarrival_us")?,
        backend_hold_us: r.req_u64("backend_hold_us")?,
        culprit_after_ms: r.req_u64("culprit_after_ms")?,
        culprit_hold_ms: r.req_u64("culprit_hold_ms")?,
        checkpoint_ms: r.req_u64("checkpoint_ms")?,
        tick_period_ms: r.req_u64("tick_period_ms")?,
        queue_time_ns: r.req_u64("queue_time_ns")?,
    };
    r.finish()?;
    for (key, ok) in [
        ("workers", spec.workers > 0),
        ("run_for_ms", spec.run_for_ms > 0),
        ("interarrival_us", spec.interarrival_us > 0),
        ("tick_period_ms", spec.tick_period_ms > 0),
    ] {
        if !ok {
            let e = table.get(key).expect("validated above");
            return Err(ParseError::at(e.line, format!("`{key}` must be positive")).field(key));
        }
    }
    Ok(spec)
}

fn parse_descriptor(name: &str, text: &str) -> Result<WorkloadDescriptor, ParseError> {
    let doc = toml::parse(text)?;

    // Root keys: only `substrates` is allowed.
    let mut substrates = Vec::new();
    for e in &doc.root.entries {
        if e.key != "substrates" {
            return Err(ParseError::at(
                e.line,
                format!(
                    "unknown top-level key `{}` (did you mean to put it in a stanza?)",
                    e.key
                ),
            )
            .field(&e.key));
        }
        let Value::Array(items) = &e.value else {
            return Err(type_err(e, "array of substrate names", &e.value));
        };
        for item in items {
            let Value::Str(s) = item else {
                return Err(type_err(e, "array of substrate names", item));
            };
            let sel = SubstrateSel::from_name(s).ok_or_else(|| {
                ParseError::at(
                    e.line,
                    format!("unknown substrate `{s}` (expected sim|thread|async)"),
                )
                .field("substrates")
            })?;
            if substrates.contains(&sel) {
                return Err(ParseError::at(e.line, format!("duplicate substrate `{s}`"))
                    .field("substrates"));
            }
            substrates.push(sel);
        }
    }

    const STANZAS: [&str; 6] = ["case", "scenario", "ramp", "slo", "fed", "fed_live"];
    const ARRAYS: [&str; 3] = ["class", "inject", "background"];
    for (n, t) in &doc.tables {
        if !STANZAS.contains(&n.as_str()) {
            return Err(ParseError::at(t.line, format!("unknown stanza `[{n}]`")).field(n.as_str()));
        }
    }
    for (n, t) in &doc.arrays {
        if !ARRAYS.contains(&n.as_str()) {
            return Err(
                ParseError::at(t.line, format!("unknown stanza `[[{n}]]`")).field(n.as_str())
            );
        }
    }

    let case = doc.table("case").map(|t| parse_case(&doc, t)).transpose()?;
    if case.is_none() {
        if let Some((_, t)) = doc
            .arrays
            .iter()
            .find(|(n, _)| ARRAYS.contains(&n.as_str()))
        {
            return Err(ParseError::at(
                t.line,
                "[[class]]/[[inject]]/[[background]] stanzas require a [case] stanza",
            ));
        }
    }
    let scenario = doc.table("scenario").map(parse_scenario).transpose()?;
    let ramp = doc.table("ramp").map(parse_ramp).transpose()?;
    let slo = doc.table("slo").map(parse_slo).transpose()?;
    let fed = doc.table("fed").map(parse_fed).transpose()?;
    let fed_live = doc.table("fed_live").map(parse_fed_live).transpose()?;

    if case.is_none() && scenario.is_none() && fed.is_none() && fed_live.is_none() {
        return Err(ParseError::at(
            0,
            "descriptor declares no workload ([case], [scenario], [fed] or [fed_live])",
        ));
    }
    if ramp.is_some() && !substrates.is_empty() {
        let needs_case = substrates.contains(&SubstrateSel::Sim) && case.is_none();
        let needs_scenario = (substrates.contains(&SubstrateSel::Thread)
            || substrates.contains(&SubstrateSel::Async))
            && scenario.is_none();
        if needs_case {
            return Err(ParseError::at(
                0,
                "ramp sweeps the sim substrate but the descriptor has no [case] stanza",
            ));
        }
        if needs_scenario {
            return Err(ParseError::at(
                0,
                "ramp sweeps a wall-clock substrate but the descriptor has no [scenario] stanza",
            ));
        }
    }

    Ok(WorkloadDescriptor {
        name: name.to_string(),
        case,
        scenario,
        fed,
        fed_live,
        ramp,
        slo,
        substrates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
substrates = ["sim"]

[case]
id = "t1"
app = "minidb"
display_app = "MySQL"
resource_type = "Synchronization"
resource = "Backup lock"
trigger = "test"
base_qps = 8_000.0
slo_exempt = [2]

[[class]]
kind = "point_select"
weight = 0.65

[[class]]
kind = "row_update"
weight = 0.35

[[class]]
kind = "table_scan"
weight = 0.0
duration_ns = 3_000_000_000
client = 100

[[inject]]
class = 2
every_ms = 5_000
offset_ms = 400

[ramp]
initial_rps = 1_000.0
increment_rps = 1_000.0
max_rps = 4_000.0
step_ms = 500

[slo]
victim_p99_ms = 20.0
"#;

    #[test]
    fn full_descriptor_round_trips() {
        let d = WorkloadDescriptor::parse("mini", MINI).unwrap();
        let case = d.case.as_ref().unwrap();
        assert_eq!(case.id, "t1");
        assert_eq!(case.app, AppKind::MiniDb);
        assert_eq!(case.base_qps, 8_000.0);
        assert_eq!(case.classes.len(), 3);
        assert_eq!(case.classes[0].weight, 0.65);
        assert_eq!(case.classes[2].params.duration_ns, Some(3_000_000_000));
        assert_eq!(case.classes[2].client, Some(100));
        assert_eq!(
            case.injections,
            vec![InjectDecl {
                class: 2,
                every_ms: 5_000,
                offset_ms: 400
            }]
        );
        let ramp = d.ramp.unwrap();
        assert_eq!(ramp.steps(), vec![1_000.0, 2_000.0, 3_000.0, 4_000.0]);
        assert_eq!(d.slo.unwrap().victim_p99_ns(), 20_000_000);
        assert_eq!(d.substrates, vec![SubstrateSel::Sim]);
    }

    #[test]
    fn unknown_key_is_rejected_with_line_and_field() {
        let text = MINI.replace("slo_exempt = [2]", "slo_exemptt = [2]");
        let err = WorkloadDescriptor::parse("mini", &text).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("slo_exemptt"));
        assert!(err.line > 0);
        assert!(err.to_string().contains("mini:"), "{err}");
    }

    #[test]
    fn wrong_params_for_kind_are_rejected() {
        let text = MINI.replace("duration_ns = 3_000_000_000", "hold_ns = 3_000_000_000");
        let err = WorkloadDescriptor::parse("mini", &text).unwrap_err();
        // Both the missing required param and the foreign param are
        // errors; whichever fires first must name its field.
        assert!(err.field.is_some(), "{err}");
    }

    #[test]
    fn injection_class_bounds_checked() {
        let text = MINI.replace("class = 2\nevery_ms", "class = 9\nevery_ms");
        let err = WorkloadDescriptor::parse("mini", &text).unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn bad_ramp_is_rejected() {
        let text = MINI.replace("increment_rps = 1_000.0", "increment_rps = 0.0");
        let err = WorkloadDescriptor::parse("mini", &text).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("increment_rps"));
        let text = MINI.replace("max_rps = 4_000.0", "max_rps = 500.0");
        let err = WorkloadDescriptor::parse("mini", &text).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("max_rps"));
    }

    #[test]
    fn scenario_stanza_builds_a_descriptor() {
        let text = r#"
[scenario]
family = "lock_hog"
sim_seed = 42
workers = 4
interarrival_us = 2000
tickets = 4
culprit_after_ms = 400
culprit_hold_ms = 1200
hot_pages = 128
lru_capacity = 256
pages_per_request = 4
miss_penalty_us = 50
scan_pages = 65_536
tiers = 1
fanout = 1
"#;
        let d = WorkloadDescriptor::parse("lock_hog", text).unwrap();
        let s = d.scenario.unwrap();
        assert_eq!(s.family, ScenarioFamily::LockHog);
        assert_eq!(s.scan_pages, 1 << 16);
        // A scenario missing a geometry field is an error, not a default.
        let text = text.replace("tickets = 4\n", "");
        let err = WorkloadDescriptor::parse("lock_hog", &text).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("tickets"));
    }

    #[test]
    fn empty_descriptor_is_rejected() {
        let err = WorkloadDescriptor::parse("none", "# nothing\n").unwrap_err();
        assert!(err.message.contains("no workload"), "{err}");
    }

    #[test]
    fn weight_on_weightless_kind_is_rejected() {
        let text = r#"
[case]
id = "t"
app = "minidb"
display_app = "MySQL"
resource_type = "x"
resource = "y"
trigger = "z"
base_qps = 100.0

[[class]]
kind = "point_select"
weight = 1.0

[[class]]
kind = "backup"
weight = 0.5
copy_ns_per_table = 40_000_000
"#;
        let err = WorkloadDescriptor::parse("t", text).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("weight"));
        assert!(err.message.contains("backup"), "{err}");
    }
}
