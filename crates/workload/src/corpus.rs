//! The checked-in descriptor corpus.
//!
//! Every descriptor file under `crates/workload/descriptors/` is embedded
//! into the binary with `include_str!` and parsed once, lazily. This is
//! the single source of truth the substrates consume:
//!
//! - `scenarios::cases` builds the 16 Table 2 cases (plus the chaos
//!   ticket-queue variant) from [`all_case_descriptors`] /
//!   [`chaos_ticket_queue`];
//! - the chaos scripted scenarios and the three-way differential resolve
//!   their pinned geometry via [`family_descriptor`];
//! - the federation crate resolves topology shape via [`fed_topology`]
//!   and wall-clock geometry via [`fed_live_spec`];
//! - the `capacity` binary resolves ramp descriptors via
//!   [`capacity_descriptor`].
//!
//! A checked-in descriptor that fails to parse is a build defect, so
//! corpus accessors panic with the parse error (file, line, field) rather
//! than returning a `Result` every caller would have to unwrap anyway.

use std::sync::OnceLock;

use atropos_substrate::{ScenarioDescriptor, ScenarioFamily};

use crate::descriptor::{FedLiveSpec, FedTopology, WorkloadDescriptor};

/// One embedded descriptor file: `(name, text)`.
pub const CORPUS: [(&str, &str); 26] = [
    ("c1", include_str!("../descriptors/cases/c1.toml")),
    ("c2", include_str!("../descriptors/cases/c2.toml")),
    ("c3", include_str!("../descriptors/cases/c3.toml")),
    ("c4", include_str!("../descriptors/cases/c4.toml")),
    ("c5", include_str!("../descriptors/cases/c5.toml")),
    ("c6", include_str!("../descriptors/cases/c6.toml")),
    ("c7", include_str!("../descriptors/cases/c7.toml")),
    ("c8", include_str!("../descriptors/cases/c8.toml")),
    ("c9", include_str!("../descriptors/cases/c9.toml")),
    ("c10", include_str!("../descriptors/cases/c10.toml")),
    ("c11", include_str!("../descriptors/cases/c11.toml")),
    ("c12", include_str!("../descriptors/cases/c12.toml")),
    ("c13", include_str!("../descriptors/cases/c13.toml")),
    ("c14", include_str!("../descriptors/cases/c14.toml")),
    ("c15", include_str!("../descriptors/cases/c15.toml")),
    ("c16", include_str!("../descriptors/cases/c16.toml")),
    ("c2tq", include_str!("../descriptors/cases/c2tq.toml")),
    (
        "lock_hog",
        include_str!("../descriptors/scenarios/lock_hog.toml"),
    ),
    (
        "buffer_scan",
        include_str!("../descriptors/scenarios/buffer_scan.toml"),
    ),
    (
        "ticket_queue",
        include_str!("../descriptors/scenarios/ticket_queue.toml"),
    ),
    (
        "partition",
        include_str!("../descriptors/fed/partition.toml"),
    ),
    (
        "delayed_cancel",
        include_str!("../descriptors/fed/delayed_cancel.toml"),
    ),
    (
        "fan_convoy",
        include_str!("../descriptors/fed/fan_convoy.toml"),
    ),
    (
        "two_tier_live",
        include_str!("../descriptors/fed/two_tier_live.toml"),
    ),
    (
        "capacity_smoke",
        include_str!("../descriptors/capacity/capacity_smoke.toml"),
    ),
    (
        "capacity_c5",
        include_str!("../descriptors/capacity/capacity_c5.toml"),
    ),
];

fn parsed() -> &'static Vec<WorkloadDescriptor> {
    static PARSED: OnceLock<Vec<WorkloadDescriptor>> = OnceLock::new();
    PARSED.get_or_init(|| {
        CORPUS
            .iter()
            .map(|(name, text)| {
                WorkloadDescriptor::parse(name, text)
                    .unwrap_or_else(|e| panic!("checked-in descriptor failed to parse: {e}"))
            })
            .collect()
    })
}

/// Every checked-in descriptor, parsed, in [`CORPUS`] order. Touching
/// this once validates the whole corpus (the CI fail-loud check).
pub fn all_descriptors() -> &'static [WorkloadDescriptor] {
    parsed()
}

/// The descriptor named `name` (the file stem), if checked in.
pub fn descriptor(name: &str) -> Option<&'static WorkloadDescriptor> {
    parsed().iter().find(|d| d.name == name)
}

/// The 16 Table 2 case descriptors, `c1`..`c16`, in order.
pub fn all_case_descriptors() -> Vec<&'static WorkloadDescriptor> {
    (1..=16)
        .map(|i| descriptor(&format!("c{i}")).expect("the 16-case corpus is checked in"))
        .collect()
}

/// The injection-driven ticket-queue case (`c2tq`) the chaos
/// differential drives.
pub fn chaos_ticket_queue() -> &'static WorkloadDescriptor {
    descriptor("c2tq").expect("the c2tq descriptor is checked in")
}

/// The pinned [`ScenarioDescriptor`] the differential suite runs
/// `family` at — resolved from the descriptor files (formerly the
/// hard-coded `ScenarioFamily::descriptor()` literals).
pub fn family_descriptor(family: ScenarioFamily) -> ScenarioDescriptor {
    let d = descriptor(family.name())
        .unwrap_or_else(|| panic!("no checked-in descriptor for family `{}`", family.name()));
    let s = *d
        .scenario
        .as_ref()
        .unwrap_or_else(|| panic!("descriptor `{}` has no [scenario] stanza", d.name));
    assert_eq!(
        s.family,
        family,
        "descriptor `{}` declares family `{}`",
        d.name,
        s.family.name()
    );
    s
}

/// The federated topology shape for scenario kind `kind`
/// (`partition`, `delayed_cancel`, `fan_convoy`).
pub fn fed_topology(kind: &str) -> &'static FedTopology {
    let d = descriptor(kind)
        .unwrap_or_else(|| panic!("no checked-in descriptor for fed kind `{kind}`"));
    let t = d
        .fed
        .as_ref()
        .unwrap_or_else(|| panic!("descriptor `{}` has no [fed] stanza", d.name));
    assert_eq!(
        t.kind, kind,
        "descriptor `{}` declares kind `{}`",
        d.name, t.kind
    );
    t
}

/// The wall-clock geometry of the two-tier federation harness.
pub fn fed_live_spec() -> &'static FedLiveSpec {
    let d = descriptor("two_tier_live").expect("the two_tier_live descriptor is checked in");
    d.fed_live
        .as_ref()
        .expect("two_tier_live has a [fed_live] stanza")
}

/// A capacity ramp descriptor by name (`capacity_smoke`, `capacity_c5`),
/// if checked in. Capacity descriptors carry a `[ramp]`.
pub fn capacity_descriptor(name: &str) -> Option<&'static WorkloadDescriptor> {
    descriptor(name).filter(|d| d.ramp.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::SubstrateSel;

    #[test]
    fn whole_corpus_parses() {
        assert_eq!(all_descriptors().len(), CORPUS.len());
    }

    #[test]
    fn corpus_names_are_unique() {
        let mut names: Vec<&str> = CORPUS.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn sixteen_cases_in_order() {
        let cases = all_case_descriptors();
        assert_eq!(cases.len(), 16);
        for (i, d) in cases.iter().enumerate() {
            let case = d.case.as_ref().expect("case descriptors carry [case]");
            assert_eq!(case.id, format!("c{}", i + 1));
        }
    }

    #[test]
    fn resource_type_mix_matches_table_2() {
        let cases = all_case_descriptors();
        let count = |t: &str| {
            cases
                .iter()
                .filter(|d| d.case.as_ref().unwrap().resource_type == t)
                .count()
        };
        assert_eq!(count("Synchronization"), 8);
        assert_eq!(count("Thread pool"), 3);
        assert_eq!(count("Memory"), 3);
        assert_eq!(count("System"), 2);
    }

    #[test]
    fn family_descriptors_resolve_and_match() {
        for f in ScenarioFamily::ALL {
            let d = family_descriptor(f);
            assert_eq!(d.family, f);
            assert_eq!(d.sim_seed, 42);
            assert_eq!(d.workers, 4);
        }
        // The per-family geometry that distinguishes the stories.
        assert_eq!(family_descriptor(ScenarioFamily::LockHog).tickets, 4);
        assert_eq!(
            family_descriptor(ScenarioFamily::BufferScan).lru_capacity,
            132
        );
        assert_eq!(family_descriptor(ScenarioFamily::TicketQueue).tickets, 2);
    }

    #[test]
    fn fed_topologies_resolve() {
        assert_eq!(fed_topology("partition").fanout, 1);
        assert_eq!(fed_topology("delayed_cancel").fanout, 1);
        assert_eq!(fed_topology("fan_convoy").fanout, 3);
        assert_eq!(fed_topology("fan_convoy").tiers, 4);
        assert_eq!(fed_live_spec().workers, 4);
        assert_eq!(fed_live_spec().queue_time_ns, 20_000_000);
    }

    #[test]
    fn capacity_descriptors_carry_ramps_and_substrates() {
        for name in ["capacity_smoke", "capacity_c5"] {
            let d = capacity_descriptor(name).expect(name);
            let ramp = d.ramp.expect("capacity descriptors carry [ramp]");
            assert!(ramp.steps().len() >= 2, "{name} ramp has <2 steps");
            assert!(d.slo.is_some(), "{name} has no [slo]");
            assert_eq!(
                d.substrates,
                vec![SubstrateSel::Sim, SubstrateSel::Thread, SubstrateSel::Async]
            );
            assert!(d.case.is_some() && d.scenario.is_some());
        }
    }
}
