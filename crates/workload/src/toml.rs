//! A dependency-free parser for the TOML subset the descriptor corpus
//! uses.
//!
//! The workspace vendors no external crates (the build environment has no
//! registry access), so descriptor files are parsed by this hand-rolled
//! reader instead of the `toml` crate. It deliberately accepts only the
//! subset the corpus needs — and rejects everything else *loudly*, with a
//! line number, because a descriptor that silently drops a stanza would
//! desynchronize the substrates it is supposed to pin:
//!
//! - comments (`# ...`), blank lines,
//! - `[table]` headers and `[[array-of-tables]]` headers,
//! - `key = value` pairs with bare keys,
//! - values: basic strings (`"..."` with `\\ \" \n \t` escapes), booleans,
//!   integers (optional sign, `_` separators), floats (`.` or exponent),
//!   and single-line homogeneous arrays of those scalars.
//!
//! Not supported (rejected with an error naming the line): dotted keys,
//! inline tables, multi-line strings/arrays, literal strings, dates,
//! hex/octal/binary integers. The descriptor schema layer
//! ([`crate::descriptor`]) then rejects unknown *keys* on top of this
//! syntactic strictness.

use std::fmt;

/// A scalar or array value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array of scalars.
    Array(Vec<Value>),
}

impl Value {
    /// A short name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// One `key = value` entry with its source line.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The bare key.
    pub key: String,
    /// 1-based source line of the entry.
    pub line: usize,
    /// The parsed value.
    pub value: Value,
}

/// An ordered list of entries (one `[table]` body or the root).
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Entries in file order.
    pub entries: Vec<Entry>,
    /// 1-based line of the table header (0 for the root table).
    pub line: usize,
}

impl Table {
    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A parsed document: the root table, named `[tables]`, and
/// `[[arrays-of-tables]]` in file order.
#[derive(Debug, Clone, Default)]
pub struct Document {
    /// Top-level `key = value` pairs before any header.
    pub root: Table,
    /// `[name]` tables, in file order.
    pub tables: Vec<(String, Table)>,
    /// `[[name]]` items, in file order (shared name ⇒ one logical array).
    pub arrays: Vec<(String, Table)>,
}

impl Document {
    /// The named `[table]`, if present.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// All `[[name]]` items, in file order.
    pub fn array(&self, name: &str) -> Vec<&Table> {
        self.arrays
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, t)| t)
            .collect()
    }
}

/// A parse or validation failure, pinned to a source location.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Descriptor name (file stem or path) for multi-file error output.
    pub source: String,
    /// 1-based line of the offending construct (0 = whole file).
    pub line: usize,
    /// The key or stanza at fault, when one is identifiable.
    pub field: Option<String>,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Builds an error at `line`.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        Self {
            source: String::new(),
            line,
            field: None,
            message: message.into(),
        }
    }

    /// Attaches the offending field name.
    pub fn field(mut self, field: impl Into<String>) -> Self {
        self.field = Some(field.into());
        self
    }

    /// Attaches the descriptor name.
    pub fn in_source(mut self, source: impl Into<String>) -> Self {
        self.source = source.into();
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            if self.source.is_empty() {
                "<descriptor>"
            } else {
                &self.source
            }
        )?;
        if self.line > 0 {
            write!(f, ":{}", self.line)?;
        }
        if let Some(field) = &self.field {
            write!(f, " (field `{field}`)")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Strips a trailing comment, respecting `"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == '#' {
            return &line[..i];
        }
    }
    line
}

fn parse_string(s: &str, line: usize) -> Result<(Value, &str), ParseError> {
    debug_assert!(s.starts_with('"'));
    let mut out = String::new();
    let mut chars = s[1..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((Value::Str(out), &s[1 + i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, other)) => {
                    return Err(ParseError::at(
                        line,
                        format!("unsupported string escape `\\{other}`"),
                    ))
                }
                None => return Err(ParseError::at(line, "string ends in a lone backslash")),
            },
            _ => out.push(c),
        }
    }
    Err(ParseError::at(line, "unterminated string"))
}

fn parse_number(tok: &str, line: usize) -> Result<Value, ParseError> {
    let cleaned: String = tok.chars().filter(|&c| c != '_').collect();
    if tok.starts_with('_')
        || tok.ends_with('_')
        || tok.contains("__")
        || tok.contains("_.")
        || tok.contains("._")
    {
        return Err(ParseError::at(
            line,
            format!("malformed underscore placement in number `{tok}`"),
        ));
    }
    let is_float = cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E');
    if is_float {
        cleaned
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| ParseError::at(line, format!("invalid float `{tok}`")))
    } else {
        cleaned
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| ParseError::at(line, format!("invalid integer `{tok}`")))
    }
}

/// Parses one scalar/array value; returns the value and the unconsumed
/// remainder of the line.
fn parse_value(s: &str, line: usize) -> Result<(Value, &str), ParseError> {
    let s = s.trim_start();
    if s.is_empty() {
        return Err(ParseError::at(line, "missing value after `=`"));
    }
    if s.starts_with('"') {
        return parse_string(s, line);
    }
    if let Some(rest) = s.strip_prefix('[') {
        let mut items = Vec::new();
        let mut rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix(']') {
            return Ok((Value::Array(items), after));
        }
        loop {
            let (v, r) = parse_value(rest, line)?;
            if matches!(v, Value::Array(_)) {
                return Err(ParseError::at(line, "nested arrays are not supported"));
            }
            items.push(v);
            rest = r.trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after.trim_start();
                if let Some(after) = rest.strip_prefix(']') {
                    // trailing comma
                    return Ok((Value::Array(items), after));
                }
                continue;
            }
            if let Some(after) = rest.strip_prefix(']') {
                return Ok((Value::Array(items), after));
            }
            return Err(ParseError::at(
                line,
                "expected `,` or `]` in array (arrays must be single-line)",
            ));
        }
    }
    if s.starts_with('{') {
        return Err(ParseError::at(line, "inline tables are not supported"));
    }
    // Bare token: bool or number, ends at whitespace/`,`/`]`.
    let end = s
        .find(|c: char| c.is_whitespace() || c == ',' || c == ']')
        .unwrap_or(s.len());
    let (tok, rest) = s.split_at(end);
    let value = match tok {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => parse_number(tok, line)?,
    };
    Ok((value, rest))
}

fn parse_header(trimmed: &str, line: usize) -> Result<(String, bool), ParseError> {
    let (inner, is_array) = if let Some(rest) = trimmed.strip_prefix("[[") {
        let inner = rest
            .strip_suffix("]]")
            .ok_or_else(|| ParseError::at(line, "malformed `[[...]]` header"))?;
        (inner, true)
    } else {
        let inner = trimmed
            .strip_prefix('[')
            .and_then(|r| r.strip_suffix(']'))
            .ok_or_else(|| ParseError::at(line, "malformed `[...]` header"))?;
        (inner, false)
    };
    let name = inner.trim();
    if name.is_empty() || !name.chars().all(is_bare_key_char) {
        return Err(ParseError::at(
            line,
            format!("unsupported table name `{name}` (bare names only, no dotted keys)"),
        ));
    }
    Ok((name.to_string(), is_array))
}

/// Parses a whole descriptor document.
pub fn parse(text: &str) -> Result<Document, ParseError> {
    let mut doc = Document::default();
    // Index into doc.tables/doc.arrays the current header points at;
    // None = root.
    enum Cursor {
        Root,
        Table(usize),
        Array(usize),
    }
    let mut cursor = Cursor::Root;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let stripped = strip_comment(raw);
        let trimmed = stripped.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('[') {
            let (name, is_array) = parse_header(trimmed, line)?;
            if is_array {
                doc.arrays.push((
                    name,
                    Table {
                        entries: Vec::new(),
                        line,
                    },
                ));
                cursor = Cursor::Array(doc.arrays.len() - 1);
            } else {
                if doc.tables.iter().any(|(n, _)| *n == name) {
                    return Err(
                        ParseError::at(line, format!("duplicate table `[{name}]`")).field(name)
                    );
                }
                doc.tables.push((
                    name,
                    Table {
                        entries: Vec::new(),
                        line,
                    },
                ));
                cursor = Cursor::Table(doc.tables.len() - 1);
            }
            continue;
        }
        let Some(eq) = trimmed.find('=') else {
            return Err(ParseError::at(
                line,
                format!("expected `key = value`, got `{trimmed}`"),
            ));
        };
        let key = trimmed[..eq].trim();
        if key.is_empty() || !key.chars().all(is_bare_key_char) {
            return Err(ParseError::at(
                line,
                format!("unsupported key `{key}` (bare keys only)"),
            ));
        }
        let (value, rest) = parse_value(&trimmed[eq + 1..], line)?;
        if !rest.trim().is_empty() {
            return Err(ParseError::at(
                line,
                format!("trailing garbage after value: `{}`", rest.trim()),
            )
            .field(key));
        }
        let table = match cursor {
            Cursor::Root => &mut doc.root,
            Cursor::Table(i) => &mut doc.tables[i].1,
            Cursor::Array(i) => &mut doc.arrays[i].1,
        };
        if table.entries.iter().any(|e| e.key == key) {
            return Err(ParseError::at(line, format!("duplicate key `{key}`")).field(key));
        }
        table.entries.push(Entry {
            key: key.to_string(),
            line,
            value,
        });
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let doc = parse(
            r#"
# a comment
top = 3

[case]
id = "c1"          # trailing comment
base_qps = 8_000.0
exempt = [2, 3]
flag = true

[[class]]
kind = "point_select"
weight = 0.65

[[class]]
kind = "backup"
weight = 0.0
"#,
        )
        .unwrap();
        assert_eq!(doc.root.get("top").unwrap().value, Value::Int(3));
        let case = doc.table("case").unwrap();
        assert_eq!(case.get("id").unwrap().value, Value::Str("c1".into()));
        assert_eq!(case.get("base_qps").unwrap().value, Value::Float(8000.0));
        assert_eq!(
            case.get("exempt").unwrap().value,
            Value::Array(vec![Value::Int(2), Value::Int(3)])
        );
        assert_eq!(case.get("flag").unwrap().value, Value::Bool(true));
        let classes = doc.array("class");
        assert_eq!(classes.len(), 2);
        assert_eq!(
            classes[1].get("kind").unwrap().value,
            Value::Str("backup".into())
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("a = 1\nb = }").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("[t]\nx = 1\nx = 2").unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.field.as_deref(), Some("x"));
        let err = parse("key only").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(parse("a.b = 1").unwrap_err().message.contains("bare keys"));
        assert!(parse("a = {x = 1}")
            .unwrap_err()
            .message
            .contains("inline tables"));
        assert!(parse("a = [[1]]").unwrap_err().message.contains("nested"));
        assert!(parse("[a.b]\n")
            .unwrap_err()
            .message
            .contains("no dotted keys"));
        assert!(parse("a = 1 2").unwrap_err().message.contains("trailing"));
        assert!(parse("a = \"unterminated")
            .unwrap_err()
            .message
            .contains("unterminated"));
        assert!(parse("a = 1__2")
            .unwrap_err()
            .message
            .contains("underscore"));
    }

    #[test]
    fn numbers_parse_exactly() {
        let doc = parse("a = 0.65\nb = 0.0003\nc = -4\nd = 2936012800\ne = 1e3").unwrap();
        assert_eq!(doc.root.get("a").unwrap().value, Value::Float(0.65));
        assert_eq!(doc.root.get("b").unwrap().value, Value::Float(0.0003));
        assert_eq!(doc.root.get("c").unwrap().value, Value::Int(-4));
        assert_eq!(doc.root.get("d").unwrap().value, Value::Int(2_936_012_800));
        assert_eq!(doc.root.get("e").unwrap().value, Value::Float(1000.0));
    }

    #[test]
    fn comment_inside_string_is_kept() {
        let doc = parse("a = \"has # hash\" # real comment").unwrap();
        assert_eq!(
            doc.root.get("a").unwrap().value,
            Value::Str("has # hash".into())
        );
    }
}
