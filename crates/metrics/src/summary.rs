//! End-of-run summaries and baseline normalization.
//!
//! Every figure in the paper's evaluation reports metrics *normalized
//! against each application's baseline performance without overload*
//! (Figures 4, 9, 10, 13, 14). [`RunSummary`] is the raw record produced by
//! one simulation run; [`NormalizedSummary`] divides it by a baseline run.

use serde::{Deserialize, Serialize};

use crate::histogram::LatencyHistogram;

/// Raw results of one run (one case, one controller, one load point).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Label for the run (e.g. case id or controller name).
    pub label: String,
    /// Measured duration in nanoseconds.
    pub duration_ns: u64,
    /// Requests offered (arrived) during the measurement interval.
    pub offered: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests dropped (rejected at admission or aborted past SLO).
    pub dropped: u64,
    /// Cancellations issued (Atropos) — a canceled-then-retried request that
    /// completes counts in `completed`, not in `dropped`.
    pub canceled: u64,
    /// Requests that were re-executed after cancellation.
    pub retried: u64,
    /// Mean end-to-end latency (ns) of completed requests.
    pub mean_latency_ns: f64,
    /// Median latency (ns).
    pub p50_ns: u64,
    /// 99th percentile latency (ns).
    pub p99_ns: u64,
    /// 99.9th percentile latency (ns).
    pub p999_ns: u64,
}

impl RunSummary {
    /// Builds a summary from counters and a latency histogram.
    pub fn from_histogram(
        label: impl Into<String>,
        duration_ns: u64,
        offered: u64,
        dropped: u64,
        canceled: u64,
        retried: u64,
        latency: &LatencyHistogram,
    ) -> Self {
        Self {
            label: label.into(),
            duration_ns,
            offered,
            completed: latency.count(),
            dropped,
            canceled,
            retried,
            mean_latency_ns: latency.mean(),
            p50_ns: latency.p50(),
            p99_ns: latency.p99(),
            p999_ns: latency.p999(),
        }
    }

    /// Goodput in requests per second.
    pub fn throughput_qps(&self) -> f64 {
        if self.duration_ns == 0 {
            return 0.0;
        }
        self.completed as f64 * 1e9 / self.duration_ns as f64
    }

    /// Fraction of offered requests that were dropped, in [0, 1].
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.dropped as f64 / self.offered as f64
    }

    /// Normalizes this run against a non-overloaded baseline.
    pub fn normalized_against(&self, baseline: &RunSummary) -> NormalizedSummary {
        let base_tp = baseline.throughput_qps();
        let base_p99 = baseline.p99_ns as f64;
        NormalizedSummary {
            label: self.label.clone(),
            throughput: if base_tp > 0.0 {
                self.throughput_qps() / base_tp
            } else {
                0.0
            },
            p99: if base_p99 > 0.0 {
                self.p99_ns as f64 / base_p99
            } else {
                0.0
            },
            drop_rate: self.drop_rate(),
            canceled: self.canceled,
        }
    }
}

/// A run divided by its non-overloaded baseline, as plotted in the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NormalizedSummary {
    /// Label carried over from the raw run.
    pub label: String,
    /// Normalized throughput (1.0 = baseline goodput).
    pub throughput: f64,
    /// Normalized p99 latency (1.0 = baseline tail latency).
    pub p99: f64,
    /// Drop rate in [0, 1] (not normalized; baseline drop rate is ~0).
    pub drop_rate: f64,
    /// Cancellations issued during the run.
    pub canceled: u64,
}

impl NormalizedSummary {
    /// Latency increase over baseline as a fraction (`p99 - 1.0`), floored
    /// at zero. This is the y-axis of Figure 12.
    pub fn latency_increase(&self) -> f64 {
        (self.p99 - 1.0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(completed: u64, offered: u64, dropped: u64, p99: u64) -> RunSummary {
        RunSummary {
            label: "t".into(),
            duration_ns: 1_000_000_000,
            offered,
            completed,
            dropped,
            canceled: 0,
            retried: 0,
            mean_latency_ns: p99 as f64 / 2.0,
            p50_ns: p99 / 2,
            p99_ns: p99,
            p999_ns: p99 * 2,
        }
    }

    #[test]
    fn throughput_is_completions_per_second() {
        let s = summary(25_000, 25_000, 0, 1000);
        assert!((s.throughput_qps() - 25_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_gives_zero_throughput() {
        let mut s = summary(10, 10, 0, 100);
        s.duration_ns = 0;
        assert_eq!(s.throughput_qps(), 0.0);
    }

    #[test]
    fn drop_rate_fraction() {
        let s = summary(75, 100, 25, 100);
        assert!((s.drop_rate() - 0.25).abs() < 1e-12);
        let empty = summary(0, 0, 0, 0);
        assert_eq!(empty.drop_rate(), 0.0);
    }

    #[test]
    fn normalization_against_baseline() {
        let base = summary(20_000, 20_000, 0, 1_000_000);
        let over = summary(10_000, 20_000, 5_000, 2_000_000);
        let n = over.normalized_against(&base);
        assert!((n.throughput - 0.5).abs() < 1e-9);
        assert!((n.p99 - 2.0).abs() < 1e-9);
        assert!((n.drop_rate - 0.25).abs() < 1e-9);
        assert!((n.latency_increase() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_against_zero_baseline_is_zero() {
        let base = summary(0, 0, 0, 0);
        let over = summary(10, 10, 0, 100);
        let n = over.normalized_against(&base);
        assert_eq!(n.throughput, 0.0);
        assert_eq!(n.p99, 0.0);
    }

    #[test]
    fn latency_increase_floors_at_zero() {
        let base = summary(100, 100, 0, 1000);
        let better = summary(100, 100, 0, 800);
        let n = better.normalized_against(&base);
        assert_eq!(n.latency_increase(), 0.0);
    }

    #[test]
    fn from_histogram_pulls_quantiles() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let s = RunSummary::from_histogram("x", 2_000_000_000, 1200, 100, 3, 2, &h);
        assert_eq!(s.completed, 1000);
        assert_eq!(s.offered, 1200);
        assert_eq!(s.dropped, 100);
        assert_eq!(s.canceled, 3);
        assert_eq!(s.retried, 2);
        assert!(s.p99_ns >= s.p50_ns);
        assert!((s.throughput_qps() - 500.0).abs() < 1e-9);
    }
}
