//! Column-aligned ASCII tables for experiment output.
//!
//! The benchmark harness prints each figure/table of the paper as an ASCII
//! table; this module does the alignment so experiment code stays readable.

use std::fmt::Write as _;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use atropos_metrics::Table;
///
/// let mut t = Table::new(vec!["load", "throughput", "p99"]);
/// t.row(vec!["5k".into(), "4998".into(), "1.2ms".into()]);
/// let s = t.render();
/// assert!(s.contains("throughput"));
/// assert!(s.contains("4998"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<impl Into<String>>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with blanks;
    /// longer rows are allowed and extend the table width.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header rule.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<w$}");
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule_len = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }
}

/// Formats a nanosecond duration with an adaptive unit (`ns`, `µs`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Formats a ratio as a percentage with two decimals.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a throughput value as kQPS with one decimal.
pub fn fmt_kqps(qps: f64) -> String {
    format!("{:.1}k", qps / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["xxx".into(), "y".into()]);
        t.row(vec!["z".into(), "wwww".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Columns align: "bb" and "y" start at the same offset.
        let header_off = lines[0].find("bb").unwrap();
        let row_off = lines[2].find('y').unwrap();
        assert_eq!(header_off, row_off);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn long_rows_extend_the_table() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains('2'));
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(5), "5ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn fmt_pct_and_kqps() {
        assert_eq!(fmt_pct(0.2512), "25.12%");
        assert_eq!(fmt_kqps(24_960.0), "25.0k");
    }
}
