//! Log-linear latency histogram.
//!
//! Latency distributions in the paper span five orders of magnitude (tens of
//! microseconds for point selects up to hundreds of seconds for blocked
//! writes), so a linear histogram is useless and storing raw samples is too
//! expensive at tens of thousands of requests per second. We use the classic
//! HdrHistogram bucketing scheme: values are grouped by their order of
//! magnitude (octave) and each octave is split into a fixed number of linear
//! sub-buckets, which bounds the relative quantile error by
//! `1 / SUB_BUCKETS`.

use serde::{Deserialize, Serialize};

/// Number of linear sub-buckets per power of two.
///
/// 64 sub-buckets bound the relative error of any reported quantile to
/// about 1.6%, which is far below the differences the paper's figures rely
/// on (2x–100x).
const SUB_BUCKETS: usize = 64;
const SUB_BUCKET_BITS: u32 = 6; // log2(SUB_BUCKETS)

/// Number of octaves covered: values up to `2^(OCTAVES + SUB_BUCKET_BITS)`
/// nanoseconds (~2.3 hours) are recorded exactly; larger values clamp.
const OCTAVES: usize = 43;

const BUCKET_COUNT: usize = SUB_BUCKETS * (OCTAVES + 1);

/// A log-linear histogram of `u64` values (nanoseconds by convention).
///
/// # Examples
///
/// ```
/// use atropos_metrics::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v * 1000); // 1µs .. 1ms
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.percentile(50.0);
/// assert!((450_000..=550_000).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Maps a value to its bucket index.
    fn index_of(value: u64) -> usize {
        let v = value.max(1);
        // Values below SUB_BUCKETS fall in the first, purely linear, region.
        if v < SUB_BUCKETS as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BUCKET_BITS + 1).min(OCTAVES as u32);
        let sub = (v >> octave) as usize; // in [SUB_BUCKETS/2, SUB_BUCKETS)
        ((octave as usize) * SUB_BUCKETS + sub).min(BUCKET_COUNT - 1)
    }

    /// Returns a representative value (upper bound) for a bucket index.
    fn value_of(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let octave = (index / SUB_BUCKETS) as u32;
        let sub = (index % SUB_BUCKETS) as u64;
        // Upper edge of the bucket: ((sub + 1) << octave) - 1.
        ((sub + 1) << octave) - 1
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` observations of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::index_of(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean of recorded values, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Returns the value at the given percentile (0–100).
    ///
    /// The result is the upper edge of the bucket containing the requested
    /// rank, clamped to the recorded maximum so `percentile(100.0) == max()`.
    pub fn percentile(&self, pct: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = pct.clamp(0.0, 100.0);
        if pct >= 100.0 {
            return self.max;
        }
        let rank = ((pct / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value_of(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Shorthand for the 50th percentile.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Shorthand for the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Shorthand for the 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Removes all observations.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// True if no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn single_value_is_exact_at_all_percentiles() {
        let mut h = LatencyHistogram::new();
        h.record(1_234_567);
        for pct in [0.0, 1.0, 50.0, 99.0, 100.0] {
            let v = h.percentile(pct);
            let err = (v as f64 - 1_234_567.0).abs() / 1_234_567.0;
            assert!(err < 0.02, "pct {pct}: {v}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn percentiles_of_uniform_range_have_bounded_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for pct in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let expected = pct / 100.0 * 100_000.0;
            let got = h.percentile(pct) as f64;
            let err = (got - expected).abs() / expected;
            assert!(err < 0.03, "pct {pct}: expected {expected}, got {got}");
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in [1u64, 5, 100, 10_000, 1_000_000, 123_456_789] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 50, 777, 999_999_999] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.p50(), all.p50());
        assert_eq!(a.p99(), all.p99());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_n(42_000, 10);
        for _ in 0..10 {
            b.record(42_000);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.p99(), b.p99());
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = LatencyHistogram::new();
        h.record_n(100, 0);
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = LatencyHistogram::new();
        h.record(123);
        h.record(456_789);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn huge_values_clamp_instead_of_panicking() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(100.0), u64::MAX);
        assert!(h.percentile(1.0) >= u64::MAX / 2);
    }

    #[test]
    fn percentile_is_monotonic_in_pct() {
        let mut h = LatencyHistogram::new();
        let mut x = 17u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 10_000_000 + 1);
        }
        let mut last = 0;
        for p in 0..=100 {
            let v = h.percentile(p as f64);
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for shift in 0..40u32 {
            let v = (1u64 << shift) + (1u64 << shift) / 3;
            let idx = LatencyHistogram::index_of(v);
            let back = LatencyHistogram::value_of(idx);
            let err = (back as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.04, "v={v} back={back} err={err}");
        }
    }
}
