#![warn(missing_docs)]

//! Measurement utilities for the Atropos reproduction.
//!
//! This crate provides the building blocks every experiment in the paper's
//! evaluation needs:
//!
//! - [`histogram::LatencyHistogram`]: a log-linear histogram for latency
//!   quantiles (p50/p99/p999) with bounded relative error,
//! - [`timeseries::WindowedSeries`]: per-window throughput and latency
//!   series used by the overload detector and the figure harnesses,
//! - [`summary::RunSummary`]: the end-of-run record (throughput, tail
//!   latency, drop rate, cancellations) and its normalization against a
//!   non-overloaded baseline, mirroring how Figures 4 and 9–14 report data,
//! - [`stats`]: small numeric helpers (percentiles, mean, EWMA),
//! - [`table::Table`]: ASCII table rendering so each benchmark prints the
//!   same rows/series the paper reports.

pub mod histogram;
pub mod stats;
pub mod summary;
pub mod table;
pub mod timeseries;

pub use histogram::LatencyHistogram;
pub use summary::{NormalizedSummary, RunSummary};
pub use table::Table;
pub use timeseries::WindowedSeries;
