//! Windowed time series of throughput and latency.
//!
//! The overload detector (§3.3) and every figure in the evaluation reason
//! about performance per time window: "latency exceeds the SLO while
//! throughput remains flat". [`WindowedSeries`] buckets completion events
//! into fixed-size windows and exposes per-window throughput and latency
//! quantiles.

use crate::histogram::LatencyHistogram;

/// Statistics for one time window.
#[derive(Debug, Clone)]
pub struct WindowStat {
    /// Window start time (ns).
    pub start: u64,
    /// Completed requests in this window.
    pub completed: u64,
    /// Dropped requests in this window.
    pub dropped: u64,
    /// Latency distribution of requests completed in this window.
    pub latency: LatencyHistogram,
}

impl WindowStat {
    fn new(start: u64) -> Self {
        Self {
            start,
            completed: 0,
            dropped: 0,
            latency: LatencyHistogram::new(),
        }
    }

    /// Throughput of this window in requests per second.
    pub fn throughput_qps(&self, window_ns: u64) -> f64 {
        self.completed as f64 * 1e9 / window_ns as f64
    }
}

/// A series of fixed-width windows starting at a given origin.
///
/// Windows are created lazily and contiguously: recording an event at a time
/// several windows ahead fills the gap with empty windows so indices always
/// map linearly to time.
///
/// # Examples
///
/// ```
/// use atropos_metrics::WindowedSeries;
///
/// let mut s = WindowedSeries::new(0, 1_000_000_000); // 1s windows from t=0
/// s.record_completion(500_000_000, 2_000_000); // t=0.5s, latency 2ms
/// s.record_completion(1_500_000_000, 3_000_000); // t=1.5s
/// assert_eq!(s.windows().len(), 2);
/// assert_eq!(s.windows()[0].completed, 1);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedSeries {
    origin: u64,
    window_ns: u64,
    windows: Vec<WindowStat>,
}

impl WindowedSeries {
    /// Creates a series of `window_ns`-wide windows starting at `origin`.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    pub fn new(origin: u64, window_ns: u64) -> Self {
        assert!(window_ns > 0, "window width must be positive");
        Self {
            origin,
            window_ns,
            windows: Vec::new(),
        }
    }

    /// Window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    fn window_at(&mut self, now: u64) -> &mut WindowStat {
        let idx = (now.saturating_sub(self.origin) / self.window_ns) as usize;
        while self.windows.len() <= idx {
            let start = self.origin + self.windows.len() as u64 * self.window_ns;
            self.windows.push(WindowStat::new(start));
        }
        &mut self.windows[idx]
    }

    /// Records a request completion at time `now` with the given latency.
    pub fn record_completion(&mut self, now: u64, latency_ns: u64) {
        let w = self.window_at(now);
        w.completed += 1;
        w.latency.record(latency_ns);
    }

    /// Records a request drop at time `now`.
    pub fn record_drop(&mut self, now: u64) {
        self.window_at(now).dropped += 1;
    }

    /// Materializes (empty) windows up to the one containing `now` without
    /// recording anything. Readers that interpret "no window" as "no data"
    /// must call this so a silent period (a stall) is visible as empty
    /// windows rather than missing ones.
    pub fn touch(&mut self, now: u64) {
        let _ = self.window_at(now);
    }

    /// All windows recorded so far (possibly including empty gap windows).
    pub fn windows(&self) -> &[WindowStat] {
        &self.windows
    }

    /// The last `n` *closed* windows as of time `now` (excludes the window
    /// containing `now`, which is still accumulating).
    pub fn recent_closed(&self, now: u64, n: usize) -> &[WindowStat] {
        let current = (now.saturating_sub(self.origin) / self.window_ns) as usize;
        let end = current.min(self.windows.len());
        let start = end.saturating_sub(n);
        &self.windows[start..end]
    }

    /// Aggregate latency histogram across all windows.
    pub fn total_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for w in &self.windows {
            h.merge(&w.latency);
        }
        h
    }

    /// Total completions across all windows.
    pub fn total_completed(&self) -> u64 {
        self.windows.iter().map(|w| w.completed).sum()
    }

    /// Total drops across all windows.
    pub fn total_dropped(&self) -> u64 {
        self.windows.iter().map(|w| w.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn windows_fill_contiguously() {
        let mut s = WindowedSeries::new(0, SEC);
        s.record_completion(100, 10);
        s.record_completion(5 * SEC + 1, 10);
        assert_eq!(s.windows().len(), 6);
        assert_eq!(s.windows()[0].completed, 1);
        assert_eq!(s.windows()[3].completed, 0);
        assert_eq!(s.windows()[5].completed, 1);
        for (i, w) in s.windows().iter().enumerate() {
            assert_eq!(w.start, i as u64 * SEC);
        }
    }

    #[test]
    fn origin_offsets_window_mapping() {
        let mut s = WindowedSeries::new(10 * SEC, SEC);
        s.record_completion(10 * SEC + 500, 1);
        assert_eq!(s.windows().len(), 1);
        assert_eq!(s.windows()[0].start, 10 * SEC);
        // A time before the origin saturates into window 0 rather than
        // panicking.
        s.record_completion(SEC, 1);
        assert_eq!(s.windows()[0].completed, 2);
    }

    #[test]
    fn throughput_accounts_for_window_width() {
        let mut s = WindowedSeries::new(0, SEC / 2);
        for i in 0..100 {
            s.record_completion(i * 1000, 5);
        }
        let w = &s.windows()[0];
        assert!((w.throughput_qps(SEC / 2) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn recent_closed_excludes_current_window() {
        let mut s = WindowedSeries::new(0, SEC);
        for t in 0..5u64 {
            s.record_completion(t * SEC + 10, 7);
        }
        // now = 4.5s: window 4 is current; closed windows are 0..=3.
        let recent = s.recent_closed(4 * SEC + SEC / 2, 2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].start, 2 * SEC);
        assert_eq!(recent[1].start, 3 * SEC);
    }

    #[test]
    fn recent_closed_handles_short_history() {
        let mut s = WindowedSeries::new(0, SEC);
        s.record_completion(10, 1);
        assert!(s.recent_closed(10, 5).is_empty()); // only current window
        let recent = s.recent_closed(SEC + 1, 5);
        assert_eq!(recent.len(), 1);
    }

    #[test]
    fn totals_aggregate_all_windows() {
        let mut s = WindowedSeries::new(0, SEC);
        s.record_completion(1, 100);
        s.record_completion(SEC + 1, 300);
        s.record_drop(2 * SEC + 1);
        assert_eq!(s.total_completed(), 2);
        assert_eq!(s.total_dropped(), 1);
        assert_eq!(s.total_latency().count(), 2);
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn zero_window_is_rejected() {
        let _ = WindowedSeries::new(0, 0);
    }
}
