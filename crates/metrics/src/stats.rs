//! Small numeric helpers shared by the detector and the experiment harness.

/// Arithmetic mean of a slice, or 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice, or 0 for fewer than 2 samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Percentile (0–100) of an *unsorted* slice by nearest-rank, or 0 if empty.
pub fn percentile(xs: &[f64], pct: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pct = pct.clamp(0.0, 100.0);
    let rank = ((pct / 100.0) * v.len() as f64).ceil().max(1.0) as usize;
    v[rank - 1]
}

/// Exponentially weighted moving average.
///
/// Used by the overload detector to smooth throughput/latency windows and by
/// DARC's per-class service-time profiles.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in (0, 1].
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in (0, 1].
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Feeds one observation and returns the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, or `None` before the first observation.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Current average, or `default` before the first observation.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Discards all state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Relative change `(b - a) / a`, or 0 when `a` is 0.
pub fn rel_change(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        0.0
    } else {
        (b - a) / a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        assert_eq!(stddev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn stddev_known_value() {
        // Population stddev of [2, 4, 4, 4, 5, 5, 7, 9] is 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [3.0, 1.0, 2.0, 5.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn ewma_first_sample_is_identity() {
        let mut e = Ewma::new(0.2);
        assert_eq!(e.get(), None);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.get(), Some(10.0));
    }

    #[test]
    fn ewma_converges_toward_constant_input() {
        let mut e = Ewma::new(0.5);
        e.update(0.0);
        for _ in 0..50 {
            e.update(100.0);
        }
        assert!((e.get_or(0.0) - 100.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn ewma_reset_clears_state() {
        let mut e = Ewma::new(0.3);
        e.update(7.0);
        e.reset();
        assert_eq!(e.get(), None);
        assert_eq!(e.get_or(42.0), 42.0);
    }

    #[test]
    fn rel_change_handles_zero_base() {
        assert_eq!(rel_change(0.0, 5.0), 0.0);
        assert!((rel_change(10.0, 12.0) - 0.2).abs() < 1e-12);
        assert!((rel_change(10.0, 8.0) + 0.2).abs() < 1e-12);
    }
}
