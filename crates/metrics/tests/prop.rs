//! Property-based tests for the measurement utilities.

use atropos_metrics::LatencyHistogram;
use proptest::prelude::*;

proptest! {
    /// Quantiles of the log-linear histogram stay within the bucketing
    /// scheme's relative error bound of the exact empirical quantile.
    #[test]
    fn percentile_error_is_bounded(mut values in prop::collection::vec(1u64..1_000_000_000_000, 1..400)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for pct in [1.0, 25.0, 50.0, 90.0, 99.0] {
            let rank = ((pct / 100.0) * values.len() as f64).ceil().max(1.0) as usize;
            let exact = values[rank - 1] as f64;
            let got = h.percentile(pct) as f64;
            // One sub-bucket of slack in each direction (~1.6%), plus the
            // clamp to [min, max].
            prop_assert!(got >= exact * 0.96 - 1.0, "p{pct}: got {got}, exact {exact}");
            prop_assert!(got <= exact * 1.04 + 1.0, "p{pct}: got {got}, exact {exact}");
        }
    }

    /// Merging histograms equals recording all samples in one.
    #[test]
    fn merge_is_union(a in prop::collection::vec(1u64..1_000_000_000, 0..200),
                      b in prop::collection::vec(1u64..1_000_000_000, 0..200)) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hu = LatencyHistogram::new();
        for &v in &a { ha.record(v); hu.record(v); }
        for &v in &b { hb.record(v); hu.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.sum(), hu.sum());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        for pct in [50.0, 99.0] {
            prop_assert_eq!(ha.percentile(pct), hu.percentile(pct));
        }
    }

    /// Percentile is monotone in the requested quantile.
    #[test]
    fn percentile_monotone(values in prop::collection::vec(1u64..1_000_000_000, 1..300)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0;
        for p in (0..=100).step_by(5) {
            let v = h.percentile(p as f64);
            prop_assert!(v >= last);
            last = v;
        }
        prop_assert!(h.percentile(100.0) == h.max());
    }

    /// Mean × count equals the sum exactly.
    #[test]
    fn mean_consistent(values in prop::collection::vec(1u64..1_000_000, 1..200)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mean = h.mean();
        let expect = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((mean - expect).abs() < 1e-6 * expect.max(1.0));
    }
}
