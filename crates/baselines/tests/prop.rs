//! Property tests for the baseline admission controllers.
//!
//! Two families of properties, both over randomized load shapes:
//!
//! - **monotonicity in load** — more observed queueing pressure never
//!   *loosens* a controller (Breakwater's credit pool never grows with
//!   delay, DAGOR's threshold never falls with wait, Protego's shed set
//!   never shrinks with blocking time), and
//! - **no admit-after-shed flapping within one tick** — between two
//!   control epochs the admission decision is monotone: once a controller
//!   rejects an arrival, it does not admit an equal-or-worse arrival in
//!   the same epoch.

use atropos_app::controller::{AdmitDecision, Controller, RecentPerf, RequestView, ServerView};
use atropos_app::ids::{ClassId, ClientId, RequestId};
use atropos_app::op::Plan;
use atropos_app::request::Request;
use atropos_baselines::breakwater::Breakwater;
use atropos_baselines::dagor::Dagor;
use atropos_baselines::protego::Protego;
use atropos_sim::SimTime;
use proptest::prelude::*;

const MS: u64 = 1_000_000;

/// A view with `n` requests all blocked for `wait_ms`.
fn view_with_waits(now_ms: u64, wait_ms: u64, n: usize) -> ServerView {
    ServerView {
        now: SimTime::from_millis(now_ms),
        requests: (0..n)
            .map(|i| RequestView {
                id: RequestId(i as u64),
                class: ClassId(0),
                client: ClientId(0),
                arrival: SimTime::from_millis(now_ms.saturating_sub(wait_ms)),
                wait_ns: wait_ms * MS,
                current_wait_ns: wait_ms * MS,
                resident_pages: 0,
                heap_bytes: 0,
                progress: 0.0,
                background: false,
                cancellable: true,
                blocked: true,
            })
            .collect(),
        recent: RecentPerf::default(),
        client_p99: vec![],
        queues: vec![],
        workers_active: 0,
        workers_queued: n,
    }
}

fn request(id: u64, class: u8, client: u16) -> Request {
    Request::new(
        RequestId(id),
        ClassId(class as u16),
        ClientId(client),
        Plan::new(),
        SimTime::ZERO,
    )
}

proptest! {
    /// Breakwater: a tick observing a longer queueing delay leaves the
    /// credit pool no larger than one observing a shorter delay, and the
    /// pool never falls below its floor.
    #[test]
    fn breakwater_credits_are_monotone_in_delay(
        lo_ms in 0u64..200,
        extra_ms in 0u64..400,
        n in 1usize..32,
    ) {
        let target = 20 * MS;
        let mut a = Breakwater::new(target);
        let mut b = Breakwater::new(target);
        let hi_ms = lo_ms + extra_ms;
        a.on_tick(SimTime::from_millis(500), &view_with_waits(500, lo_ms, n));
        b.on_tick(SimTime::from_millis(500), &view_with_waits(500, hi_ms, n));
        prop_assert!(
            b.credits() <= a.credits(),
            "delay {hi_ms}ms left more credits ({}) than {lo_ms}ms ({})",
            b.credits(),
            a.credits()
        );
        prop_assert!(b.credits() >= 8.0, "pool fell through its floor");
    }

    /// Breakwater: an over-target tick never grows the pool; an
    /// under-target tick never shrinks it.
    #[test]
    fn breakwater_tick_direction_matches_the_signal(wait_ms in 0u64..400) {
        let target = 20 * MS;
        let mut b = Breakwater::new(target);
        let before = b.credits();
        b.on_tick(SimTime::from_millis(500), &view_with_waits(500, wait_ms, 4));
        if wait_ms * MS > target {
            prop_assert!(b.credits() <= before);
        } else {
            prop_assert!(b.credits() >= before);
        }
    }

    /// Breakwater: within one epoch (no tick, no completion) the
    /// admission decisions over a run of identical arrivals are a prefix
    /// of admits followed only by rejects — it never flaps back to
    /// admitting after it started shedding.
    #[test]
    fn breakwater_never_admits_after_shedding_within_a_tick(
        arrivals in 1usize..2048,
        wait_ms in 0u64..400,
    ) {
        let mut b = Breakwater::new(10 * MS);
        // Random pre-state: one tick under a random load shape.
        b.on_tick(SimTime::from_millis(100), &view_with_waits(100, wait_ms, 8));
        let mut shed = false;
        for i in 0..arrivals {
            let req = request(i as u64, 0, i as u16);
            match b.on_arrival(SimTime::from_millis(101), &req) {
                AdmitDecision::Admit => {
                    prop_assert!(!shed, "admitted arrival {i} after a shed");
                }
                AdmitDecision::Reject => shed = true,
            }
        }
    }

    /// DAGOR: a tick observing a longer average wait raises the
    /// threshold at least as much, and the threshold stays in its range.
    #[test]
    fn dagor_threshold_is_monotone_in_wait(
        lo_ms in 0u64..200,
        extra_ms in 0u64..400,
        n in 1usize..32,
        pre_ticks in 0u64..6,
    ) {
        let mut a = Dagor::new(20 * MS);
        let mut b = Dagor::new(20 * MS);
        // Shared randomized pre-state (same overloaded history for both).
        for t in 0..pre_ticks {
            let v = view_with_waits(100 + t, 60, 8);
            a.on_tick(SimTime::from_millis(100 + t), &v);
            b.on_tick(SimTime::from_millis(100 + t), &v);
        }
        let hi_ms = lo_ms + extra_ms;
        a.on_tick(SimTime::from_millis(900), &view_with_waits(900, lo_ms, n));
        b.on_tick(SimTime::from_millis(900), &view_with_waits(900, hi_ms, n));
        prop_assert!(
            b.threshold() >= a.threshold(),
            "wait {hi_ms}ms left threshold {} below {lo_ms}ms's {}",
            b.threshold(),
            a.threshold()
        );
        prop_assert!(b.threshold() < 64, "threshold left its 64-level grid");
    }

    /// DAGOR: within one epoch, admission is monotone in priority — if
    /// any request is rejected, every admitted request ranks strictly
    /// higher, and re-presenting an identical request cannot flip the
    /// decision (no flapping).
    #[test]
    fn dagor_priority_cut_is_clean_within_a_tick(
        pre_ticks in 0u64..8,
        classes in prop::collection::vec(0u8..8, 1..64),
    ) {
        let mut d = Dagor::new(20 * MS);
        for t in 0..pre_ticks {
            d.on_tick(SimTime::from_millis(100 + t), &view_with_waits(100 + t, 80, 8));
        }
        let mut admitted_floor: Option<u8> = None; // lowest admitted class rank
        let mut decisions = Vec::new();
        for (i, &class) in classes.iter().enumerate() {
            let req = request(i as u64, class, 7);
            let first = d.on_arrival(SimTime::from_millis(900), &req);
            let again = d.on_arrival(SimTime::from_millis(900), &req);
            prop_assert_eq!(first, again, "identical arrival flipped decisions");
            decisions.push((class, first));
            if first == AdmitDecision::Admit {
                admitted_floor = Some(admitted_floor.map_or(class, |f| f.max(class)));
            }
        }
        // All clients share ClientId(7), so priority orders by class alone:
        // every reject must rank strictly below (class above) every admit.
        if let Some(floor) = admitted_floor {
            for (class, dec) in decisions {
                if dec == AdmitDecision::Reject {
                    prop_assert!(
                        class > floor,
                        "class {class} rejected while lower-priority class \
                         {floor} was admitted in the same epoch"
                    );
                }
            }
        }
    }

    /// Protego: within one tick, the victim-shed set is monotone in
    /// blocking time — if a request with accumulated wait `w` is dropped,
    /// every non-exempt request with wait ≥ `w` in the same view is
    /// dropped too, and exempt/background requests never are.
    #[test]
    fn protego_shed_set_is_monotone_in_blocking_time(
        waits_ms in prop::collection::vec(0u64..40, 1..32),
        exempt_wait_ms in 0u64..400,
    ) {
        let slo = 20 * MS;
        let mut p = Protego::new(slo).exempt(vec![ClassId(5)]);
        let now_ms = 1_000u64;
        let mut requests: Vec<RequestView> = waits_ms
            .iter()
            .enumerate()
            .map(|(i, &w)| RequestView {
                id: RequestId(i as u64),
                class: ClassId(0),
                client: ClientId(0),
                arrival: SimTime::from_millis(now_ms - w),
                wait_ns: w * MS,
                current_wait_ns: w * MS,
                resident_pages: 0,
                heap_bytes: 0,
                progress: 0.0,
                background: false,
                cancellable: true,
                blocked: false,
            })
            .collect();
        // One exempt straggler far over every budget.
        requests.push(RequestView {
            id: RequestId(10_000),
            class: ClassId(5),
            client: ClientId(0),
            arrival: SimTime::from_millis(now_ms.saturating_sub(exempt_wait_ms)),
            wait_ns: exempt_wait_ms * MS,
            current_wait_ns: exempt_wait_ms * MS,
            resident_pages: 0,
            heap_bytes: 0,
            progress: 0.0,
            background: false,
            cancellable: true,
            blocked: true,
        });
        let view = ServerView {
            now: SimTime::from_millis(now_ms),
            requests,
            recent: RecentPerf::default(),
            client_p99: vec![],
            queues: vec![],
            workers_active: 1,
            workers_queued: 0,
        };
        let actions = p.on_tick(SimTime::from_millis(now_ms), &view);
        let dropped: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                atropos_app::controller::Action::Drop(id) => Some(id.0),
                _ => None,
            })
            .collect();
        prop_assert!(
            !dropped.contains(&10_000),
            "SLO-exempt request was shed (the Protego blind spot must hold)"
        );
        let min_dropped_wait = dropped
            .iter()
            .map(|&id| waits_ms[id as usize])
            .min();
        if let Some(min_w) = min_dropped_wait {
            for (i, &w) in waits_ms.iter().enumerate() {
                if w >= min_w {
                    prop_assert!(
                        dropped.contains(&(i as u64)),
                        "request {i} (wait {w}ms) spared while wait \
                         {min_w}ms was shed in the same tick"
                    );
                }
            }
        }
    }

    /// Protego: the admission probability stays inside
    /// `[min_admit, 1]` under any sequence of healthy/violating epochs.
    #[test]
    fn protego_admission_probability_stays_bounded(
        p99s in prop::collection::vec(0u64..200, 1..64),
    ) {
        let slo = 20 * MS;
        let mut p = Protego::new(slo);
        for (t, &p99_ms) in p99s.iter().enumerate() {
            let view = ServerView {
                now: SimTime::from_millis(1_000 + t as u64),
                requests: vec![],
                recent: RecentPerf {
                    completed: 10,
                    p99_ns: p99_ms * MS,
                    ..RecentPerf::default()
                },
                client_p99: vec![],
                queues: vec![],
                workers_active: 1,
                workers_queued: 0,
            };
            p.on_tick(SimTime::from_millis(1_000 + t as u64), &view);
        }
        // Drive arrivals and count: the realized admit rate can only be
        // meaningful if the probability stayed in range; assert via the
        // counters (arrivals = rejects + admits).
        let mut admits = 0u64;
        for i in 0..100u64 {
            if p.on_arrival(SimTime::from_millis(2_000), &request(i, 0, i as u16))
                == AdmitDecision::Admit
            {
                admits += 1;
            }
        }
        let (arrivals, rejected, _) = p.counters();
        prop_assert_eq!(arrivals, 100);
        prop_assert_eq!(admits + rejected, 100);
        // min_admit = 0.2: over 100 coin flips, a probability inside its
        // bounds statistically cannot reject everything; a probability
        // that escaped below 0 would admit nothing.
        prop_assert!(admits > 0, "admission probability collapsed to zero");
    }
}
