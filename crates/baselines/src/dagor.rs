//! DAGOR (Zhou et al., SoCC 2018): overload control for WeChat
//! microservices.
//!
//! DAGOR detects overload from average queuing time and sheds load by
//! *priority*: every request carries a (business, user) priority pair, and
//! under overload the service raises its admission threshold so only
//! requests above it enter — guaranteeing that whichever users are
//! admitted get consistent service end-to-end. Here business priority
//! comes from the request class and user priority from the client id, and
//! the threshold adapts with DAGOR's one-step-up / proportional-step-down
//! rule. Like the other admission controllers, it cannot see which
//! admitted request will monopolize an application resource.

use atropos_app::controller::{Action, AdmitDecision, Controller, ServerView};
use atropos_app::request::Request;
use atropos_sim::SimTime;

/// Total admission levels (the paper uses 128 business × 128 user; a
/// smaller grid keeps adaptation steps meaningful at our scale).
const LEVELS: u32 = 64;

/// DAGOR configuration.
#[derive(Debug, Clone)]
pub struct DagorConfig {
    /// Average queuing-time threshold that signals overload (the paper
    /// uses 20 ms at the queue head).
    pub queue_time_ns: u64,
    /// Fraction of currently admitted levels cut per overloaded epoch.
    pub step_down: f64,
}

impl DagorConfig {
    /// Defaults for the given queuing-time threshold.
    pub fn new(queue_time_ns: u64) -> Self {
        Self {
            queue_time_ns,
            step_down: 0.25,
        }
    }
}

/// The DAGOR controller.
#[derive(Debug)]
pub struct Dagor {
    cfg: DagorConfig,
    /// Requests with priority **below** this level are rejected.
    threshold: u32,
    rejected: u64,
}

impl Dagor {
    /// Creates a DAGOR controller.
    pub fn new(queue_time_ns: u64) -> Self {
        Self::with_config(DagorConfig::new(queue_time_ns))
    }

    /// Creates a controller with explicit parameters.
    pub fn with_config(cfg: DagorConfig) -> Self {
        Self {
            cfg,
            threshold: 0,
            rejected: 0,
        }
    }

    /// Current admission threshold (0 = admit everything).
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The composed (business, user) priority of a request, in
    /// `[0, LEVELS)`; higher is more important.
    fn priority(req: &Request) -> u32 {
        Self::priority_of(req.class.0 as u8, req.client.0 as u64)
    }

    /// The composed (business, user) priority for bare identity fields,
    /// in `[0, LEVELS)`; higher is more important. This is the exact
    /// function [`Controller::on_arrival`] ranks by, exposed so harnesses
    /// outside the simulator (the federation tiers) can piggyback the
    /// same priority on their requests without constructing a full
    /// [`Request`].
    pub fn priority_of(class: u8, client: u64) -> u32 {
        // Business priority from the class (lower class id = more
        // important, mirroring how operators hand-rank entry services);
        // user priority from a hash of the client so each user keeps a
        // consistent level.
        let business = 7u32.saturating_sub(class as u32).min(7);
        let user = (client as u32).wrapping_mul(2654435761) % 8;
        business * 8 + user
    }

    /// Bare-field admission check: would a foreground request with this
    /// (class, client) identity be admitted right now? Counts a
    /// rejection exactly like [`Controller::on_arrival`].
    pub fn admit_bare(&mut self, class: u8, client: u64) -> bool {
        if Self::priority_of(class, client) >= self.threshold {
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// Bare-field epoch adaptation: feed the average queuing delay DAGOR
    /// samples and apply the one-step-up / proportional-step-down rule —
    /// the same arithmetic as [`Controller::on_tick`], for harnesses that
    /// measure their own queues.
    pub fn adapt(&mut self, avg_wait_ns: u64) {
        if avg_wait_ns > self.cfg.queue_time_ns {
            let admitted = LEVELS - self.threshold;
            let cut = ((admitted as f64 * self.cfg.step_down).ceil() as u32).max(1);
            self.threshold = (self.threshold + cut).min(LEVELS - 1);
        } else if self.threshold > 0 {
            self.threshold -= 1;
        }
    }
}

impl Controller for Dagor {
    fn name(&self) -> &'static str {
        "dagor"
    }

    fn on_arrival(&mut self, _now: SimTime, req: &Request) -> AdmitDecision {
        if req.background {
            return AdmitDecision::Admit;
        }
        if Self::priority(req) >= self.threshold {
            AdmitDecision::Admit
        } else {
            self.rejected += 1;
            AdmitDecision::Reject
        }
    }

    fn on_tick(&mut self, now: SimTime, view: &ServerView) -> Vec<Action> {
        // Average queuing time of requests still waiting for a worker —
        // the head-of-queue wait DAGOR samples.
        let waits: Vec<u64> = view
            .requests
            .iter()
            .filter(|r| r.blocked)
            .map(|r| now.saturating_sub(r.arrival).as_nanos())
            .collect();
        let avg_wait = if waits.is_empty() {
            0
        } else {
            waits.iter().sum::<u64>() / waits.len() as u64
        };
        self.adapt(avg_wait);
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_app::apps::webserver::{WebServer, WebServerConfig};
    use atropos_app::controller::RecentPerf;
    use atropos_app::ids::{ClassId, ClientId, RequestId};
    use atropos_app::server::SimServer;
    use atropos_app::workload::WorkloadSpec;

    const MS: u64 = 1_000_000;

    fn view_with_waits(now_ms: u64, wait_ms: u64, n: usize) -> ServerView {
        ServerView {
            now: SimTime::from_millis(now_ms),
            requests: (0..n)
                .map(|i| atropos_app::controller::RequestView {
                    id: RequestId(i as u64),
                    class: ClassId(0),
                    client: ClientId(0),
                    arrival: SimTime::from_millis(now_ms - wait_ms),
                    wait_ns: wait_ms * MS,
                    current_wait_ns: wait_ms * MS,
                    resident_pages: 0,
                    heap_bytes: 0,
                    progress: 0.0,
                    background: false,
                    cancellable: true,
                    blocked: true,
                })
                .collect(),
            recent: RecentPerf::default(),
            client_p99: vec![],
            queues: vec![],
            workers_active: 0,
            workers_queued: n,
        }
    }

    #[test]
    fn threshold_rises_under_queueing_and_decays_after() {
        let mut d = Dagor::new(20 * MS);
        assert_eq!(d.threshold(), 0);
        let overloaded = view_with_waits(100, 50, 10);
        d.on_tick(SimTime::from_millis(100), &overloaded);
        let t1 = d.threshold();
        assert!(t1 > 0);
        d.on_tick(SimTime::from_millis(200), &overloaded);
        assert!(d.threshold() > t1);
        let calm = view_with_waits(300, 0, 0);
        let high = d.threshold();
        d.on_tick(SimTime::from_millis(300), &calm);
        assert_eq!(d.threshold(), high - 1);
    }

    #[test]
    fn low_priority_requests_are_shed_first() {
        let mut d = Dagor::new(20 * MS);
        d.threshold = 30;
        let hi = Request::new(
            RequestId(1),
            ClassId(0), // business priority 7 → levels 56..63
            ClientId(1),
            atropos_app::op::Plan::new(),
            SimTime::ZERO,
        );
        let lo = Request::new(
            RequestId(2),
            ClassId(7), // business priority 0 → levels 0..7
            ClientId(1),
            atropos_app::op::Plan::new(),
            SimTime::ZERO,
        );
        assert_eq!(d.on_arrival(SimTime::ZERO, &hi), AdmitDecision::Admit);
        assert_eq!(d.on_arrival(SimTime::ZERO, &lo), AdmitDecision::Reject);
        assert_eq!(d.rejected(), 1);
    }

    #[test]
    fn priorities_are_stable_per_client_and_class() {
        let mk = |class, client| {
            Request::new(
                RequestId(9),
                ClassId(class),
                ClientId(client),
                atropos_app::op::Plan::new(),
                SimTime::ZERO,
            )
        };
        assert_eq!(Dagor::priority(&mk(1, 3)), Dagor::priority(&mk(1, 3)));
        assert!(Dagor::priority(&mk(0, 3)) > Dagor::priority(&mk(5, 3)));
    }

    #[test]
    fn end_to_end_sheds_under_demand_overload() {
        let ws = WebServer::new(WebServerConfig {
            max_clients: 8,
            ..Default::default()
        });
        let wl = WorkloadSpec::new(vec![ws.http_request(1.0)], 20_000.0).clients(8);
        let m = SimServer::new(ws.server_config(), wl, Box::new(Dagor::new(20 * MS)))
            .run(SimTime::from_secs(4), SimTime::from_secs(1));
        assert!(m.dropped > 0, "no shedding");
        assert!(m.completed > 0);
    }
}
