//! Protego (Cho et al., NSDI 2023): overload control for applications
//! with unpredictable lock contention.
//!
//! Protego lets requests execute, monitors each request's blocking time,
//! and *drops requests whose lock wait approaches an SLO violation* —
//! i.e. it sheds the **victims** of contention, not the culprit holding
//! the resource (§2.2 of the Atropos paper). It also performs
//! performance-driven admission control so the victim-drop loop does not
//! run away. The result, reproduced here: tail latency is bounded, but
//! throughput collapses and the drop rate is high whenever a single
//! culprit blocks many victims.

use atropos_app::controller::{Action, AdmitDecision, Controller, ServerView};
use atropos_app::ids::ClassId;
use atropos_app::request::Request;
use atropos_sim::SimTime;

/// Protego configuration.
#[derive(Debug, Clone)]
pub struct ProtegoConfig {
    /// End-to-end latency SLO (ns).
    pub slo_ns: u64,
    /// Drop a request once its accumulated blocking time exceeds this
    /// fraction of the SLO.
    pub wait_fraction: f64,
    /// Multiplicative decrease applied to the admission probability when
    /// the observed tail violates the SLO.
    pub md_factor: f64,
    /// Additive increase applied when the tail is healthy.
    pub ai_step: f64,
    /// Floor for the admission probability.
    pub min_admit: f64,
    /// Request classes outside Protego's scope. Protego sheds requests
    /// "whose lock wait times are approaching SLO violations"; heavy
    /// maintenance operations (backups, dumps, analytics scans) have no
    /// latency SLO, so they are never in its shed set — which is exactly
    /// why Protego cannot remove the culprit (§2.2).
    pub slo_exempt: Vec<ClassId>,
}

impl ProtegoConfig {
    /// Default parameters for a given SLO.
    pub fn new(slo_ns: u64) -> Self {
        Self {
            slo_ns,
            wait_fraction: 0.5,
            md_factor: 0.9,
            ai_step: 0.1,
            min_admit: 0.2,
            slo_exempt: Vec::new(),
        }
    }
}

/// The Protego controller.
#[derive(Debug)]
pub struct Protego {
    cfg: ProtegoConfig,
    admit_prob: f64,
    arrivals: u64,
    rejected: u64,
    victim_drops: u64,
    // Cheap deterministic pseudo-randomness for probabilistic admission.
    lcg: u64,
}

impl Protego {
    /// Creates a Protego controller for the given SLO.
    pub fn new(slo_ns: u64) -> Self {
        Self::with_config(ProtegoConfig::new(slo_ns))
    }

    /// Marks classes as outside Protego's SLO scope (never shed).
    pub fn exempt(mut self, classes: Vec<ClassId>) -> Self {
        self.cfg.slo_exempt = classes;
        self
    }

    /// Creates a controller with explicit parameters.
    pub fn with_config(cfg: ProtegoConfig) -> Self {
        Self {
            cfg,
            admit_prob: 1.0,
            arrivals: 0,
            rejected: 0,
            victim_drops: 0,
            lcg: 0x5DEECE66D,
        }
    }

    fn coin(&mut self) -> f64 {
        self.lcg = self
            .lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.lcg >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `(arrivals, admission rejects, victim drops)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.arrivals, self.rejected, self.victim_drops)
    }
}

impl Controller for Protego {
    fn name(&self) -> &'static str {
        "protego"
    }

    fn on_arrival(&mut self, _now: SimTime, req: &Request) -> AdmitDecision {
        if req.background {
            return AdmitDecision::Admit;
        }
        self.arrivals += 1;
        if self.coin() <= self.admit_prob {
            AdmitDecision::Admit
        } else {
            self.rejected += 1;
            AdmitDecision::Reject
        }
    }

    fn on_tick(&mut self, now: SimTime, view: &ServerView) -> Vec<Action> {
        // Performance-driven admission: AIMD on the admission probability.
        if view.recent.completed > 0 {
            if view.recent.p99_ns > self.cfg.slo_ns {
                self.admit_prob = (self.admit_prob * self.cfg.md_factor).max(self.cfg.min_admit);
            } else {
                self.admit_prob = (self.admit_prob + self.cfg.ai_step).min(1.0);
            }
        } else if view.workers_queued > 0 {
            // Stall: clamp admission hard.
            self.admit_prob = (self.admit_prob * self.cfg.md_factor).max(self.cfg.min_admit);
        }
        // Victim shedding: drop requests whose blocking time approaches
        // the SLO. Time already spent queued for a worker counts — that is
        // exactly the latency the request can no longer recover.
        let budget = (self.cfg.slo_ns as f64 * self.cfg.wait_fraction) as u64;
        let mut actions = Vec::new();
        for r in &view.requests {
            if r.background || self.cfg.slo_exempt.contains(&r.class) {
                continue;
            }
            let age = now.saturating_sub(r.arrival).as_nanos();
            if r.wait_ns > budget || (r.blocked && age > self.cfg.slo_ns) {
                self.victim_drops += 1;
                actions.push(Action::Drop(r.id));
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_app::apps::minidb::{MiniDb, MiniDbConfig};
    use atropos_app::ids::ClassId;
    use atropos_app::server::SimServer;
    use atropos_app::workload::WorkloadSpec;
    use atropos_app::NoControl;

    const MS: u64 = 1_000_000;

    #[test]
    fn healthy_traffic_is_untouched() {
        let db = MiniDb::new(MiniDbConfig::default());
        let wl = WorkloadSpec::new(vec![db.point_select(0.65), db.row_update(0.35)], 8_000.0);
        let m = SimServer::new(db.server_config(), wl, Box::new(Protego::new(20 * MS)))
            .run(SimTime::from_secs(3), SimTime::from_secs(1));
        assert_eq!(m.dropped, 0);
        assert!(m.completed as f64 > 8_000.0 * 2.0 * 0.98);
    }

    /// The Figure 4 behaviour: under the c1 convoy Protego bounds tail
    /// latency but pays with throughput and a large drop rate — and never
    /// touches the culprit.
    #[test]
    fn convoy_is_shed_by_dropping_victims() {
        let db = MiniDb::new(MiniDbConfig::default());
        let mk = |ctrl: Box<dyn atropos_app::Controller>| {
            let wl = WorkloadSpec::new(
                vec![
                    db.point_select(0.65),
                    db.row_update(0.35),
                    db.table_scan(0.0, 40_000),
                    db.backup(100_000_000),
                ],
                8_000.0,
            )
            .inject(SimTime::from_millis(1200), ClassId(2))
            .inject(SimTime::from_millis(1500), ClassId(3));
            SimServer::new(db.server_config(), wl, ctrl)
                .run(SimTime::from_secs(6), SimTime::from_secs(1))
        };
        let uncontrolled = mk(Box::new(NoControl));
        let protego = mk(Box::new(
            Protego::new(20 * MS).exempt(vec![ClassId(2), ClassId(3)]),
        ));
        // Tail latency is far lower than the uncontrolled convoy…
        assert!(
            protego.latency.p99() < uncontrolled.latency.p99() / 2,
            "p99 protego {} vs none {}",
            protego.latency.p99(),
            uncontrolled.latency.p99()
        );
        // …but a substantial fraction of requests is dropped.
        let drop_rate = protego.dropped as f64 / protego.offered.max(1) as f64;
        assert!(drop_rate > 0.05, "drop rate {drop_rate}");
        assert_eq!(protego.canceled, 0, "Protego never cancels culprits");
    }

    #[test]
    fn admission_probability_recovers_after_overload() {
        let mut p = Protego::new(10 * MS);
        let mut view = atropos_app::controller::ServerView {
            now: SimTime::ZERO,
            requests: vec![],
            recent: atropos_app::controller::RecentPerf {
                throughput_qps: 100.0,
                p50_ns: MS,
                p99_ns: 50 * MS, // violating
                completed: 10,
            },
            client_p99: vec![],
            queues: vec![],
            workers_active: 0,
            workers_queued: 0,
        };
        for _ in 0..30 {
            p.on_tick(SimTime::ZERO, &view);
        }
        assert!(p.admit_prob <= 0.2 + 1e-9, "prob {}", p.admit_prob);
        view.recent.p99_ns = MS; // healthy again
        for _ in 0..30 {
            p.on_tick(SimTime::ZERO, &view);
        }
        assert!((p.admit_prob - 1.0).abs() < 1e-9);
    }
}
