//! SEDA adaptive overload control (Welsh & Culler, USITS 2003).
//!
//! SEDA's staged architecture attaches an admission controller to each
//! stage: a token-bucket rate limiter whose rate is adjusted by additive
//! increase / multiplicative decrease against an observed response-time
//! target (the paper's 90th-percentile controller). This reproduction
//! models the whole server as one stage. SEDA appears in the Atropos
//! paper's design space (Figure 1) as classic client-rate overload
//! control: effective against demand overload, blind to which request is
//! the culprit.

use atropos_app::controller::{Action, AdmitDecision, Controller, ServerView};
use atropos_app::request::Request;
use atropos_sim::SimTime;

/// SEDA controller configuration.
#[derive(Debug, Clone)]
pub struct SedaConfig {
    /// Response-time target (ns) for the observed percentile.
    pub target_ns: u64,
    /// Additive rate increase per healthy epoch (requests/second).
    pub additive_qps: f64,
    /// Multiplicative decrease factor on violation.
    pub beta: f64,
    /// Minimum admission rate (requests/second).
    pub min_qps: f64,
    /// Initial admission rate (requests/second).
    pub initial_qps: f64,
}

impl SedaConfig {
    /// Defaults for the given response-time target.
    pub fn new(target_ns: u64) -> Self {
        Self {
            target_ns,
            additive_qps: 200.0,
            beta: 0.9,
            min_qps: 100.0,
            initial_qps: 1e9, // effectively open until the first violation
        }
    }
}

/// The SEDA stage admission controller.
#[derive(Debug)]
pub struct Seda {
    cfg: SedaConfig,
    rate_qps: f64,
    /// Token bucket: tokens accrue at `rate_qps`, one token per admission.
    tokens: f64,
    last_refill: SimTime,
    rejected: u64,
}

impl Seda {
    /// Creates a SEDA controller.
    pub fn new(target_ns: u64) -> Self {
        Self::with_config(SedaConfig::new(target_ns))
    }

    /// Creates a controller with explicit parameters.
    pub fn with_config(cfg: SedaConfig) -> Self {
        Self {
            rate_qps: cfg.initial_qps,
            tokens: 64.0,
            last_refill: SimTime::ZERO,
            rejected: 0,
            cfg,
        }
    }

    /// Current admission rate (requests/second).
    pub fn rate_qps(&self) -> f64 {
        self.rate_qps
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_sub(self.last_refill).as_nanos() as f64 / 1e9;
        self.last_refill = now;
        // Bucket depth of one second of rate bounds bursts.
        self.tokens = (self.tokens + dt * self.rate_qps).min(self.rate_qps.max(64.0));
    }
}

impl Controller for Seda {
    fn name(&self) -> &'static str {
        "seda"
    }

    fn on_arrival(&mut self, now: SimTime, req: &Request) -> AdmitDecision {
        if req.background {
            return AdmitDecision::Admit;
        }
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            AdmitDecision::Admit
        } else {
            self.rejected += 1;
            AdmitDecision::Reject
        }
    }

    fn on_tick(&mut self, _now: SimTime, view: &ServerView) -> Vec<Action> {
        if view.recent.completed == 0 {
            if view.workers_queued > 0 {
                self.rate_qps = (self.rate_qps * self.cfg.beta).max(self.cfg.min_qps);
            }
            return Vec::new();
        }
        // SEDA's controller observes the 90th percentile; the view exposes
        // p50/p99, so interpolate conservatively toward p99.
        let p90_est = view.recent.p50_ns + (view.recent.p99_ns - view.recent.p50_ns) * 4 / 5;
        if p90_est > self.cfg.target_ns {
            self.rate_qps = (self.rate_qps * self.cfg.beta).max(self.cfg.min_qps);
        } else {
            self.rate_qps += self.cfg.additive_qps;
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_app::apps::webserver::{WebServer, WebServerConfig};
    use atropos_app::server::SimServer;
    use atropos_app::workload::WorkloadSpec;

    const MS: u64 = 1_000_000;

    #[test]
    fn healthy_load_passes_untouched() {
        let ws = WebServer::new(WebServerConfig::default());
        let wl = WorkloadSpec::new(vec![ws.http_request(1.0)], 4_000.0);
        let m = SimServer::new(ws.server_config(), wl, Box::new(Seda::new(30 * MS)))
            .run(SimTime::from_secs(3), SimTime::from_secs(1));
        assert_eq!(m.dropped, 0);
        assert!(m.completed as f64 > 4_000.0 * 2.0 * 0.97);
    }

    #[test]
    fn demand_overload_is_rate_limited() {
        let ws = WebServer::new(WebServerConfig {
            max_clients: 8,
            ..Default::default()
        });
        let wl = WorkloadSpec::new(vec![ws.http_request(1.0)], 20_000.0);
        let m = SimServer::new(ws.server_config(), wl, Box::new(Seda::new(30 * MS)))
            .run(SimTime::from_secs(4), SimTime::from_secs(1));
        assert!(m.dropped > 0);
        // The controller clamps after the initial backlog forms; the tail
        // reflects that transient but stays bounded.
        assert!(m.latency.p99() < 5_000 * MS, "p99 {}", m.latency.p99());
    }

    #[test]
    fn rate_recovers_after_violation_clears() {
        let mut s = Seda::with_config(SedaConfig {
            initial_qps: 1_000.0,
            ..SedaConfig::new(10 * MS)
        });
        let bad = ServerView {
            now: SimTime::ZERO,
            requests: vec![],
            recent: atropos_app::controller::RecentPerf {
                throughput_qps: 100.0,
                p50_ns: 20 * MS,
                p99_ns: 80 * MS,
                completed: 50,
            },
            client_p99: vec![],
            queues: vec![],
            workers_active: 8,
            workers_queued: 5,
        };
        for _ in 0..10 {
            s.on_tick(SimTime::ZERO, &bad);
        }
        let collapsed = s.rate_qps();
        assert!(collapsed < 500.0, "rate {collapsed}");
        let good = ServerView {
            recent: atropos_app::controller::RecentPerf {
                throughput_qps: 100.0,
                p50_ns: MS,
                p99_ns: 2 * MS,
                completed: 50,
            },
            ..bad
        };
        for _ in 0..10 {
            s.on_tick(SimTime::ZERO, &good);
        }
        assert!(s.rate_qps() > collapsed + 1_000.0);
    }
}
