//! pBox (Hu et al., SOSP 2023): request-level performance isolation.
//!
//! pBox observes per-request resource usage, identifies the request
//! causing interference, and *reallocates resources away from it* —
//! throttling its execution and shrinking its client's share of
//! contended pools. Crucially (§2.2 of the Atropos paper), pBox never
//! drops a running request: a culprit that already holds a critical lock
//! keeps holding it, so pBox only partially mitigates severe overload.

use std::collections::HashMap;

use atropos_app::controller::{Action, Controller, ResourceEvent, ServerView, TraceKind};
use atropos_app::ids::{ClientId, PoolId, RequestId};
use atropos_sim::SimTime;

/// pBox configuration.
#[derive(Debug, Clone)]
pub struct PBoxConfig {
    /// Latency SLO used to detect interference (ns).
    pub slo_ns: u64,
    /// Initial per-chunk throttle applied to a flagged request (ns).
    pub base_penalty_ns: u64,
    /// Maximum per-chunk throttle (ns).
    pub max_penalty_ns: u64,
    /// Page quota imposed on an aggressor client, as a fraction of its
    /// current residency.
    pub quota_shrink: f64,
    /// Pools the controller may quota (usually all of them).
    pub pools: Vec<PoolId>,
}

impl PBoxConfig {
    /// Defaults for the given SLO; `pools` lists the quota-capable pools.
    pub fn new(slo_ns: u64, pools: Vec<PoolId>) -> Self {
        Self {
            slo_ns,
            // Penalties are deliberately bounded: pBox slows the noisy
            // request's resource consumption, but an unbounded throttle on
            // a request that holds a lock would *extend* the convoy it
            // causes (isolation cannot shorten a critical section).
            base_penalty_ns: 250_000,
            max_penalty_ns: 2_000_000,
            quota_shrink: 0.5,
            pools,
        }
    }
}

/// The pBox controller.
#[derive(Debug)]
pub struct PBox {
    cfg: PBoxConfig,
    /// Per-request interference score from trace events (units acquired +
    /// slow events caused).
    scores: HashMap<RequestId, f64>,
    /// Currently penalized requests and their throttle level.
    penalized: HashMap<RequestId, u64>,
    quotaed: Vec<ClientId>,
    penalties_applied: u64,
}

impl PBox {
    /// Creates a pBox controller.
    pub fn new(cfg: PBoxConfig) -> Self {
        Self {
            cfg,
            scores: HashMap::new(),
            penalized: HashMap::new(),
            quotaed: Vec::new(),
            penalties_applied: 0,
        }
    }

    /// Number of penalty escalations applied so far.
    pub fn penalties_applied(&self) -> u64 {
        self.penalties_applied
    }
}

impl Controller for PBox {
    fn name(&self) -> &'static str {
        "pbox"
    }

    fn on_resource_event(&mut self, _now: SimTime, ev: &ResourceEvent) {
        // Usage tracing: acquisitions and caused-slowdowns raise a
        // request's interference score.
        let w = match ev.kind {
            TraceKind::Get => ev.amount as f64,
            TraceKind::Slow => 4.0 * ev.amount as f64,
            TraceKind::Free => -(ev.amount as f64) * 0.5,
        };
        *self.scores.entry(ev.req).or_insert(0.0) += w;
    }

    fn on_finish(
        &mut self,
        _now: SimTime,
        req: &atropos_app::request::Request,
        _outcome: atropos_app::request::Outcome,
    ) {
        self.scores.remove(&req.id);
        self.penalized.remove(&req.id);
    }

    fn on_tick(&mut self, _now: SimTime, view: &ServerView) -> Vec<Action> {
        let mut actions = Vec::new();
        let unhealthy = (view.recent.completed > 0 && view.recent.p99_ns > self.cfg.slo_ns)
            || (view.recent.completed == 0 && view.workers_queued > 0);
        if unhealthy {
            // Identify the noisiest live request: combine traced score
            // with observed residency (the signals pBox's sandboxes see).
            let noisy = view.requests.iter().filter(|r| !r.blocked).max_by(|a, b| {
                let sa = self.scores.get(&a.id).copied().unwrap_or(0.0)
                    + a.resident_pages as f64
                    + (a.heap_bytes >> 12) as f64;
                let sb = self.scores.get(&b.id).copied().unwrap_or(0.0)
                    + b.resident_pages as f64
                    + (b.heap_bytes >> 12) as f64;
                sa.partial_cmp(&sb).expect("scores are finite")
            });
            if let Some(r) = noisy {
                let level = self
                    .penalized
                    .entry(r.id)
                    .or_insert(self.cfg.base_penalty_ns / 2);
                *level = (*level * 2).min(self.cfg.max_penalty_ns);
                self.penalties_applied += 1;
                actions.push(Action::Throttle(r.id, *level));
                // Shrink the aggressor client's pool shares.
                if !self.quotaed.contains(&r.client) && r.resident_pages > 0 {
                    let quota = ((r.resident_pages as f64) * self.cfg.quota_shrink) as u64;
                    for &pool in &self.cfg.pools {
                        actions.push(Action::SetPoolQuota(pool, r.client, Some(quota.max(16))));
                    }
                    self.quotaed.push(r.client);
                }
            }
        } else {
            // Healthy: lift penalties and quotas.
            for (&id, _) in self.penalized.iter() {
                actions.push(Action::Throttle(id, 0));
            }
            self.penalized.clear();
            for client in self.quotaed.drain(..) {
                for &pool in &self.cfg.pools {
                    actions.push(Action::SetPoolQuota(pool, client, None));
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_app::apps::minidb::{MiniDb, MiniDbConfig};
    use atropos_app::ids::ClassId;
    use atropos_app::server::SimServer;
    use atropos_app::workload::WorkloadSpec;
    use atropos_app::NoControl;

    const MS: u64 = 1_000_000;

    fn pbox_for(db: &MiniDb, slo_ns: u64) -> PBox {
        PBox::new(PBoxConfig::new(slo_ns, vec![db.pool]))
    }

    #[test]
    fn healthy_traffic_is_untouched() {
        let db = MiniDb::new(MiniDbConfig::default());
        let wl = WorkloadSpec::new(vec![db.point_select(0.65), db.row_update(0.35)], 8_000.0);
        let m = SimServer::new(db.server_config(), wl, Box::new(pbox_for(&db, 20 * MS)))
            .run(SimTime::from_secs(3), SimTime::from_secs(1));
        assert_eq!(m.dropped, 0);
        assert!(m.completed as f64 > 8_000.0 * 2.0 * 0.98);
    }

    /// pBox throttles a buffer-pool hog (it can mitigate memory
    /// interference) but never drops or cancels anything.
    #[test]
    fn dump_hog_is_throttled_not_dropped() {
        let db = MiniDb::new(MiniDbConfig::default());
        let wl = WorkloadSpec::new(
            vec![
                db.point_select(0.65),
                db.row_update(0.35),
                db.dump(0.0, 120_000),
            ],
            8_000.0,
        )
        .inject(SimTime::from_millis(1200), ClassId(2));
        let m = SimServer::new(db.server_config(), wl, Box::new(pbox_for(&db, 20 * MS)))
            .run(SimTime::from_secs(5), SimTime::from_secs(1));
        assert_eq!(m.dropped, 0);
        assert_eq!(m.canceled, 0);
    }

    /// The §2.2 limitation: a lock convoy cannot be fixed by throttling —
    /// the culprit already holds the lock.
    #[test]
    fn lock_convoy_is_not_mitigated() {
        let db = MiniDb::new(MiniDbConfig::default());
        let mk = |ctrl: Box<dyn atropos_app::Controller>| {
            let wl = WorkloadSpec::new(
                vec![
                    db.point_select(0.65),
                    db.row_update(0.35),
                    db.table_scan(0.0, 40_000),
                    db.backup(100_000_000),
                ],
                8_000.0,
            )
            .inject(SimTime::from_millis(1200), ClassId(2))
            .inject(SimTime::from_millis(1500), ClassId(3));
            SimServer::new(db.server_config(), wl, ctrl)
                .run(SimTime::from_secs(6), SimTime::from_secs(1))
        };
        let uncontrolled = mk(Box::new(NoControl));
        let pbox = mk(Box::new(pbox_for(&db, 20 * MS)));
        // Throughput stays close to (or below) the uncontrolled collapse.
        assert!(
            (pbox.completed as f64) < uncontrolled.completed as f64 * 1.3,
            "pbox {} vs none {}",
            pbox.completed,
            uncontrolled.completed
        );
    }
}
