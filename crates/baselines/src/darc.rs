//! DARC (Demoulin et al., SOSP 2021): request-type-aware core allocation.
//!
//! DARC (from Perséphone) profiles request *types* and dedicates workers
//! to short requests so they are never stuck behind long ones. It helps
//! when the overload is "long requests occupy all workers" (worker-pool
//! cases), but is blind to application resources: a culprit that holds a
//! lock or thrashes a cache hurts short requests no matter which worker
//! they run on.

use std::collections::HashMap;

use atropos_app::controller::{Action, Controller, ServerView};
use atropos_app::ids::ClassId;
use atropos_app::request::{Outcome, Request};
use atropos_metrics::stats::Ewma;
use atropos_sim::SimTime;

/// DARC configuration.
#[derive(Debug, Clone)]
pub struct DarcConfig {
    /// Total workers in the server (needed to size reservations).
    pub workers: usize,
    /// A class is "long" if its profiled service time exceeds this
    /// multiple of the shortest profiled class.
    pub long_multiple: f64,
    /// Fraction of workers long classes may occupy, combined.
    pub long_share: f64,
    /// EWMA smoothing for per-class service profiles.
    pub alpha: f64,
}

impl DarcConfig {
    /// Defaults for a server with `workers` workers.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            long_multiple: 20.0,
            long_share: 0.25,
            alpha: 0.2,
        }
    }
}

/// The DARC controller.
#[derive(Debug)]
pub struct Darc {
    cfg: DarcConfig,
    profiles: HashMap<ClassId, Ewma>,
    limited: HashMap<ClassId, usize>,
}

impl Darc {
    /// Creates a DARC controller.
    pub fn new(cfg: DarcConfig) -> Self {
        Self {
            cfg,
            profiles: HashMap::new(),
            limited: HashMap::new(),
        }
    }

    /// The profiled service time for a class, if observed.
    pub fn profile(&self, class: ClassId) -> Option<f64> {
        self.profiles.get(&class).and_then(|e| e.get())
    }

    /// Classes currently restricted, with their worker caps.
    pub fn limited(&self) -> &HashMap<ClassId, usize> {
        &self.limited
    }
}

impl Controller for Darc {
    fn name(&self) -> &'static str {
        "darc"
    }

    fn on_finish(&mut self, _now: SimTime, req: &Request, outcome: Outcome) {
        if outcome != Outcome::Completed || req.background {
            return;
        }
        // Profile service demand by total work executed; latency would
        // conflate queueing with service and mislabel victims as long.
        let service_ns = req.work_total.saturating_mul(1_000) as f64;
        self.profiles
            .entry(req.class)
            .or_insert_with(|| Ewma::new(self.cfg.alpha))
            .update(service_ns);
    }

    fn on_start(&mut self, _now: SimTime, req: &Request) {
        // Long requests that never complete still need profiling: seed
        // the profile from the plan's declared work.
        self.profiles
            .entry(req.class)
            .or_insert_with(|| Ewma::new(self.cfg.alpha))
            .update(req.work_total.saturating_mul(1_000) as f64);
    }

    fn on_tick(&mut self, _now: SimTime, _view: &ServerView) -> Vec<Action> {
        let Some(shortest) = self
            .profiles
            .values()
            .filter_map(|e| e.get())
            .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.min(x))))
        else {
            return Vec::new();
        };
        let threshold = shortest * self.cfg.long_multiple;
        let cap = ((self.cfg.workers as f64 * self.cfg.long_share) as usize).max(1);
        let mut actions = Vec::new();
        for (&class, profile) in &self.profiles {
            let Some(svc) = profile.get() else { continue };
            let is_long = svc > threshold;
            let was_limited = self.limited.contains_key(&class);
            if is_long && !was_limited {
                self.limited.insert(class, cap);
                actions.push(Action::SetClassWorkerLimit(class, Some(cap)));
            } else if !is_long && was_limited {
                self.limited.remove(&class);
                actions.push(Action::SetClassWorkerLimit(class, None));
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_app::apps::webserver::{WebServer, WebServerConfig};
    use atropos_app::server::SimServer;
    use atropos_app::workload::WorkloadSpec;
    use atropos_app::NoControl;

    #[test]
    fn long_classes_get_limited() {
        let ws = WebServer::new(WebServerConfig::default());
        let cfg = ws.server_config();
        let wl = WorkloadSpec::new(
            vec![
                ws.http_request(0.995),
                ws.slow_script(0.005, 30_000_000_000),
            ],
            5_000.0,
        );
        let mut darc = Darc::new(DarcConfig::new(cfg.workers));
        // Feed profiles directly via hooks.
        let m = {
            let d = Darc::new(DarcConfig::new(cfg.workers));
            SimServer::new(cfg, wl, Box::new(d)).run(SimTime::from_secs(6), SimTime::from_secs(1))
        };
        // DARC keeps more of the worker pool available to short requests
        // than the uncontrolled run, but it cannot fix the queue slots the
        // scripts already hold — merely bound how many they take.
        let ws2 = WebServer::new(WebServerConfig::default());
        let wl2 = WorkloadSpec::new(
            vec![
                ws2.http_request(0.995),
                ws2.slow_script(0.005, 30_000_000_000),
            ],
            5_000.0,
        );
        let unc = SimServer::new(ws2.server_config(), wl2, Box::new(NoControl))
            .run(SimTime::from_secs(6), SimTime::from_secs(1));
        assert!(
            m.completed >= unc.completed,
            "darc {} vs none {}",
            m.completed,
            unc.completed
        );
        // Unit-level: profiles separate the classes.
        let mut req_short = atropos_app::request::Request::new(
            atropos_app::ids::RequestId(1),
            ClassId(0),
            atropos_app::ids::ClientId(0),
            atropos_app::op::Plan::new().compute(1_000_000),
            SimTime::ZERO,
        );
        let req_long = atropos_app::request::Request::new(
            atropos_app::ids::RequestId(2),
            ClassId(1),
            atropos_app::ids::ClientId(0),
            atropos_app::op::Plan::new().compute(30_000_000_000),
            SimTime::ZERO,
        );
        req_short.work_done = req_short.work_total;
        darc.on_finish(SimTime::ZERO, &req_short, Outcome::Completed);
        darc.on_start(SimTime::ZERO, &req_long);
        let view = ServerView {
            now: SimTime::ZERO,
            requests: vec![],
            recent: Default::default(),
            client_p99: vec![],
            queues: vec![],
            workers_active: 0,
            workers_queued: 0,
        };
        let actions = darc.on_tick(SimTime::ZERO, &view);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SetClassWorkerLimit(ClassId(1), Some(_)))));
        assert!(darc.limited().contains_key(&ClassId(1)));
        assert!(!darc.limited().contains_key(&ClassId(0)));
    }

    #[test]
    fn classes_are_unrestricted_when_profiles_converge() {
        let mut darc = Darc::new(DarcConfig::new(64));
        let mk = |id: u16, work_ns: u64| {
            atropos_app::request::Request::new(
                atropos_app::ids::RequestId(id as u64),
                ClassId(id),
                atropos_app::ids::ClientId(0),
                atropos_app::op::Plan::new().compute(work_ns),
                SimTime::ZERO,
            )
        };
        darc.on_finish(SimTime::ZERO, &mk(0, 1_000_000), Outcome::Completed);
        darc.on_finish(SimTime::ZERO, &mk(1, 1_200_000), Outcome::Completed);
        let view = ServerView {
            now: SimTime::ZERO,
            requests: vec![],
            recent: Default::default(),
            client_p99: vec![],
            queues: vec![],
            workers_active: 0,
            workers_queued: 0,
        };
        assert!(darc.on_tick(SimTime::ZERO, &view).is_empty());
    }
}
