//! Breakwater (Cho et al., OSDI 2020): credit-based admission control.
//!
//! Breakwater issues credits to clients based on observed queueing delay:
//! when delay exceeds the target, the credit pool shrinks
//! multiplicatively; when there is headroom, it grows additively. It is
//! effective for demand (CPU/network) overload but has no visibility into
//! application resources (§2.2): it cannot tell which request will
//! monopolize a lock or a buffer pool. In this reproduction it also
//! serves as the fallback Atropos invokes for *regular* overload (§3.3).

use atropos_app::controller::{Action, AdmitDecision, Controller, ServerView};
use atropos_app::request::{Outcome, Request};
use atropos_sim::SimTime;

/// Breakwater configuration.
#[derive(Debug, Clone)]
pub struct BreakwaterConfig {
    /// Target queueing delay (ns); the paper derives it from the SLO.
    pub target_delay_ns: u64,
    /// Additive credit increase per healthy epoch.
    pub additive: f64,
    /// Multiplicative decrease factor on violation.
    pub beta: f64,
    /// Initial and minimum credit pool.
    pub min_credits: f64,
}

impl BreakwaterConfig {
    /// Defaults for the given delay target.
    pub fn new(target_delay_ns: u64) -> Self {
        Self {
            target_delay_ns,
            additive: 16.0,
            beta: 0.2,
            min_credits: 8.0,
        }
    }
}

/// The Breakwater controller.
#[derive(Debug)]
pub struct Breakwater {
    cfg: BreakwaterConfig,
    credits: f64,
    in_flight: u64,
    rejected: u64,
}

impl Breakwater {
    /// Creates a controller with an initial credit pool.
    pub fn new(target_delay_ns: u64) -> Self {
        Self::with_config(BreakwaterConfig::new(target_delay_ns))
    }

    /// Creates a controller with explicit parameters.
    pub fn with_config(cfg: BreakwaterConfig) -> Self {
        Self {
            credits: 1_000.0,
            in_flight: 0,
            rejected: 0,
            cfg,
        }
    }

    /// Current credit pool size.
    pub fn credits(&self) -> f64 {
        self.credits
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

impl Controller for Breakwater {
    fn name(&self) -> &'static str {
        "breakwater"
    }

    fn on_arrival(&mut self, _now: SimTime, req: &Request) -> AdmitDecision {
        if req.background {
            return AdmitDecision::Admit;
        }
        if (self.in_flight as f64) < self.credits {
            self.in_flight += 1;
            AdmitDecision::Admit
        } else {
            self.rejected += 1;
            AdmitDecision::Reject
        }
    }

    fn on_finish(&mut self, _now: SimTime, req: &Request, outcome: Outcome) {
        if !req.background && outcome != Outcome::Dropped || req.retry {
            self.in_flight = self.in_flight.saturating_sub(1);
        } else if !req.background {
            // Rejected requests were never admitted; dropped-after-admit
            // still frees a credit.
            if req.started_at.is_some() || req.cancel_flag {
                self.in_flight = self.in_flight.saturating_sub(1);
            }
        }
    }

    fn on_tick(&mut self, now: SimTime, view: &ServerView) -> Vec<Action> {
        // Queueing delay estimate: age of the oldest request still waiting
        // for a worker (Breakwater measures time-in-queue at the server).
        let queue_delay = view
            .requests
            .iter()
            .filter(|r| r.blocked)
            .map(|r| now.saturating_sub(r.arrival).as_nanos())
            .max()
            .unwrap_or(0);
        if queue_delay > self.cfg.target_delay_ns {
            let over =
                (queue_delay - self.cfg.target_delay_ns) as f64 / self.cfg.target_delay_ns as f64;
            self.credits *= 1.0 - self.cfg.beta * over.min(1.0);
            self.credits = self.credits.max(self.cfg.min_credits);
        } else {
            self.credits += self.cfg.additive;
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_app::apps::webserver::{WebServer, WebServerConfig};
    use atropos_app::server::SimServer;
    use atropos_app::workload::WorkloadSpec;

    const MS: u64 = 1_000_000;

    #[test]
    fn healthy_load_keeps_credits_growing() {
        let ws = WebServer::new(WebServerConfig::default());
        let wl = WorkloadSpec::new(vec![ws.http_request(1.0)], 4_000.0);
        let m = SimServer::new(ws.server_config(), wl, Box::new(Breakwater::new(20 * MS)))
            .run(SimTime::from_secs(3), SimTime::from_secs(1));
        assert_eq!(m.dropped, 0);
        assert!(m.completed as f64 > 4_000.0 * 2.0 * 0.97);
    }

    #[test]
    fn demand_overload_is_shed_by_admission() {
        // Offered load 4x the worker-pool capacity: Breakwater sheds the
        // excess and keeps latency of admitted requests bounded.
        let ws = WebServer::new(WebServerConfig {
            max_clients: 8,
            ..Default::default()
        });
        let wl = WorkloadSpec::new(vec![ws.http_request(1.0)], 20_000.0);
        let m = SimServer::new(ws.server_config(), wl, Box::new(Breakwater::new(20 * MS)))
            .run(SimTime::from_secs(4), SimTime::from_secs(1));
        assert!(m.dropped > 0, "no shedding under 4x overload");
        assert!(
            m.latency.p99() < 500 * MS,
            "p99 {} not bounded",
            m.latency.p99()
        );
    }

    #[test]
    fn credits_shrink_on_delay_and_recover() {
        let mut b = Breakwater::new(10 * MS);
        let start = b.credits();
        let view = ServerView {
            now: SimTime::from_millis(200),
            requests: vec![atropos_app::controller::RequestView {
                id: atropos_app::ids::RequestId(1),
                class: atropos_app::ids::ClassId(0),
                client: atropos_app::ids::ClientId(0),
                arrival: SimTime::ZERO,
                wait_ns: 150 * MS,
                current_wait_ns: 150 * MS,
                resident_pages: 0,
                heap_bytes: 0,
                progress: 0.0,
                background: false,
                cancellable: true,
                blocked: true,
            }],
            recent: Default::default(),
            client_p99: vec![],
            queues: vec![],
            workers_active: 1,
            workers_queued: 1,
        };
        b.on_tick(SimTime::from_millis(200), &view);
        assert!(b.credits() < start);
        let healthy = ServerView {
            requests: vec![],
            ..view
        };
        for _ in 0..100 {
            b.on_tick(SimTime::from_millis(300), &healthy);
        }
        assert!(b.credits() > start);
    }
}
