//! PARTIES (Chen et al., ASPLOS 2019): QoS-aware resource partitioning.
//!
//! PARTIES monitors each tenant's tail latency and, when one violates its
//! QoS, incrementally takes one resource "step" from a tenant with slack
//! and gives it to the victim, backing off if the adjustment did not
//! help. Following the paper's §5.2 port, latency is monitored and
//! resources allocated at the *client* level: buffer-pool quotas shrink
//! for the aggressor client and its live requests are throttled (the
//! analog of shrinking its core/cache partitions). Like pBox, PARTIES
//! cannot revoke a lock a culprit already holds.

use std::collections::HashMap;

use atropos_app::controller::{Action, Controller, ServerView};
use atropos_app::ids::{ClientId, PoolId};
use atropos_sim::SimTime;

/// PARTIES configuration.
#[derive(Debug, Clone)]
pub struct PartiesConfig {
    /// Per-client tail-latency QoS target (ns).
    pub slo_ns: u64,
    /// Pools whose per-client quota can be adjusted.
    pub pools: Vec<PoolId>,
    /// Relative step size per adjustment epoch.
    pub step: f64,
    /// Throttle step applied to aggressor requests (ns per chunk).
    pub throttle_step_ns: u64,
    /// Upper bound on the throttle (ns).
    pub max_throttle_ns: u64,
}

impl PartiesConfig {
    /// Defaults for the given QoS target.
    pub fn new(slo_ns: u64, pools: Vec<PoolId>) -> Self {
        Self {
            slo_ns,
            pools,
            step: 0.2,
            // Bounded like pBox's penalties: throttling a request that
            // holds a lock extends the convoy it causes, so the partition
            // squeeze must not slow the aggressor by more than ~2x.
            throttle_step_ns: 500_000,
            max_throttle_ns: 2_000_000,
        }
    }
}

/// The PARTIES controller.
#[derive(Debug)]
pub struct Parties {
    cfg: PartiesConfig,
    /// Current quota per (client); `None` entry means unconstrained.
    quotas: HashMap<ClientId, u64>,
    /// Current throttle level per aggressor client.
    throttles: HashMap<ClientId, u64>,
    adjustments: u64,
    healthy_ticks: u32,
}

impl Parties {
    /// Creates a PARTIES controller.
    pub fn new(cfg: PartiesConfig) -> Self {
        Self {
            cfg,
            quotas: HashMap::new(),
            throttles: HashMap::new(),
            adjustments: 0,
            healthy_ticks: 0,
        }
    }

    /// Number of partition adjustments made.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }
}

impl Controller for Parties {
    fn name(&self) -> &'static str {
        "parties"
    }

    fn on_tick(&mut self, _now: SimTime, view: &ServerView) -> Vec<Action> {
        let mut actions = Vec::new();
        // Victim: any client whose window p99 violates QoS.
        let victim = view
            .client_p99
            .iter()
            .find(|(_, p99)| *p99 > self.cfg.slo_ns)
            .map(|(c, _)| *c);
        let stalled = view.recent.completed == 0 && view.workers_queued > 0;
        if victim.is_none() && !stalled {
            self.healthy_ticks += 1;
            if self.healthy_ticks >= 5 {
                // Sustained health: relax partitions one step at a time.
                if let Some((&client, _)) = self.quotas.iter().next() {
                    self.quotas.remove(&client);
                    self.throttles.remove(&client);
                    for &pool in &self.cfg.pools {
                        actions.push(Action::SetPoolQuota(pool, client, None));
                    }
                }
            }
            return actions;
        }
        self.healthy_ticks = 0;
        // Aggressor: the client using the most partitionable resources
        // (pages + heap) that is not itself a victim.
        let mut usage: HashMap<ClientId, u64> = HashMap::new();
        for r in &view.requests {
            *usage.entry(r.client).or_insert(0) += r.resident_pages + (r.heap_bytes >> 12);
        }
        let aggressor = usage
            .iter()
            .filter(|(c, _)| Some(**c) != victim)
            .max_by_key(|(_, u)| **u)
            .map(|(c, u)| (*c, *u));
        let Some((aggressor, pages)) = aggressor else {
            return actions;
        };
        self.adjustments += 1;
        // Step its pool partition down.
        let current = self
            .quotas
            .get(&aggressor)
            .copied()
            .unwrap_or(pages.max(64));
        let next = ((current as f64) * (1.0 - self.cfg.step)) as u64;
        let next = next.max(16);
        self.quotas.insert(aggressor, next);
        for &pool in &self.cfg.pools {
            actions.push(Action::SetPoolQuota(pool, aggressor, Some(next)));
        }
        // And throttle its running requests one step (the core/bandwidth
        // partition analog).
        let level = self.throttles.entry(aggressor).or_insert(0);
        *level = (*level + self.cfg.throttle_step_ns).min(self.cfg.max_throttle_ns);
        let level = *level;
        for r in view.requests.iter().filter(|r| r.client == aggressor) {
            actions.push(Action::Throttle(r.id, level));
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_app::controller::RecentPerf;
    use atropos_app::ids::RequestId;

    const MS: u64 = 1_000_000;

    fn view(client_p99: Vec<(ClientId, u64)>, requests: Vec<(u64, u16, u64)>) -> ServerView {
        ServerView {
            now: SimTime::ZERO,
            requests: requests
                .into_iter()
                .map(|(id, client, pages)| atropos_app::controller::RequestView {
                    id: RequestId(id),
                    class: atropos_app::ids::ClassId(0),
                    client: ClientId(client),
                    arrival: SimTime::ZERO,
                    wait_ns: 0,
                    current_wait_ns: 0,
                    resident_pages: pages,
                    heap_bytes: 0,
                    progress: 0.1,
                    background: false,
                    cancellable: true,
                    blocked: false,
                })
                .collect(),
            recent: RecentPerf {
                throughput_qps: 100.0,
                p50_ns: MS,
                p99_ns: 2 * MS,
                completed: 10,
            },
            client_p99,
            queues: vec![],
            workers_active: 1,
            workers_queued: 0,
        }
    }

    #[test]
    fn healthy_clients_trigger_no_adjustment() {
        let mut p = Parties::new(PartiesConfig::new(10 * MS, vec![PoolId(0)]));
        let v = view(vec![(ClientId(0), MS), (ClientId(1), MS)], vec![(1, 0, 10)]);
        assert!(p.on_tick(SimTime::ZERO, &v).is_empty());
        assert_eq!(p.adjustments(), 0);
    }

    #[test]
    fn violating_client_shrinks_the_aggressor() {
        let mut p = Parties::new(PartiesConfig::new(10 * MS, vec![PoolId(0)]));
        // Client 0 violates; client 1 hogs pages.
        let v = view(
            vec![(ClientId(0), 50 * MS), (ClientId(1), MS)],
            vec![(1, 0, 5), (2, 1, 10_000)],
        );
        let actions = p.on_tick(SimTime::ZERO, &v);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SetPoolQuota(_, ClientId(1), Some(q)) if *q < 10_000)));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Throttle(RequestId(2), _))));
        // Repeated violations keep stepping the quota down.
        let q1 = p.quotas[&ClientId(1)];
        p.on_tick(SimTime::ZERO, &v);
        assert!(p.quotas[&ClientId(1)] < q1);
        assert_eq!(p.adjustments(), 2);
    }

    #[test]
    fn sustained_health_relaxes_partitions() {
        let mut p = Parties::new(PartiesConfig::new(10 * MS, vec![PoolId(0)]));
        let bad = view(
            vec![(ClientId(0), 50 * MS), (ClientId(1), MS)],
            vec![(2, 1, 10_000)],
        );
        p.on_tick(SimTime::ZERO, &bad);
        assert!(!p.quotas.is_empty());
        let good = view(vec![(ClientId(0), MS), (ClientId(1), MS)], vec![]);
        let mut released = false;
        for _ in 0..10 {
            let actions = p.on_tick(SimTime::ZERO, &good);
            if actions
                .iter()
                .any(|a| matches!(a, Action::SetPoolQuota(_, _, None)))
            {
                released = true;
            }
        }
        assert!(released);
        assert!(p.quotas.is_empty());
    }

    #[test]
    fn aggressor_is_never_the_victim_itself() {
        let mut p = Parties::new(PartiesConfig::new(10 * MS, vec![PoolId(0)]));
        // Only the violating client holds pages: nothing to shrink from a
        // different tenant, but the victim must not be chosen.
        let v = view(vec![(ClientId(0), 50 * MS)], vec![(1, 0, 10_000)]);
        let actions = p.on_tick(SimTime::ZERO, &v);
        assert!(!actions
            .iter()
            .any(|a| matches!(a, Action::SetPoolQuota(_, ClientId(0), Some(_)))));
    }
}
