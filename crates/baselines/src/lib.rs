#![warn(missing_docs)]

//! Reimplementations of the systems Atropos is compared against.
//!
//! The paper evaluates against four state-of-the-art systems (§5.2) plus
//! the uncontrolled baseline. Each is reimplemented here as a decision
//! policy over the same simulator hooks, mirroring how the paper ported
//! each system into its six applications "to ensure fair and consistent
//! evaluation":
//!
//! - [`protego::Protego`] — lock-contention-aware overload control
//!   (NSDI'23): admission control plus dropping *victim* requests whose
//!   accumulated blocking time approaches the SLO,
//! - [`pbox::PBox`] — request-level performance isolation (SOSP'23):
//!   detects interference and penalizes the noisiest request/client by
//!   throttling and quota reduction — never cancels,
//! - [`darc::Darc`] — request-type-aware scheduling (DARC / Perséphone,
//!   SOSP'21): profiles per-class service times and reserves workers for
//!   short classes so long requests cannot occupy every worker,
//! - [`parties::Parties`] — QoS-driven resource partitioning (ASPLOS'19):
//!   monitors per-client tail latency and incrementally shifts resource
//!   partitions from aggressors to victims,
//! - [`breakwater::Breakwater`] — credit-based admission control on
//!   queueing delay (OSDI'20); also the fallback the paper wires Atropos'
//!   *regular overload* path to.
//!
//! Two further systems from the paper's design-space figure (Figure 1)
//! round out the admission-control corner:
//!
//! - [`seda::Seda`] — SEDA's per-stage adaptive rate controller
//!   (USITS'03),
//! - [`dagor::Dagor`] — WeChat's priority-based admission with queuing
//!   -time overload detection (SoCC'18).

pub mod breakwater;
pub mod dagor;
pub mod darc;
pub mod parties;
pub mod pbox;
pub mod protego;
pub mod seda;

pub use breakwater::Breakwater;
pub use dagor::Dagor;
pub use darc::Darc;
pub use parties::Parties;
pub use pbox::PBox;
pub use protego::Protego;
pub use seda::Seda;
