//! End-to-end two-tier live test: real threads, real clock, real RPC
//! edge — the headline federation property.
//!
//! A backend culprit convoys the backend shard lock. With Atropos
//! federated control the backend's detector blames the *remote root*,
//! the cancel crosses the edge upstream, and the frontend cancels
//! exactly that root: victim tail latency recovers, zero innocents are
//! canceled. Under the DAGOR-style per-node admission baseline the
//! culprit (highest business priority) is always admitted, so the
//! baseline can only shed innocent victims while the convoy persists.
//!
//! Timing assertions are deliberately coarse (≥2x, not percentages):
//! the test runs on shared CI machines.

use std::time::Duration;

use atropos_fed::{run_fed_live, FedLiveConfig, FedMode};

fn cfg() -> FedLiveConfig {
    FedLiveConfig::default()
}

#[test]
fn atropos_cancels_the_remote_root_and_recovers_victim_tail() {
    let base = run_fed_live(cfg(), FedMode::NoControl);
    assert!(base.culprit_started, "culprit never reached the backend");
    assert!(
        !base.root_canceled,
        "NoControl must not cancel anything, canceled {:?}",
        base.frontend_canceled_roots
    );
    assert!(base.victim_count > 20, "too few victims to judge tails");

    let atropos = run_fed_live(cfg(), FedMode::Atropos);
    assert!(atropos.culprit_started);
    assert!(
        atropos.root_canceled,
        "culprit root never canceled end to end; edge stats {:?}",
        atropos.edge
    );
    assert_eq!(
        atropos.innocent_upstream_cancels, 0,
        "innocent roots canceled upstream: {:?}",
        atropos.frontend_canceled_roots
    );
    assert!(atropos.edge.upstream_cancels >= 1);
    assert_eq!(atropos.edge.frames_rejected, 0);
    assert!(atropos.victim_count > 20);
    assert!(
        atropos.time_to_cancel.unwrap() < Duration::from_secs(1),
        "cancel took {:?}",
        atropos.time_to_cancel
    );
    assert!(
        base.victim_p99_ns >= 2 * atropos.victim_p99_ns,
        "victim p99 did not recover >=2x: NoControl {} ns vs Atropos {} ns",
        base.victim_p99_ns,
        atropos.victim_p99_ns
    );
}

#[test]
fn dagor_baseline_sheds_victims_and_misses_the_culprit() {
    let dagor = run_fed_live(cfg(), FedMode::DagorAdmission);
    assert!(dagor.culprit_started, "culprit must be admitted by DAGOR");
    assert!(
        !dagor.root_canceled,
        "per-node admission has no cancel path to the root"
    );
    assert!(
        dagor.shed >= 1,
        "DAGOR shed no one — overload never pushed admission down"
    );
    assert_eq!(dagor.innocent_upstream_cancels, 0);
}
