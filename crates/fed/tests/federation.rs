//! Federation test suite: quiet stories, chaos-armed soaks, the
//! corrupted-frame rejection path, and bit-exact determinism.
//!
//! Quiet runs must play the whole story: the backend's detector blames
//! the remote root, the cancel crosses the edge(s) upstream, the
//! frontend cancels exactly the culprit root and zero innocents. Armed
//! runs layer a seeded single-node fault plan on the culprit backend and
//! seeded edge faults on the culprit edge; the story may degrade, the
//! invariants (I1–I9) may not.

use std::collections::HashSet;

use atropos_chaos::check_edge_blame;
use atropos_fed::{run_fed_scenario, FedScenarioKind, ROOT_HOG_KEY};
use atropos_substrate::{EdgeIdentity, FedEdge, NodeId, FED_KEY_BASE};

const SOAK_PLANS: u64 = 128;

#[test]
fn quiet_story_plays_out_for_every_kind() {
    for kind in FedScenarioKind::ALL {
        let out = run_fed_scenario(kind, 11, false);
        assert!(
            out.violation.is_none(),
            "{}: {:?}",
            kind.name(),
            out.violation
        );
        assert!(
            out.root_canceled,
            "{}: culprit root never canceled end to end: {:?}",
            kind.name(),
            out.canceled_roots
        );
        assert_eq!(
            out.victim_roots_canceled,
            0,
            "{}: innocent upstream cancels",
            kind.name()
        );
        assert!(out.gave_up_victims > 0, "{}: no convoy formed", kind.name());
        assert!(
            out.drained_victims > 0,
            "{}: victims never drained after the cancel",
            kind.name()
        );
        // The cancel crossed the culprit edge with blame intact.
        let culprit = kind.fanout() - 1;
        assert!(out.edge_stats[culprit].upstream_cancels >= 1);
        assert_eq!(out.edge_stats[culprit].frames_rejected, 0);
        let obs = out
            .observations
            .iter()
            .find(|o| o.root_key == ROOT_HOG_KEY)
            .unwrap_or_else(|| panic!("{}: no observation for the hog root", kind.name()));
        assert_eq!(obs.origin_node, 0);
        assert!(obs.had_blame);
        // The blamed resource is the culprit backend's shard lock.
        let blamed = format!("n{}/shard_lock", culprit + 1);
        assert!(
            out.blamed_resources.contains(&blamed),
            "{}: blamed {:?}, wanted {blamed}",
            kind.name(),
            out.blamed_resources
        );
        // Episodes were recorded on both sides of the edge: the backend
        // explains the detection, the frontend explains the delivered
        // operator cancel.
        assert!(out.episodes.iter().any(|(n, _)| n.0 != 0));
        assert!(out
            .episodes
            .iter()
            .any(|(n, e)| n.0 == 0 && e.origin == "operator"));
    }
}

#[test]
fn fan_convoy_exercises_every_edge() {
    let out = run_fed_scenario(FedScenarioKind::FanConvoy, 5, false);
    assert!(out.violation.is_none(), "{:?}", out.violation);
    assert_eq!(out.edge_stats.len(), 3);
    for (b, st) in out.edge_stats.iter().enumerate() {
        assert!(
            st.frames_carried > 0,
            "backend {b} carried no identity frames"
        );
        assert_eq!(st.frames_rejected, 0, "backend {b} rejected frames");
    }
    // Only the convoyed (last) shard escalates to a cancel; the quick
    // shards see the same root come and go without blame.
    assert!(out.edge_stats[2].upstream_cancels >= 1);
    assert_eq!(out.edge_stats[0].upstream_cancels, 0);
    assert_eq!(out.edge_stats[1].upstream_cancels, 0);
    // The canceled backend key lives in the FED namespace and unmasks to
    // the frontend root.
    let key = out.backend_canceled_keys[2]
        .first()
        .copied()
        .expect("culprit backend canceled a proxy");
    assert!(key >= FED_KEY_BASE);
    assert_eq!(key & ((1u64 << 48) - 1), ROOT_HOG_KEY);
    assert_eq!((key >> 48) as u16 & 0xFF, 0, "origin node in the key");
}

#[test]
fn armed_soak_partition() {
    armed_soak(FedScenarioKind::Partition);
}

#[test]
fn armed_soak_delayed_cancel() {
    armed_soak(FedScenarioKind::DelayedCancel);
}

#[test]
fn armed_soak_fan_convoy() {
    armed_soak(FedScenarioKind::FanConvoy);
}

fn armed_soak(kind: FedScenarioKind) {
    let base: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    for i in 0..SOAK_PLANS {
        let seed = base + i;
        let out = run_fed_scenario(kind, seed, true);
        assert!(
            out.violation.is_none(),
            "{} seed {seed}: {:?}\nreplay: cargo run -p atropos-fed --bin fed_soak -- --kind {} --seed {seed} --plans 1",
            kind.name(),
            out.violation,
            kind.name(),
        );
    }
}

#[test]
fn corrupted_frame_is_rejected_loudly_and_trips_i9() {
    use atropos::AtroposRuntime;
    use atropos_sim::VirtualClock;
    use std::sync::Arc;

    let clock = Arc::new(VirtualClock::new());
    let rt = Arc::new(AtroposRuntime::new(
        atropos_fed::fed_runtime_config(),
        clock as Arc<dyn atropos_sim::Clock>,
    ));
    let edge = FedEdge::over(NodeId(1), rt);

    // A checksum-valid frame, then one with a flipped payload byte.
    let good = EdgeIdentity::local(NodeId(0), 77).hop(NodeId(1)).encode();
    let mut bad = good.clone();
    bad[6] ^= 0x40; // corrupt the root key, leave the checksum stale
    edge.bind_frame(bad);
    // The proxy still opens (local-only, no blame) — degraded, not dead.
    let _task = {
        use atropos_substrate::RuntimePort;
        edge.create_cancel(None)
    };
    let st = edge.stats();
    assert_eq!(st.frames_rejected, 1);
    assert_eq!(st.frames_carried, 0);
    assert!(edge.blame_for(FED_KEY_BASE | 77).is_none());

    // I9 fails closed on any rejected frame.
    let err = check_edge_blame(&HashSet::new(), &[], st.frames_rejected)
        .expect_err("rejected frames must trip I9");
    assert_eq!(err.invariant, "I9");
}

#[test]
fn same_seed_same_story() {
    for kind in FedScenarioKind::ALL {
        let a = run_fed_scenario(kind, 1234, true);
        let b = run_fed_scenario(kind, 1234, true);
        assert_eq!(a.canceled_roots, b.canceled_roots, "{}", kind.name());
        assert_eq!(
            a.backend_canceled_keys,
            b.backend_canceled_keys,
            "{}",
            kind.name()
        );
        assert_eq!(a.observations, b.observations, "{}", kind.name());
        assert_eq!(
            a.edge_stats.iter().map(|s| s.frames_carried).sum::<u64>(),
            b.edge_stats.iter().map(|s| s.frames_carried).sum::<u64>(),
            "{}",
            kind.name()
        );
        assert_eq!(
            format!("{:?}", a.violation),
            format!("{:?}", b.violation),
            "{}",
            kind.name()
        );
    }
}
