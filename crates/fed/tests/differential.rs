//! Differential pinning: a degenerate one-node federation must agree
//! with the plain single-runtime chaos scenario on *who the culprit is*.
//!
//! The degenerate topology collapses the service graph to a single
//! runtime whose edge loops back onto itself — every root key is
//! remapped into the FED namespace and every cancellation takes the full
//! identity round trip (encode → decode → blame table → upstream leg).
//! None of that machinery may change the policy's answer: the same
//! tie-heavy lock-hog workload on a bare runtime and on the looped-back
//! runtime must blame the same root. Seeds are tie-heavy (victims are
//! near-identical) precisely to catch ranking drift the happy path
//! would mask.
//!
//! On disagreement the dump is written to `$DIFFERENTIAL_OUT` (when set)
//! so CI can attach it as an artifact.

use std::io::Write as _;

use atropos_chaos::{run_scenario, FaultPlan, ScenarioKind, HOG_KEY};
use atropos_fed::{run_fed_degenerate, ROOT_HOG_KEY};

const SEEDS: [u64; 12] = [1, 2, 3, 5, 7, 11, 13, 42, 99, 1234, 20_250_806, 0xA7F0];

#[test]
fn degenerate_fed_agrees_with_single_runtime_on_culprit_identity() {
    let mut report = String::new();
    let mut disagreements = 0usize;
    for seed in SEEDS {
        let single = run_scenario(ScenarioKind::LockHog, &FaultPlan::quiet(seed), 2);
        assert!(
            single.violation.is_none(),
            "seed {seed}: single-runtime violation {:?}",
            single.violation
        );
        let fed = run_fed_degenerate(seed, 2);
        assert!(
            fed.violation.is_none(),
            "seed {seed}: degenerate-fed violation {:?}",
            fed.violation
        );

        let single_culprit = single.canceled_keys.first().copied();
        let fed_culprit = fed.culprit_root;
        if single_culprit != Some(HOG_KEY) || fed_culprit != Some(ROOT_HOG_KEY) {
            disagreements += 1;
            report.push_str(&format!(
                "seed {seed}: single blamed {single_culprit:?} (want {HOG_KEY}), \
                 fed blamed {fed_culprit:?} (want {ROOT_HOG_KEY})\n\
                 single canceled: {:?}\n  fed canceled: {:?}\n",
                single.canceled_keys, fed.canceled_keys
            ));
        }
    }
    if disagreements > 0 {
        if let Ok(dir) = std::env::var("DIFFERENTIAL_OUT") {
            let _ = std::fs::create_dir_all(&dir);
            let path = std::path::Path::new(&dir).join("fed_culprit_identity.txt");
            if let Ok(mut f) = std::fs::File::create(path) {
                let _ = f.write_all(report.as_bytes());
            }
        }
        panic!("{disagreements} differential disagreement(s):\n{report}");
    }
}

#[test]
fn degenerate_fed_cancels_exactly_once_per_root() {
    for seed in [1u64, 7, 42] {
        let fed = run_fed_degenerate(seed, 2);
        assert!(fed.violation.is_none(), "seed {seed}: {:?}", fed.violation);
        // The identity round trip must not duplicate deliveries: each
        // canceled root appears exactly once.
        let mut sorted = fed.canceled_keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            fed.canceled_keys.len(),
            "seed {seed}: duplicated deliveries {:?}",
            fed.canceled_keys
        );
    }
}
