//! Federation chaos soak driver.
//!
//! Runs seeded fault plans through the federated scenarios with I1–I8
//! checked per node per tick and the cross-edge blame-conservation
//! invariant I9 checked across edges, exiting nonzero with a replayable
//! seed on the first violation.
//!
//! ```text
//! fed_soak [--kind partition|delayed_cancel|fan_convoy|all] [--seed N]
//!          [--plans N] [--quiet-only]
//! ```
//!
//! The base seed defaults to `$CHAOS_SEED`, then 42; plan `i` uses seed
//! `base + i`. Quiet plans additionally assert the full story: the
//! culprit root canceled end to end, zero innocent upstream cancels.

use std::process::ExitCode;

use atropos_fed::{run_fed_scenario, FedScenarioKind};

struct Args {
    kinds: Vec<FedScenarioKind>,
    seed: u64,
    plans: u64,
    quiet_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        kinds: FedScenarioKind::ALL.to_vec(),
        seed: std::env::var("CHAOS_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(42),
        plans: 128,
        quiet_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--kind" => {
                let v = value("--kind")?;
                args.kinds = match v.as_str() {
                    "partition" => vec![FedScenarioKind::Partition],
                    "delayed_cancel" | "delayed-cancel" => vec![FedScenarioKind::DelayedCancel],
                    "fan_convoy" | "fan-convoy" => vec![FedScenarioKind::FanConvoy],
                    "all" => FedScenarioKind::ALL.to_vec(),
                    other => return Err(format!("unknown kind {other:?}")),
                };
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--plans" => {
                args.plans = value("--plans")?
                    .parse()
                    .map_err(|e| format!("--plans: {e}"))?
            }
            "--quiet-only" => args.quiet_only = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fed_soak: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "fed soak: base seed {} | {} plan(s) per kind | kinds: {}",
        args.seed,
        args.plans,
        args.kinds
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut runs = 0u64;
    for kind in &args.kinds {
        for i in 0..args.plans {
            let seed = args.seed.wrapping_add(i);
            let armed = !args.quiet_only;
            let out = run_fed_scenario(*kind, seed, armed);
            if let Some(v) = &out.violation {
                eprintln!(
                    "fed_soak: {} seed {seed} FAILED after {runs} clean runs: {v}\n\
                     replay: cargo run -p atropos-fed --bin fed_soak -- \
                     --kind {} --seed {seed} --plans 1{}",
                    kind.name(),
                    kind.name(),
                    if armed { "" } else { " --quiet-only" }
                );
                return ExitCode::FAILURE;
            }
            if !armed && (!out.root_canceled || out.victim_roots_canceled > 0) {
                eprintln!(
                    "fed_soak: {} seed {seed} quiet story broke: root_canceled={} \
                     innocent={} roots={:?}",
                    kind.name(),
                    out.root_canceled,
                    out.victim_roots_canceled,
                    out.canceled_roots
                );
                return ExitCode::FAILURE;
            }
            runs += 1;
            if i == 0 || (i + 1) % 32 == 0 {
                println!(
                    "  {} seed {seed} ok: root_canceled={} window={:?} innocent={} \
                     upstream={} frames={}",
                    kind.name(),
                    out.root_canceled,
                    out.root_cancel_window,
                    out.victim_roots_canceled,
                    out.edge_stats
                        .iter()
                        .map(|s| s.upstream_cancels)
                        .sum::<u64>(),
                    out.edge_stats.iter().map(|s| s.frames_carried).sum::<u64>(),
                );
            }
        }
    }
    println!("fed soak: all {runs} runs clean");
    ExitCode::SUCCESS
}
