//! Two-tier wall-clock federation harness.
//!
//! Real worker threads on the frontend tier serve an open-loop workload;
//! each request registers a root task on the frontend runtime, then RPCs
//! through a [`FedEdge`] into the backend tier, where the work contends
//! on a [`TracedLock`] shard. A culprit request holds the shard far past
//! its SLO; victims convoy behind it and their *end-to-end* latency is
//! measured at the frontend.
//!
//! Three control modes:
//!
//! - [`FedMode::NoControl`]: nothing ticks; the convoy runs its course.
//! - [`FedMode::Atropos`]: the backend runtime ticks, blames the proxy,
//!   and the edge propagates the cancellation upstream; the frontend's
//!   [`CancelRegistry`] token makes the culprit release cooperatively.
//!   Only the culprit's *root* is ever canceled — no innocent upstream
//!   load is shed.
//! - [`FedMode::DagorAdmission`]: a DAGOR-style per-node admission
//!   baseline at the backend entry. It measures queueing, raises its
//!   threshold, and sheds low-priority *victims* — it cannot see which
//!   admitted request is the culprit, so the convoy persists and
//!   innocent load pays.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atropos::ticker::Ticker;
use atropos::{AtroposRuntime, TaskKey};
use atropos_baselines::Dagor;
use atropos_live::{live_atropos_config, CancelRegistry, TracedLock, CULPRIT_KEY_BASE};
use atropos_metrics::LatencyHistogram;
use atropos_sim::SystemClock;
use atropos_substrate::{CancelFn, EdgeIdentity, EdgeStats, FedEdge, NodeId, RuntimePort};
use parking_lot::Mutex;

/// Control discipline for one federated live run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FedMode {
    /// No overload control anywhere; the baseline the recovery claim is
    /// measured against.
    NoControl,
    /// Atropos on both tiers with cross-node blame propagation.
    Atropos,
    /// DAGOR-style priority admission at the backend entry (per-node: no
    /// cross-node identity, no cancellation of running work).
    DagorAdmission,
}

/// Workload parameters for one two-tier run.
#[derive(Debug, Clone)]
pub struct FedLiveConfig {
    /// Frontend worker threads.
    pub workers: usize,
    /// Wall-clock duration load is offered for.
    pub run_for: Duration,
    /// Open-loop spacing between arrivals.
    pub interarrival: Duration,
    /// Backend shard hold of a normal request.
    pub backend_hold: Duration,
    /// When the culprit is injected.
    pub culprit_after: Duration,
    /// Maximum time the culprit holds the shard if never canceled.
    pub culprit_hold: Duration,
    /// Interval between the culprit's cancellation checkpoints.
    pub checkpoint: Duration,
    /// Supervisor tick period (Atropos) / adaptation epoch (DAGOR).
    pub tick_period: Duration,
    /// DAGOR's average queuing-time overload threshold (ns).
    pub queue_time_ns: u64,
}

impl FedLiveConfig {
    /// Builds the config a checked-in `[fed_live]` stanza pins
    /// (`descriptors/fed/two_tier_live.toml`).
    pub fn from_spec(spec: &atropos_workload::FedLiveSpec) -> Self {
        Self {
            workers: spec.workers,
            run_for: Duration::from_millis(spec.run_for_ms),
            interarrival: Duration::from_micros(spec.interarrival_us),
            backend_hold: Duration::from_micros(spec.backend_hold_us),
            culprit_after: Duration::from_millis(spec.culprit_after_ms),
            culprit_hold: Duration::from_millis(spec.culprit_hold_ms),
            checkpoint: Duration::from_millis(spec.checkpoint_ms),
            tick_period: Duration::from_millis(spec.tick_period_ms),
            queue_time_ns: spec.queue_time_ns,
        }
    }
}

impl Default for FedLiveConfig {
    /// The pinned two-tier geometry, resolved from the descriptor corpus
    /// so the wall-clock federation harness cannot drift from the
    /// checked-in `two_tier_live.toml`.
    fn default() -> Self {
        Self::from_spec(atropos_workload::fed_live_spec())
    }
}

/// What one federated live run observed.
#[derive(Debug, Clone)]
pub struct FedLiveReport {
    /// Victim completions measured end to end at the frontend.
    pub victim_count: u64,
    /// Victim p99 end-to-end latency (ns).
    pub victim_p99_ns: u64,
    /// Victim mean end-to-end latency (ns).
    pub victim_mean_ns: f64,
    /// Whether the culprit began executing.
    pub culprit_started: bool,
    /// Whether the culprit observed its frontend cancel token (the
    /// cross-node cancellation arrived end to end).
    pub root_canceled: bool,
    /// Culprit start → token observed, when canceled.
    pub time_to_cancel: Option<Duration>,
    /// Keys canceled on the frontend runtime, in issue order.
    pub frontend_canceled_roots: Vec<u64>,
    /// Frontend cancellations that named anything but the culprit root.
    pub innocent_upstream_cancels: u64,
    /// Victims the DAGOR baseline rejected at the backend door.
    pub shed: u64,
    /// Edge counters.
    pub edge: EdgeStats,
    /// Backend supervisor ticks.
    pub backend_ticks: u64,
}

struct Job {
    key: u64,
    class: u8,
    client: u64,
    culprit: bool,
    /// Enqueue instant — victim latency is end to end (queue + serve),
    /// so a convoy that backs the queue up is visible in the tail even
    /// for jobs that never physically block on the shard.
    born: Instant,
}

/// The culprit's root key on the frontend (the live culprit namespace).
pub const FED_LIVE_CULPRIT_KEY: u64 = CULPRIT_KEY_BASE + 1;

/// Runs one two-tier wall-clock session and reports it.
pub fn run_fed_live(cfg: FedLiveConfig, mode: FedMode) -> FedLiveReport {
    let front_rt = Arc::new(AtroposRuntime::new(
        live_atropos_config(),
        Arc::new(SystemClock::new()),
    ));
    let back_rt = Arc::new(AtroposRuntime::new(
        live_atropos_config(),
        Arc::new(SystemClock::new()),
    ));
    let edge = FedEdge::over(NodeId(1), back_rt.clone());
    let hook_rt = back_rt.clone();
    edge.set_origin_hook(move |task, id| hook_rt.set_task_origin(task, id.remote_origin()));
    // Local leg of the edge: nothing to do on the backend beyond the
    // runtime's own bookkeeping — the culprit watches its *frontend*
    // token. Installing it also arms the upstream splitter.
    let edge_port: Arc<dyn RuntimePort> = edge.clone();
    edge_port.install_initiator(Arc::new(CancelFn(|_key: TaskKey| {})));
    let up_rt = front_rt.clone();
    edge.install_upstream(Arc::new(CancelFn(move |key: TaskKey| {
        let _ = up_rt.cancel_key(key);
    })));

    let registry = Arc::new(CancelRegistry::new());
    let atropos = mode == FedMode::Atropos;
    if atropos {
        registry.install(&front_rt);
    }

    let shard = TracedLock::new(edge_port.clone(), "backend_shard", ());
    // `FedEdge::bind` + `create_cancel` is a two-step arm; serialize the
    // pair across workers.
    let rpc_open = Mutex::new(());
    let dagor = Mutex::new(Dagor::new(cfg.queue_time_ns));
    let waiters: Mutex<Vec<Instant>> = Mutex::new(Vec::new());
    let queue: Mutex<VecDeque<Job>> = Mutex::new(VecDeque::new());
    let stop = AtomicBool::new(false);
    let victims = Mutex::new(LatencyHistogram::new());
    let victim_count = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let culprit_started = AtomicBool::new(false);
    let root_canceled = AtomicBool::new(false);
    let time_to_cancel: Mutex<Option<Duration>> = Mutex::new(None);

    let mut backend_ticker = atropos.then(|| {
        let rt = back_rt.clone();
        Ticker::spawn_fn(move || rt.tick(), cfg.tick_period, |_| {})
    });
    let mut front_ticker = atropos.then(|| {
        let rt = front_rt.clone();
        Ticker::spawn_fn(move || rt.tick(), cfg.tick_period, |_| {})
    });
    let dagor_stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Generator: open-loop arrivals; the culprit is injected once.
        let gen = {
            let queue = &queue;
            let stop = &stop;
            let cfg = cfg.clone();
            s.spawn(move || {
                let t0 = Instant::now();
                let mut key = 1u64;
                let mut culprit_sent = false;
                while !stop.load(Ordering::Acquire) {
                    let culprit = !culprit_sent && t0.elapsed() >= cfg.culprit_after;
                    if culprit {
                        culprit_sent = true;
                        queue.lock().push_back(Job {
                            key: FED_LIVE_CULPRIT_KEY,
                            class: 0,
                            client: 7, // composes to DAGOR's top level
                            culprit: true,
                            born: Instant::now(),
                        });
                    } else {
                        queue.lock().push_back(Job {
                            key,
                            class: 1 + (key % 7) as u8,
                            client: key,
                            culprit: false,
                            born: Instant::now(),
                        });
                        key += 1;
                    }
                    std::thread::sleep(cfg.interarrival);
                }
            })
        };

        // DAGOR's adaptation epoch: sample the average wait of requests
        // currently queued at the backend shard and adapt the threshold.
        let dagor_thread = (mode == FedMode::DagorAdmission).then(|| {
            let stopped = dagor_stop.clone();
            let dagor = &dagor;
            let waiters = &waiters;
            let period = cfg.tick_period;
            s.spawn(move || {
                while !stopped.load(Ordering::Acquire) {
                    std::thread::sleep(period);
                    let now = Instant::now();
                    let snapshot = waiters.lock();
                    let avg = if snapshot.is_empty() {
                        0
                    } else {
                        snapshot
                            .iter()
                            .map(|w| now.duration_since(*w).as_nanos() as u64)
                            .sum::<u64>()
                            / snapshot.len() as u64
                    };
                    drop(snapshot);
                    dagor.lock().adapt(avg);
                }
            })
        });

        // Frontend workers: serve jobs end to end through the edge.
        let mut workers = Vec::new();
        for _ in 0..cfg.workers {
            let queue = &queue;
            let stop = &stop;
            let cfg = cfg.clone();
            let front_port: Arc<dyn RuntimePort> = front_rt.clone();
            let registry = registry.clone();
            let edge = edge.clone();
            let edge_port = edge_port.clone();
            let shard = &shard;
            let rpc_open = &rpc_open;
            let dagor = &dagor;
            let waiters = &waiters;
            let victims = &victims;
            let victim_count = &victim_count;
            let shed = &shed;
            let culprit_started = &culprit_started;
            let root_canceled = &root_canceled;
            let time_to_cancel = &time_to_cancel;
            workers.push(s.spawn(move || loop {
                let job = queue.lock().pop_front();
                let Some(job) = job else {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                    continue;
                };
                let t0 = job.born;
                let root = front_port.create_cancel(Some(job.key));
                front_port.unit_started(root);
                let token = registry.register(job.key);

                // DAGOR admission happens at the backend door, before the
                // proxy task even opens. The culprit composes to the top
                // priority level, so it is always admitted — DAGOR's
                // exact blind spot.
                if mode == FedMode::DagorAdmission
                    && !dagor.lock().admit_bare(job.class, job.client)
                {
                    shed.fetch_add(1, Ordering::Relaxed);
                    front_port.record_drop();
                    front_port.unit_finished(root);
                    front_port.free_cancel(root);
                    registry.unregister(job.key);
                    continue;
                }

                // The RPC: piggyback identity, open the proxy, contend.
                let identity = EdgeIdentity::local(NodeId(0), job.key).hop(NodeId(1));
                let proxy = {
                    let _g = rpc_open.lock();
                    edge.open(&identity)
                };
                edge_port.unit_started(proxy);
                waiters.lock().push(t0);
                {
                    let guard = shard.lock(proxy);
                    waiters.lock().retain(|w| *w != t0);
                    if job.culprit {
                        culprit_started.store(true, Ordering::Release);
                        let held = Instant::now();
                        while held.elapsed() < cfg.culprit_hold {
                            if token.is_canceled() {
                                root_canceled.store(true, Ordering::Release);
                                *time_to_cancel.lock() = Some(held.elapsed());
                                break;
                            }
                            std::thread::sleep(cfg.checkpoint);
                        }
                    } else {
                        std::thread::sleep(cfg.backend_hold);
                    }
                    drop(guard);
                }
                edge_port.unit_finished(proxy);
                edge_port.free_cancel(proxy);
                front_port.unit_finished(root);
                front_port.free_cancel(root);
                registry.unregister(job.key);
                if !job.culprit {
                    victims.lock().record(t0.elapsed().as_nanos() as u64);
                    victim_count.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }

        std::thread::sleep(cfg.run_for);
        stop.store(true, Ordering::Release);
        gen.join().expect("generator panicked");
        for w in workers {
            w.join().expect("worker panicked");
        }
        dagor_stop.store(true, Ordering::Release);
        if let Some(t) = dagor_thread {
            t.join().expect("dagor ticker panicked");
        }
    });

    let backend_ticks = backend_ticker.as_mut().map_or(0, |t| {
        t.stop();
        t.ticks()
    });
    if let Some(t) = front_ticker.as_mut() {
        t.stop();
    }

    let frontend_canceled_roots: Vec<u64> = front_rt
        .debug_snapshot()
        .cancel
        .canceled_keys
        .iter()
        .map(|(k, _)| k.0)
        .collect();
    let innocent = frontend_canceled_roots
        .iter()
        .filter(|&&k| k != FED_LIVE_CULPRIT_KEY)
        .count() as u64;
    let victims = victims.into_inner();
    let time_to_cancel = *time_to_cancel.lock();
    FedLiveReport {
        victim_count: victim_count.load(Ordering::Relaxed),
        victim_p99_ns: victims.p99(),
        victim_mean_ns: victims.mean(),
        culprit_started: culprit_started.load(Ordering::Acquire),
        root_canceled: root_canceled.load(Ordering::Acquire),
        time_to_cancel,
        frontend_canceled_roots,
        innocent_upstream_cancels: innocent,
        shed: shed.load(Ordering::Relaxed),
        edge: edge.stats(),
        backend_ticks,
    }
}
