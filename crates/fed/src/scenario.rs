//! Scripted cascading-overload scenarios across a federated topology.
//!
//! The topology is a frontend tier (`n0`) fanning out to one or more
//! backend tiers over [`FedEdge`]s, all on one virtual clock. Every root
//! request registers on the frontend and opens identity-carrying proxy
//! tasks on the backends; a hog's proxy then convoys a backend shard
//! while innocent victims fan in behind it. The backend's detector blames
//! the proxy, the blame table resolves it to the *remote root*, and the
//! cancellation propagates upstream — through seeded edge faults
//! ([`EdgeFaultPlan`]) — until the frontend cancels the root end to end.
//!
//! Per tick, every node's I1–I8 are checked by its own
//! [`InvariantChecker`] and the cross-edge blame-conservation invariant
//! I9 is checked over the union of edges; [`run_fed_scenario`] reports
//! the first violation. [`run_fed_degenerate`] collapses the topology to
//! a single runtime (the edge loops back onto its own node) for the
//! fed-vs-single-runtime differential.

use std::collections::HashSet;
use std::sync::Arc;

use atropos::{ResourceType, TaskId, TaskKey};
use atropos_chaos::{
    check_edge_blame, check_episode_coverage, EdgeCancelObservation, FaultPlan, InvariantChecker,
    Violation,
};
use atropos_obs::DecisionEpisode;
use atropos_sim::{Clock, SimTime, VirtualClock};
use atropos_substrate::{CancelFn, EdgeIdentity, EdgeStats, NodeId, FED_KEY_BASE};
use parking_lot::Mutex;

use crate::edge_chaos::{EdgeFaultPlan, EdgeFaultSink};
use crate::node::FedNode;

const MS: u64 = 1_000_000;
/// Detection window length (also the tick period before skew).
pub const WINDOW_NS: u64 = 100 * MS;
/// Number of windows each scenario runs.
pub const WINDOWS: u64 = 12;
/// Window at which the culprit root arrives.
pub const HOG_START_WINDOW: u64 = 2;
/// Window at which an uncanceled culprit completes naturally (bounds
/// armed runs where the cancellation was swallowed).
pub const HOG_NATURAL_END_WINDOW: u64 = 9;
/// Root key of the culprit on the frontend; victim roots count up from
/// 100 and stay below.
pub const ROOT_HOG_KEY: u64 = 9_000;

/// Which federated overload cascade to run. The three kinds share one
/// service-graph script and differ in topology and in the seeded fault
/// plan armed on the upstream cancel leg of the culprit edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FedScenarioKind {
    /// Two tiers; the edge partitions after detection and heals, so the
    /// cross-node cancel arrives late but arrives.
    Partition,
    /// Two tiers; upstream cancels are delayed whole windows and
    /// reordered within a release batch.
    DelayedCancel,
    /// Four tiers (frontend + three backends); every root fans out to
    /// all backends and fans in, and the culprit convoys only the last
    /// shard — the slowest-shard convoy, with light edge jitter.
    FanConvoy,
}

impl FedScenarioKind {
    /// All kinds, in soak order.
    pub const ALL: [FedScenarioKind; 3] = [
        FedScenarioKind::Partition,
        FedScenarioKind::DelayedCancel,
        FedScenarioKind::FanConvoy,
    ];

    /// Stable name (CLI vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            FedScenarioKind::Partition => "partition",
            FedScenarioKind::DelayedCancel => "delayed_cancel",
            FedScenarioKind::FanConvoy => "fan_convoy",
        }
    }

    /// Backend count for this kind, resolved from the checked-in
    /// topology descriptor (`descriptors/fed/<kind>.toml`).
    pub fn fanout(&self) -> usize {
        atropos_workload::fed_topology(self.name()).fanout as usize
    }
}

/// What one federated scenario run observed.
#[derive(Debug)]
pub struct FedOutcome {
    /// The kind that ran.
    pub kind: FedScenarioKind,
    /// Base seed of the run.
    pub seed: u64,
    /// `(window, root_key)` deliveries at the frontend initiator, in
    /// order — the end-to-end cancellations.
    pub canceled_roots: Vec<(u64, u64)>,
    /// Whether the culprit root was canceled end to end.
    pub root_canceled: bool,
    /// Window the culprit root's cancellation reached the frontend.
    pub root_cancel_window: Option<u64>,
    /// Innocent roots canceled at the frontend (must be 0 in quiet runs).
    pub victim_roots_canceled: u64,
    /// FED-namespace keys canceled at backends, per backend, issue order.
    pub backend_canceled_keys: Vec<Vec<u64>>,
    /// The seeded edge faults armed on the culprit edge.
    pub edge_plan: EdgeFaultPlan,
    /// Per-backend edge counters.
    pub edge_stats: Vec<EdgeStats>,
    /// Every cross-node cancellation observed at an edge (I9 input).
    pub observations: Vec<EdgeCancelObservation>,
    /// Root keys registered at the frontend (I9 witness set size).
    pub witnessed_roots: usize,
    /// Decision episodes spanning nodes: `(node, episode)`.
    pub episodes: Vec<(NodeId, DecisionEpisode)>,
    /// Node-qualified resources episodes assigned blame on (sorted,
    /// deduped) — e.g. `"n1/shard_lock"`.
    pub blamed_resources: Vec<String>,
    /// Victims that drained normally after the convoy cleared.
    pub drained_victims: u64,
    /// Victims that gave up while convoyed (over-SLO completions).
    pub gave_up_victims: u64,
    /// First invariant violation, if any (the run stops there).
    pub violation: Option<Violation>,
}

struct Blocked {
    root: u64,
    front_task: TaskId,
    proxy: TaskId,
    proxy_key: u64,
}

struct HogProxy {
    task: TaskId,
    key: u64,
    held: u64,
}

/// Runs one federated scenario: quiet node plans when `armed` is false
/// (the story must then play out exactly), a seeded armed plan at the
/// culprit backend when true (the story may degrade; the invariants may
/// not). Everything — node plans, edge faults, the script — derives from
/// `seed`, so any failure replays bit-identically.
pub fn run_fed_scenario(kind: FedScenarioKind, seed: u64, armed: bool) -> FedOutcome {
    let fanout = kind.fanout();
    let culprit = fanout - 1; // backend index the hog convoys
    let clock = Arc::new(VirtualClock::new());
    let front = FedNode::frontend(clock.clone() as Arc<dyn Clock>, &FaultPlan::quiet(seed));
    let backends: Vec<FedNode> = (0..fanout)
        .map(|b| {
            let plan = if armed && b == culprit {
                FaultPlan::sample(seed)
            } else {
                FaultPlan::quiet(seed ^ (b as u64 + 1))
            };
            FedNode::backend(NodeId(b as u16 + 1), clock.clone() as Arc<dyn Clock>, &plan)
        })
        .collect();

    let edge_plan = EdgeFaultPlan::for_kind(kind, seed);
    let sinks: Vec<Arc<EdgeFaultSink>> = backends
        .iter()
        .enumerate()
        .map(|(b, node)| {
            let front_rt = front.rt.clone();
            let plan = if b == culprit {
                edge_plan
            } else {
                EdgeFaultPlan::healthy()
            };
            let sink = EdgeFaultSink::new(
                plan,
                Arc::new(CancelFn(move |key: TaskKey| {
                    let _ = front_rt.cancel_key(key);
                })),
            );
            node.edge
                .as_ref()
                .expect("backend nodes carry an edge")
                .install_upstream(sink.clone());
            sink
        })
        .collect();

    let shards: Vec<_> = backends
        .iter()
        .map(|n| n.rt.register_resource("shard_lock", ResourceType::Lock))
        .collect();

    let mut checkers: Vec<InvariantChecker> =
        (0..fanout + 1).map(|_| InvariantChecker::new()).collect();
    let mut witnessed: HashSet<u64> = HashSet::new();
    let mut observed_backend_keys: Vec<HashSet<u64>> = vec![HashSet::new(); fanout];
    let mut observations: Vec<EdgeCancelObservation> = Vec::new();
    let mut canceled_roots: Vec<(u64, u64)> = Vec::new();
    let mut victim_roots_canceled = 0u64;
    let mut drained_victims = 0u64;
    let mut gave_up_victims = 0u64;
    let mut blocked: Vec<Blocked> = Vec::new();
    let mut hog_proxies: Vec<Option<HogProxy>> = (0..fanout).map(|_| None).collect();
    let mut hog_root: Option<TaskId> = None;
    let mut hog_done = false;
    let mut next_key = 100u64;
    let mut violation: Option<Violation> = None;
    let at = |ns: u64| SimTime::from_nanos(ns);

    'windows: for w in 0..WINDOWS {
        let start = w * WINDOW_NS;
        clock.advance_to(at(start));

        // The edges advance first: partitions heal, delayed cancels land.
        for sink in &sinks {
            sink.advance_to(w);
        }

        // React to end-to-end cancellations delivered at the frontend.
        for key in front.take_delivered() {
            canceled_roots.push((w, key));
            clock.advance_to(at(start + MS));
            if key == ROOT_HOG_KEY {
                for (b, slot) in hog_proxies.iter_mut().enumerate() {
                    if let Some(p) = slot.take() {
                        let port = backends[b].port();
                        if p.held > 0 {
                            port.free(p.task, shards[b], p.held);
                        }
                        port.unit_finished(p.task);
                        port.free_cancel(p.task);
                    }
                }
                if let Some(root) = hog_root.take() {
                    front.inj.unit_finished(root);
                    front.inj.free_cancel(root);
                }
                hog_done = true;
            } else if let Some(pos) = blocked.iter().position(|v| v.root == key) {
                let v = blocked.remove(pos);
                victim_roots_canceled += 1;
                let port = backends[culprit].port();
                port.unit_finished(v.proxy);
                port.free_cancel(v.proxy);
                front.inj.unit_finished(v.front_task);
                front.inj.free_cancel(v.front_task);
            }
        }

        // React to callee-local deliveries (the edge's local leg).
        for (b, node) in backends.iter().enumerate() {
            for pkey in node.take_delivered() {
                clock.advance_to(at(start + MS));
                if hog_proxies[b].as_ref().is_some_and(|p| p.key == pkey) {
                    let p = hog_proxies[b].take().expect("checked above");
                    let port = node.port();
                    if p.held > 0 {
                        port.free(p.task, shards[b], p.held);
                    }
                    port.unit_finished(p.task);
                    port.free_cancel(p.task);
                } else if let Some(pos) = blocked
                    .iter()
                    .position(|v| b == culprit && v.proxy_key == pkey)
                {
                    // A victim's proxy was shed locally: close it and the
                    // root (an innocent casualty, counted).
                    let v = blocked.remove(pos);
                    victim_roots_canceled += 1;
                    let port = node.port();
                    port.unit_finished(v.proxy);
                    port.free_cancel(v.proxy);
                    front.inj.unit_finished(v.front_task);
                    front.inj.free_cancel(v.front_task);
                }
            }
        }

        // The culprit arrives: one root, one proxy per backend; only the
        // culprit shard is hogged, the rest see a quick touch (fan-out).
        if w == HOG_START_WINDOW && !hog_done {
            clock.advance_to(at(start + 2 * MS));
            let root = front.inj.create_cancel(Some(ROOT_HOG_KEY));
            front.inj.unit_started(root);
            witnessed.insert(ROOT_HOG_KEY);
            hog_root = Some(root);
            let identity = EdgeIdentity::local(NodeId(0), ROOT_HOG_KEY);
            for (b, node) in backends.iter().enumerate() {
                let edge = node.edge.as_ref().expect("backend edge");
                let proxy = edge.open(&identity.hop(node.id));
                let port = node.port();
                port.unit_started(proxy);
                if b == culprit {
                    port.progress(proxy, 5, 100);
                    port.get(proxy, shards[b], 1);
                    hog_proxies[b] = Some(HogProxy {
                        task: proxy,
                        key: identity.remote_key(),
                        held: 1,
                    });
                } else {
                    clock.advance_to(at(start + 3 * MS));
                    port.get(proxy, shards[b], 1);
                    port.free(proxy, shards[b], 1);
                    port.unit_finished(proxy);
                    port.free_cancel(proxy);
                }
            }
        }
        let hog_active = hog_proxies[culprit].is_some();

        // With the convoy cleared, blocked victims drain early in the
        // window: proxy completes on the shard, root closes end to end.
        if !hog_active && !blocked.is_empty() {
            let n = blocked.len() as u64;
            for (i, v) in blocked.drain(..).enumerate() {
                clock.advance_to(at(start + 4 * MS + (i as u64) * (12 * MS) / n));
                let port = backends[culprit].port();
                port.get(v.proxy, shards[culprit], 1);
                port.free(v.proxy, shards[culprit], 1);
                port.unit_finished(v.proxy);
                port.free_cancel(v.proxy);
                front.inj.unit_finished(v.front_task);
                front.inj.free_cancel(v.front_task);
                drained_victims += 1;
            }
        }

        // Arrivals: every root fans out to all backends and fans in;
        // non-culprit shards always complete fast, the culprit shard
        // convoys while hogged.
        for i in 0..10u64 {
            let t0 = start + 20 * MS + i * (70 * MS) / 10;
            clock.advance_to(at(t0));
            let key = next_key;
            next_key += 1;
            witnessed.insert(key);
            let front_task = front.inj.create_cancel(Some(key));
            front.inj.unit_started(front_task);
            let identity = EdgeIdentity::local(NodeId(0), key);
            let mut victim_blocked = None;
            for (b, node) in backends.iter().enumerate() {
                let edge = node.edge.as_ref().expect("backend edge");
                let hopped = identity.hop(node.id);
                let proxy = edge.open(&hopped);
                let port = node.port();
                port.unit_started(proxy);
                port.slow_by(proxy, shards[b], 1);
                if b == culprit && hog_active {
                    victim_blocked = Some(Blocked {
                        root: key,
                        front_task,
                        proxy,
                        proxy_key: hopped.remote_key(),
                    });
                } else {
                    clock.advance_to(at(t0 + MS));
                    port.get(proxy, shards[b], 1);
                    clock.advance_to(at(t0 + 3 * MS));
                    port.free(proxy, shards[b], 1);
                    port.unit_finished(proxy);
                    port.free_cancel(proxy);
                }
            }
            match victim_blocked {
                Some(v) => blocked.push(v),
                None => {
                    clock.advance_to(at(t0 + 4 * MS));
                    front.inj.unit_finished(front_task);
                    front.inj.free_cancel(front_task);
                }
            }
        }

        // Under the convoy, the two oldest victims give up at the window
        // edge: the few completions the backend detector sees are far
        // over SLO — and so are their roots at the frontend.
        if hog_active {
            for j in 0..2usize.min(blocked.len()) {
                let v = blocked.remove(0);
                clock.advance_to(at(start + 95 * MS + j as u64 * MS));
                let port = backends[culprit].port();
                port.unit_finished(v.proxy);
                port.free_cancel(v.proxy);
                front.inj.unit_finished(v.front_task);
                front.inj.free_cancel(v.front_task);
                gave_up_victims += 1;
            }
        }

        // A swallowed cancellation must not wedge the run: the hog
        // completes naturally late in the run.
        if w == HOG_NATURAL_END_WINDOW {
            clock.advance_to(at(start + 97 * MS));
            for (b, slot) in hog_proxies.iter_mut().enumerate() {
                if let Some(p) = slot.take() {
                    let port = backends[b].port();
                    if p.held > 0 {
                        port.free(p.task, shards[b], p.held);
                    }
                    port.unit_finished(p.task);
                    port.free_cancel(p.task);
                }
            }
            if let Some(root) = hog_root.take() {
                front.inj.unit_finished(root);
                front.inj.free_cancel(root);
            }
            hog_done = true;
        }

        // Tick every node (ascending skew keeps the shared clock
        // monotonic), then check I1–I8 per node and I9 across edges.
        let mut order: Vec<usize> = (0..fanout + 1).collect();
        let skew = |n: usize| {
            if n == 0 {
                front.inj.tick_skew_ns()
            } else {
                backends[n - 1].inj.tick_skew_ns()
            }
        };
        order.sort_by_key(|&n| skew(n));
        for &n in &order {
            clock.advance_to(at((w + 1) * WINDOW_NS + skew(n)));
            if n == 0 {
                front.inj.tick();
            } else {
                backends[n - 1].inj.tick();
            }
        }
        for (n, checker) in checkers.iter_mut().enumerate() {
            let node = if n == 0 { &front } else { &backends[n - 1] };
            if let Err(v) = checker.after_tick(&node.rt, &node.inj.truth()) {
                violation = Some(v);
                break 'windows;
            }
        }
        for (b, node) in backends.iter().enumerate() {
            let edge = node.edge.as_ref().expect("backend edge");
            let snap = node.rt.debug_snapshot();
            let mut fresh = Vec::new();
            for (key, _) in &snap.cancel.canceled_keys {
                if key.0 >= FED_KEY_BASE && observed_backend_keys[b].insert(key.0) {
                    let obs = match edge.blame_for(key.0) {
                        Some(id) => EdgeCancelObservation {
                            root_key: id.root_key,
                            origin_node: id.origin().0,
                            had_blame: true,
                            tick: w,
                        },
                        None => EdgeCancelObservation {
                            root_key: key.0 & ((1 << 48) - 1),
                            origin_node: ((key.0 >> 48) & 0xFF) as u16,
                            had_blame: false,
                            tick: w,
                        },
                    };
                    fresh.push(obs);
                }
            }
            let rejected = edge.stats().frames_rejected;
            if let Err(v) = check_edge_blame(&witnessed, &fresh, rejected) {
                observations.extend(fresh);
                violation = Some(v);
                break 'windows;
            }
            observations.extend(fresh);
        }
    }

    // Late deliveries after the last tick still count for the outcome.
    for sink in &sinks {
        sink.advance_to(WINDOWS);
    }
    for key in front.take_delivered() {
        canceled_roots.push((WINDOWS, key));
    }

    let mut episodes: Vec<(NodeId, DecisionEpisode)> = Vec::new();
    let mut blamed: Vec<String> = Vec::new();
    for n in 0..fanout + 1 {
        let node = if n == 0 { &front } else { &backends[n - 1] };
        let snap = node.rt.debug_snapshot();
        let names = atropos_obs::ResourceNames::from_snapshot(&snap);
        let eps = node.obs.drain_episodes(&names);
        // I8 per node, end of run: the flight recorder must explain every
        // issued cancellation. An earlier violation takes precedence.
        if violation.is_none() {
            if let Err(v) = check_episode_coverage(&node.inj.truth(), &eps) {
                violation = Some(v);
            }
        }
        for e in eps {
            if e.culprit_key.is_some() && !e.resource.is_empty() {
                blamed.push(format!("{}/{}", node.id, e.resource));
            }
            episodes.push((node.id, e));
        }
    }
    blamed.sort();
    blamed.dedup();

    let root_cancel_window = canceled_roots
        .iter()
        .find(|(_, k)| *k == ROOT_HOG_KEY)
        .map(|(w, _)| *w);
    FedOutcome {
        kind,
        seed,
        root_canceled: root_cancel_window.is_some(),
        root_cancel_window,
        victim_roots_canceled,
        backend_canceled_keys: backends
            .iter()
            .map(|node| {
                node.rt
                    .debug_snapshot()
                    .cancel
                    .canceled_keys
                    .iter()
                    .filter(|(k, _)| k.0 >= FED_KEY_BASE)
                    .map(|(k, _)| k.0)
                    .collect()
            })
            .collect(),
        canceled_roots,
        edge_plan,
        edge_stats: backends
            .iter()
            .map(|node| node.edge.as_ref().expect("backend edge").stats())
            .collect(),
        observations,
        witnessed_roots: witnessed.len(),
        episodes,
        blamed_resources: blamed,
        drained_victims,
        gave_up_victims,
        violation,
    }
}

/// What the degenerate (one-node) topology observed.
#[derive(Debug)]
pub struct DegenerateOutcome {
    /// Keys delivered to the single node's initiator, in order: the
    /// culprit's proxy key first, then the root key it resolves to.
    pub canceled_keys: Vec<u64>,
    /// Root key the first FED-namespace cancellation was blamed on.
    pub culprit_root: Option<u64>,
    /// First invariant violation, if any.
    pub violation: Option<Violation>,
}

/// The degenerate one-node topology: the RPC edge loops back onto its
/// own runtime, so root tasks and their proxy tasks coexist in one node
/// and the "cross-node" cancel is a self-delivery. The culprit identity
/// this topology blames must coincide with what the plain single-runtime
/// chaos script blames for the same convoy — the federation machinery
/// collapses to the paper's single-node behavior. Victims are tie-heavy
/// (`load` identical arrivals per slot) so the policy has real ties to
/// break.
pub fn run_fed_degenerate(seed: u64, load: u64) -> DegenerateOutcome {
    let load = load.max(1);
    let clock = Arc::new(VirtualClock::new());
    let node = FedNode::backend(
        NodeId(0),
        clock.clone() as Arc<dyn Clock>,
        &FaultPlan::quiet(seed),
    );
    let edge = node.edge.as_ref().expect("backend edge").clone();
    // The upstream leg of a self-edge must not reenter the runtime lock:
    // buffer the root keys and deliver between script steps, exactly the
    // asynchronous hop a real edge has.
    let pending: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let p = pending.clone();
    edge.install_upstream(Arc::new(CancelFn(move |key: TaskKey| p.lock().push(key.0))));
    let shard = node.rt.register_resource("shard_lock", ResourceType::Lock);
    let port = node.port();
    let mut checker = InvariantChecker::new();

    let mut blocked: Vec<(TaskId, TaskId)> = Vec::new(); // (root, proxy)
    let mut hog: Option<(TaskId, TaskId)> = None;
    let mut hog_done = false;
    let mut next_key = 100u64;
    let mut canceled_keys: Vec<u64> = Vec::new();
    let mut culprit_root: Option<u64> = None;
    let mut violation = None;
    let at = |ns: u64| SimTime::from_nanos(ns);

    for w in 0..WINDOWS {
        let start = w * WINDOW_NS;
        clock.advance_to(at(start));

        // Deliver buffered upstream cancels (the self-edge's async hop).
        for root in std::mem::take(&mut *pending.lock()) {
            let _ = node.rt.cancel_key(TaskKey(root));
        }

        for key in node.take_delivered() {
            if culprit_root.is_none() && key >= FED_KEY_BASE {
                culprit_root = edge.blame_for(key).map(|id| id.root_key);
            }
            canceled_keys.push(key);
            if key == ROOT_HOG_KEY || key == (FED_KEY_BASE | ROOT_HOG_KEY) {
                if let Some((root, proxy)) = hog.take() {
                    clock.advance_to(at(start + MS));
                    port.free(proxy, shard, 1);
                    port.unit_finished(proxy);
                    port.free_cancel(proxy);
                    port.unit_finished(root);
                    port.free_cancel(root);
                    hog_done = true;
                }
            }
        }

        if w == HOG_START_WINDOW && !hog_done {
            clock.advance_to(at(start + 2 * MS));
            let root = port.create_cancel(Some(ROOT_HOG_KEY));
            port.unit_started(root);
            let identity = EdgeIdentity::local(NodeId(0), ROOT_HOG_KEY).hop(NodeId(0));
            let proxy = edge.open(&identity);
            port.unit_started(proxy);
            port.progress(proxy, 5, 100);
            port.get(proxy, shard, 1);
            hog = Some((root, proxy));
        }
        let hog_active = hog.is_some();

        if !hog_active && !blocked.is_empty() {
            let n = blocked.len() as u64;
            for (i, (root, proxy)) in blocked.drain(..).enumerate() {
                clock.advance_to(at(start + 4 * MS + (i as u64) * (12 * MS) / n));
                port.get(proxy, shard, 1);
                port.free(proxy, shard, 1);
                port.unit_finished(proxy);
                port.free_cancel(proxy);
                port.unit_finished(root);
                port.free_cancel(root);
            }
        }

        let arrivals = 10 * load;
        for i in 0..arrivals {
            let t0 = start + 20 * MS + i * (70 * MS) / arrivals;
            clock.advance_to(at(t0));
            let key = next_key;
            next_key += 1;
            let root = port.create_cancel(Some(key));
            port.unit_started(root);
            let identity = EdgeIdentity::local(NodeId(0), key).hop(NodeId(0));
            let proxy = edge.open(&identity);
            port.unit_started(proxy);
            port.slow_by(proxy, shard, 1);
            if hog_active {
                blocked.push((root, proxy));
            } else {
                clock.advance_to(at(t0 + MS));
                port.get(proxy, shard, 1);
                clock.advance_to(at(t0 + 3 * MS));
                port.free(proxy, shard, 1);
                port.unit_finished(proxy);
                port.free_cancel(proxy);
                port.unit_finished(root);
                port.free_cancel(root);
            }
        }

        if hog_active {
            for j in 0..2usize.min(blocked.len()) {
                let (root, proxy) = blocked.remove(0);
                clock.advance_to(at(start + 95 * MS + j as u64 * MS));
                port.unit_finished(proxy);
                port.free_cancel(proxy);
                port.unit_finished(root);
                port.free_cancel(root);
            }
        }

        let skew = node.inj.tick_skew_ns();
        clock.advance_to(at((w + 1) * WINDOW_NS + skew));
        node.inj.tick();
        if let Err(v) = checker.after_tick(&node.rt, &node.inj.truth()) {
            violation = Some(v);
            break;
        }
    }
    for root in std::mem::take(&mut *pending.lock()) {
        let _ = node.rt.cancel_key(TaskKey(root));
    }
    canceled_keys.extend(node.take_delivered());

    DegenerateOutcome {
        canceled_keys,
        culprit_root,
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_partition_story_plays_out() {
        let out = run_fed_scenario(FedScenarioKind::Partition, 1, false);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(
            out.root_canceled,
            "root never canceled: {:?}",
            out.canceled_roots
        );
        assert_eq!(out.victim_roots_canceled, 0);
        let (_, heal) = out.edge_plan.partition.expect("partition kind");
        assert!(
            out.root_cancel_window.unwrap() >= heal,
            "cancel {:?} arrived before the partition healed at {heal}",
            out.root_cancel_window
        );
    }

    #[test]
    fn degenerate_topology_blames_the_hog() {
        let out = run_fed_degenerate(3, 2);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert_eq!(out.culprit_root, Some(ROOT_HOG_KEY));
        assert!(out.canceled_keys.contains(&ROOT_HOG_KEY));
    }
}
