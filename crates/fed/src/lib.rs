#![warn(missing_docs)]

//! Multi-runtime federation: Atropos across a service graph.
//!
//! The paper treats one application as one runtime; §4 sketches the
//! distributed extension: when a request fans out over RPC, the callee's
//! detector should blame the *originating* end-to-end request, not an
//! anonymous local task, and the cancellation should travel back upstream
//! to the root instead of shedding innocent local load. This crate builds
//! that extension out of pieces the workspace already has:
//!
//! - several [`atropos::AtroposRuntime`] instances composed as tiers of a
//!   service graph on one clock, each behind its own chaos
//!   [`FaultInjector`](atropos_chaos::FaultInjector),
//! - the substrate's [`FedEdge`](atropos_substrate::FedEdge) port
//!   middleware on every callee, piggybacking the caller's
//!   [`EdgeIdentity`](atropos_substrate::EdgeIdentity) (root key + hop
//!   path) on each request the way DAGOR piggybacks priority,
//! - [`edge_chaos`]: seeded partition / delay / reorder faults on the
//!   *upstream cancel leg* of an edge — the federation-specific fault
//!   surface the single-node chaos plans cannot express,
//! - [`scenario`]: scripted cascading-overload scenarios (a backend
//!   culprit convoys a shared shard; victims fan in from the frontend)
//!   run on a virtual clock with invariants I1–I8 checked per node per
//!   tick and the cross-edge blame-conservation invariant I9 checked per
//!   tick across edges,
//! - [`node`]: the per-tier bundle (runtime + flight recorder + injector
//!   + optional edge) the scenarios compose,
//! - [`live`]: a two-tier wall-clock harness where real worker threads
//!   RPC through an edge into a backend runtime, with a NoControl
//!   baseline and a DAGOR-style per-node admission baseline that sheds
//!   victims because it cannot see the culprit.
//!
//! The headline property, asserted end to end by the test suite: under a
//! backend culprit, the federation cancels the *remote root* — and only
//! the remote root — while a per-node admission baseline sheds innocent
//! upstream victims.

pub mod edge_chaos;
pub mod live;
pub mod node;
pub mod scenario;

pub use edge_chaos::{EdgeFaultPlan, EdgeFaultSink};
pub use live::{run_fed_live, FedLiveConfig, FedLiveReport, FedMode};
pub use node::{fed_runtime_config, FedNode};
pub use scenario::{
    run_fed_degenerate, run_fed_scenario, DegenerateOutcome, FedOutcome, FedScenarioKind,
    ROOT_HOG_KEY,
};
