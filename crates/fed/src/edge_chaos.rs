//! Seeded faults on the upstream cancel leg of an RPC edge.
//!
//! The single-node chaos plans (`atropos_chaos::FaultPlan`) perturb the
//! protocol *inside* one node. Federation adds a fault surface of its
//! own: the cross-node path a cancellation takes from a callee back
//! toward the origin. [`EdgeFaultSink`] wraps the upstream
//! [`CancelInitiator`] a [`FedEdge`](atropos_substrate::FedEdge) forwards
//! to and interposes three edge behaviours, all seeded and replayable:
//!
//! - **partition**: during a window interval the edge is down; upstream
//!   cancels are buffered and flushed when the partition heals (the edge
//!   retries until acknowledged — at-least-once, never silent loss),
//! - **delay**: every upstream cancel is held for a fixed number of
//!   windows before delivery,
//! - **reorder**: deliveries that become due on the same window are
//!   released in reverse arrival order.
//!
//! The sink is driven by the scenario's window loop
//! ([`EdgeFaultSink::advance_to`]); everything it ever delivered, and
//! when, is kept for assertions ([`EdgeFaultSink::delivered`]).

use std::sync::Arc;

use atropos::TaskKey;
use atropos_sim::SimRng;
use atropos_substrate::CancelInitiator;
use parking_lot::Mutex;

use crate::scenario::FedScenarioKind;

/// Seeded fault parameters for one edge's upstream cancel leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeFaultPlan {
    /// Window interval `[start, end)` during which the edge is
    /// partitioned; upstream cancels are buffered until `end`.
    pub partition: Option<(u64, u64)>,
    /// Windows each upstream cancel is delayed before delivery.
    pub delay_windows: u64,
    /// Whether same-window releases are delivered in reverse order.
    pub reorder: bool,
}

impl EdgeFaultPlan {
    /// A fault-free edge.
    pub fn healthy() -> Self {
        Self {
            partition: None,
            delay_windows: 0,
            reorder: false,
        }
    }

    /// The seeded edge faults a federation scenario kind arms: a healed
    /// partition for [`FedScenarioKind::Partition`], delayed + reordered
    /// deliveries for [`FedScenarioKind::DelayedCancel`], and light
    /// jitter for [`FedScenarioKind::FanConvoy`] (the convoy itself is
    /// the fault there).
    pub fn for_kind(kind: FedScenarioKind, seed: u64) -> Self {
        let mut rng = SimRng::new(seed ^ 0xED6E_FA17);
        match kind {
            FedScenarioKind::Partition => {
                // Start at the hog window so the partition always covers
                // detection (the first tick after the hog can already see
                // over-SLO give-ups); the cancel must wait for the heal.
                let start = 2;
                let len = 2 + rng.below(3);
                Self {
                    partition: Some((start, start + len)),
                    delay_windows: 0,
                    reorder: false,
                }
            }
            FedScenarioKind::DelayedCancel => Self {
                partition: None,
                delay_windows: 1 + rng.below(2),
                reorder: true,
            },
            FedScenarioKind::FanConvoy => Self {
                partition: None,
                delay_windows: rng.below(2),
                reorder: true,
            },
        }
    }
}

struct SinkState {
    now_window: u64,
    /// `(release_window, arrival_seq, key)` not yet delivered.
    held: Vec<(u64, u64, u64)>,
    seq: u64,
    /// `(delivery_window, key)` in delivery order.
    delivered: Vec<(u64, u64)>,
}

/// A faulty upstream cancel leg: buffers, delays and reorders
/// cross-node cancellations per an [`EdgeFaultPlan`], delivering into the
/// real upstream initiator when the scenario clock reaches the release
/// window. Cancels are never dropped — the federation contract is
/// at-least-once — only displaced in time and order.
pub struct EdgeFaultSink {
    inner: Arc<dyn CancelInitiator>,
    plan: EdgeFaultPlan,
    st: Mutex<SinkState>,
}

impl EdgeFaultSink {
    /// Wraps `inner` in the edge faults of `plan`.
    pub fn new(plan: EdgeFaultPlan, inner: Arc<dyn CancelInitiator>) -> Arc<Self> {
        Arc::new(Self {
            inner,
            plan,
            st: Mutex::new(SinkState {
                now_window: 0,
                held: Vec::new(),
                seq: 0,
                delivered: Vec::new(),
            }),
        })
    }

    /// Advances the edge to `window`, flushing every buffered cancel
    /// whose release window has arrived (in reverse arrival order within
    /// a batch when the plan reorders).
    pub fn advance_to(&self, window: u64) {
        let due: Vec<(u64, u64, u64)> = {
            let mut st = self.st.lock();
            st.now_window = window;
            let mut due: Vec<_> = Vec::new();
            st.held.retain(|entry| {
                if entry.0 <= window {
                    due.push(*entry);
                    false
                } else {
                    true
                }
            });
            due.sort_by_key(|&(release, seq, _)| {
                (
                    release,
                    if self.plan.reorder {
                        u64::MAX - seq
                    } else {
                        seq
                    },
                )
            });
            for &(_, _, key) in &due {
                st.delivered.push((window, key));
            }
            due
        };
        for (_, _, key) in due {
            self.inner.cancel(TaskKey(key));
        }
    }

    /// Every delivery so far as `(window, root_key)` in delivery order.
    pub fn delivered(&self) -> Vec<(u64, u64)> {
        self.st.lock().delivered.clone()
    }

    /// Cancels currently buffered (partitioned or delayed).
    pub fn held(&self) -> usize {
        self.st.lock().held.len()
    }
}

impl CancelInitiator for EdgeFaultSink {
    fn cancel(&self, key: TaskKey) {
        let deliver_now = {
            let mut st = self.st.lock();
            let now = st.now_window;
            let mut release = now + self.plan.delay_windows;
            if let Some((start, end)) = self.plan.partition {
                if now >= start && now < end {
                    release = release.max(end);
                }
            }
            if release <= now {
                st.delivered.push((now, key.0));
                true
            } else {
                let seq = st.seq;
                st.seq += 1;
                st.held.push((release, seq, key.0));
                false
            }
        };
        if deliver_now {
            self.inner.cancel(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_substrate::CancelFn;

    fn sink(plan: EdgeFaultPlan) -> (Arc<EdgeFaultSink>, Arc<Mutex<Vec<u64>>>) {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        let sink = EdgeFaultSink::new(
            plan,
            Arc::new(CancelFn(move |k: TaskKey| s.lock().push(k.0))),
        );
        (sink, seen)
    }

    #[test]
    fn healthy_edge_delivers_immediately() {
        let (sink, seen) = sink(EdgeFaultPlan::healthy());
        sink.advance_to(2);
        sink.cancel(TaskKey(9));
        assert_eq!(seen.lock().clone(), vec![9]);
        assert_eq!(sink.delivered(), vec![(2, 9)]);
        assert_eq!(sink.held(), 0);
    }

    #[test]
    fn partition_buffers_until_heal_and_never_drops() {
        let plan = EdgeFaultPlan {
            partition: Some((2, 5)),
            delay_windows: 0,
            reorder: false,
        };
        let (sink, seen) = sink(plan);
        sink.advance_to(3);
        sink.cancel(TaskKey(1));
        sink.cancel(TaskKey(2));
        assert!(seen.lock().is_empty());
        assert_eq!(sink.held(), 2);
        sink.advance_to(4);
        assert!(seen.lock().is_empty(), "partition still up");
        sink.advance_to(5);
        assert_eq!(seen.lock().clone(), vec![1, 2]);
        assert_eq!(sink.delivered(), vec![(5, 1), (5, 2)]);
    }

    #[test]
    fn delay_and_reorder_displace_in_time_and_order() {
        let plan = EdgeFaultPlan {
            partition: None,
            delay_windows: 2,
            reorder: true,
        };
        let (sink, seen) = sink(plan);
        sink.advance_to(1);
        sink.cancel(TaskKey(10));
        sink.cancel(TaskKey(11));
        sink.advance_to(2);
        assert!(seen.lock().is_empty());
        sink.advance_to(3);
        // Same release batch, reversed arrival order.
        assert_eq!(seen.lock().clone(), vec![11, 10]);
    }
}
