//! One tier of a federated topology: runtime, flight recorder, fault
//! injector, and (for callees) the RPC edge.
//!
//! Every node gets the full single-node stack the chaos suite already
//! trusts — an [`AtroposRuntime`] on the shared clock, an
//! `atropos-obs` [`Observer`] for decision episodes, and a
//! [`FaultInjector`] carrying that node's seeded fault plan. Backend
//! (callee) nodes additionally stack a [`FedEdge`] *over* the injector,
//! so identity-carrying proxy tasks flow app → edge → injector → runtime
//! and delivered cancellations flow back runtime → injector (fail/delay
//! faults) → edge (blame split) → application.

use std::sync::Arc;

use atropos::{AtroposConfig, AtroposRuntime, IngestMode};
use atropos_chaos::{FaultInjector, FaultPlan};
use atropos_obs::Observer;
use atropos_sim::Clock;
use atropos_substrate::{CancelFn, FedEdge, NodeId, RuntimePort};
use parking_lot::Mutex;

const MS: u64 = 1_000_000;

/// The runtime configuration every federated node runs: the scripted
/// chaos geometry (100 ms detection windows, 10 ms SLO, no cancel
/// back-off, sharded ingest).
pub fn fed_runtime_config() -> AtroposConfig {
    let mut cfg = AtroposConfig::default();
    cfg.detector.window_ns = 100 * MS;
    cfg.detector.slo_latency_ns = 10 * MS;
    cfg.cancel_min_interval_ns = 0;
    cfg.ingest_mode = IngestMode::Sharded;
    cfg
}

/// One tier of the topology.
pub struct FedNode {
    /// Node identifier (frontend is `n0`).
    pub id: NodeId,
    /// The node's runtime.
    pub rt: Arc<AtroposRuntime>,
    /// Flight recorder installed on the runtime.
    pub obs: Arc<Observer>,
    /// Faulty transport carrying this node's seeded plan.
    pub inj: Arc<FaultInjector>,
    /// The RPC edge terminating here (callee nodes only).
    pub edge: Option<Arc<FedEdge>>,
    /// Keys delivered to this node's application initiator, in order.
    pub delivered: Arc<Mutex<Vec<u64>>>,
}

impl FedNode {
    /// Builds the caller tier: no edge; the application initiator is
    /// installed directly on the injector.
    pub fn frontend(clock: Arc<dyn Clock>, plan: &FaultPlan) -> Self {
        let rt = Arc::new(AtroposRuntime::new(fed_runtime_config(), clock));
        let obs = Observer::install(&rt, 32 * 1024);
        let inj = Arc::new(FaultInjector::new(rt.clone(), plan));
        let delivered: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let (d, reg) = (delivered.clone(), obs.clone());
        inj.install_initiator(move |key| {
            reg.registry().observe_cancel_delivered();
            d.lock().push(key);
        });
        Self {
            id: NodeId(0),
            rt,
            obs,
            inj,
            edge: None,
            delivered,
        }
    }

    /// Builds a callee tier: a [`FedEdge`] stacked over the injector,
    /// with the origin hook recording cross-node provenance in the
    /// runtime and the application initiator installed through the edge
    /// (so blame-table hits also route upstream).
    pub fn backend(id: NodeId, clock: Arc<dyn Clock>, plan: &FaultPlan) -> Self {
        let rt = Arc::new(AtroposRuntime::new(fed_runtime_config(), clock));
        let obs = Observer::install(&rt, 32 * 1024);
        let inj = Arc::new(FaultInjector::new(rt.clone(), plan));
        let edge = FedEdge::over(id, inj.clone());
        let rt_hook = rt.clone();
        edge.set_origin_hook(move |task, identity| {
            rt_hook.set_task_origin(task, identity.remote_origin());
        });
        let delivered: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let (d, reg) = (delivered.clone(), obs.clone());
        let port: Arc<dyn RuntimePort> = edge.clone();
        port.install_initiator(Arc::new(CancelFn(move |key: atropos::TaskKey| {
            reg.registry().observe_cancel_delivered();
            d.lock().push(key.0);
        })));
        Self {
            id,
            rt,
            obs,
            inj,
            edge: Some(edge),
            delivered,
        }
    }

    /// The port the application emits through: the edge when present,
    /// the injector otherwise.
    pub fn port(&self) -> Arc<dyn RuntimePort> {
        match &self.edge {
            Some(e) => e.clone(),
            None => self.inj.clone(),
        }
    }

    /// Drains and returns the keys delivered since the last call.
    pub fn take_delivered(&self) -> Vec<u64> {
        std::mem::take(&mut *self.delivered.lock())
    }
}
