//! End-to-end wall-clock tests for the async substrate: Atropos detects a
//! lock-hog convoy among queued continuations, cancels the culprit by
//! **dropping its future** through the abort registry, and victim tail
//! latency recovers — plus the drop-safety contracts that make future-drop
//! cancellation sound (exactly-once `Free`, no double-free under
//! abort-during-wake races) and the shutdown-ordering regression for the
//! executor-owned supervisor ticker.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use atropos::ticker::Ticker;
use atropos::{AtroposConfig, AtroposRuntime};
use atropos_async::{run, AsyncTracedLock, Executor};
use atropos_live::{live_atropos_config, ControlMode, CulpritKind, LiveConfig, CULPRIT_KEY_BASE};
use atropos_sim::SystemClock;
use atropos_substrate::{ProbePort, RuntimePort};

fn overload_config() -> LiveConfig {
    LiveConfig {
        workers: 4,
        run_for: Duration::from_millis(1800),
        interarrival: Duration::from_millis(2),
        culprit_after: Duration::from_millis(400),
        culprit_every: None,
        culprit_kind: CulpritKind::LockHog,
        culprit_hold: Duration::from_millis(1200),
        checkpoint: Duration::from_millis(1),
        tick_period: Duration::from_millis(50),
        ..LiveConfig::default()
    }
}

/// The async mirror of the thread substrate's headline test. Margins are
/// identical and deliberately generous (see `live_overload.rs`): the
/// structural contrast — a 1.2 s convoy vs a convoy cut short within a
/// few 50 ms detector windows — dwarfs scheduling noise.
#[test]
fn atropos_aborts_async_culprit_and_victim_p99_recovers() {
    // Baseline first: the convoy runs to completion, nothing aborts.
    let baseline = run(overload_config(), ControlMode::NoControl);
    assert_eq!(baseline.culprits_started, 1, "exactly one culprit injected");
    assert_eq!(baseline.culprits_canceled, 0, "nothing aborts unsupervised");
    assert_eq!(baseline.cancellations_delivered, 0);
    assert!(baseline.time_to_cancel.is_none());
    assert_eq!(baseline.ticks, 0);
    assert!(
        baseline.victim.p99_ns >= 400_000_000,
        "baseline convoy too mild: victim p99 {} ns",
        baseline.victim.p99_ns
    );

    // Same workload under Atropos: the installed initiator is the abort
    // registry — cancellation is future drop, no cooperative token exists
    // anywhere in this substrate.
    let controlled = run(
        overload_config(),
        ControlMode::Atropos(live_atropos_config()),
    );
    assert_eq!(controlled.culprits_started, 1);
    assert!(
        controlled.ticks >= 10,
        "supervisor ticked {}",
        controlled.ticks
    );
    assert!(
        controlled.culprits_canceled >= 1,
        "culprit future not dropped: {:?}",
        controlled.runtime.cancel
    );
    assert!(controlled.cancellations_delivered >= 1);
    assert!(controlled.runtime.cancel.issued >= 1);

    // Decision-trace contract, same as every substrate: only culprit keys
    // were ever canceled, and the first cancel targeted the culprit.
    assert!(!controlled.canceled_keys.is_empty());
    assert!(
        controlled
            .canceled_keys
            .iter()
            .all(|&k| k >= CULPRIT_KEY_BASE),
        "non-culprit key canceled: {:?}",
        controlled.canceled_keys
    );

    // The decision trace explains the run.
    assert!(!controlled.episodes.is_empty(), "no decision episodes");
    assert!(
        controlled
            .episodes
            .iter()
            .any(|e| e.outcome == "issued" && e.canceled_key.is_some()),
        "no episode explains the issued cancellation:\n{}",
        atropos_obs::render_episodes(&controlled.episodes)
    );
    assert_eq!(
        controlled.metrics.cancels_issued_policy + controlled.metrics.cancels_issued_operator,
        controlled.runtime.cancel.issued,
        "observer missed issued cancels"
    );
    assert!(controlled.metrics.consistency_errors().is_empty());
    assert!(baseline.episodes.iter().all(|e| e.outcome != "issued"));

    // Detection + abort delivery within a handful of detector windows.
    let ttc = controlled
        .time_to_cancel
        .expect("a delivered abort records time-to-cancel");
    assert!(ttc <= Duration::from_secs(1), "slow cancel: {ttc:?}");

    // The headline: tail latency recovers ≥2x.
    assert!(
        baseline.victim.p99_ns >= 2 * controlled.victim.p99_ns,
        "victim p99 did not recover: baseline {} ns vs atropos {} ns",
        baseline.victim.p99_ns,
        controlled.victim.p99_ns
    );

    // Both runs drained their full backlog. In the controlled run the
    // culprit never completes normally, but its dropped future still
    // settles through the task scope — and no victim was aborted (checked
    // above via the key discipline), so every victim was measured.
    assert_eq!(
        baseline.offered,
        baseline.victim.count + baseline.culprits_started
    );
    assert_eq!(
        controlled.offered,
        controlled.victim.count + controlled.culprits_started
    );
}

fn probed_stack() -> (Arc<AtroposRuntime>, Arc<ProbePort>, Arc<dyn RuntimePort>) {
    let rt = Arc::new(AtroposRuntime::new(
        AtroposConfig::default(),
        Arc::new(SystemClock::new()),
    ));
    let probe = Arc::new(ProbePort::new(rt.clone()));
    let port: Arc<dyn RuntimePort> = probe.clone();
    (rt, probe, port)
}

/// Satellite: aborting a task that *holds* an async lock must release it
/// via guard drop and emit the matching `Free` exactly once — observed
/// from outside through counting middleware, so a double-free in the
/// guard path cannot hide.
#[test]
fn abort_releases_held_lock_with_exactly_one_free() {
    let (_rt, probe, port) = probed_stack();
    let lock = Arc::new(AsyncTracedLock::new(port.clone(), "table_lock"));
    let task = port.create_cancel(Some(1));
    let ex = Executor::inline();
    let l = lock.clone();
    let handle = ex.spawn(async move {
        let _g = l.lock(task).await;
        std::future::pending::<()>().await;
    });
    assert!(ex.poll_one()); // acquires, parks forever
    assert!(lock.is_locked());
    assert_eq!(probe.counts().gets, 1);
    assert_eq!(probe.counts().frees, 0);

    assert!(handle.abort());
    assert_eq!(
        probe.counts().frees,
        0,
        "abort only flags; the worker performs the drop"
    );
    assert!(ex.poll_one()); // drop site: guard releases
    assert!(!lock.is_locked(), "guard drop released the lock");
    assert_eq!(probe.counts().frees, 1, "exactly one Free");

    // Nothing that happens later may free again: second abort, stray
    // polls, executor shutdown.
    assert!(!handle.abort());
    assert!(!ex.poll_one());
    ex.shutdown();
    assert_eq!(probe.counts().frees, 1, "no double-free after shutdown");
    assert_eq!(probe.counts().gets, 1);
}

/// Satellite: the abort-during-wake race. A release wakes waiter A just
/// before A is aborted; A's acquire future is dropped without re-polling.
/// The contract: A emits no `Free` (it never held), the baton passes to
/// waiter B, and the get/free ledger stays exactly balanced.
#[test]
fn abort_during_wake_race_emits_no_double_free() {
    let (_rt, probe, port) = probed_stack();
    let lock = Arc::new(AsyncTracedLock::new(port.clone(), "table_lock"));
    let ex = Executor::inline();
    let holder_task = port.create_cancel(Some(1));
    let a_task = port.create_cancel(Some(2));
    let b_task = port.create_cancel(Some(3));

    let l = lock.clone();
    let holder = ex.spawn(async move {
        let _g = l.lock(holder_task).await;
        std::future::pending::<()>().await;
    });
    let l = lock.clone();
    let waiter_a = ex.spawn(async move {
        let _g = l.lock(a_task).await;
        std::future::pending::<()>().await;
    });
    let l = lock.clone();
    let done_b = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let d = done_b.clone();
    ex.spawn(async move {
        let _g = l.lock(b_task).await;
        d.store(true, Ordering::SeqCst);
    });
    assert!(ex.poll_one()); // holder acquires
    assert!(ex.poll_one()); // A queues (slow_by)
    assert!(ex.poll_one()); // B queues (slow_by)
    assert_eq!(lock.waiters(), 2);
    let before = probe.counts();
    assert_eq!((before.gets, before.frees, before.slows), (1, 0, 2));

    // Release by aborting the holder: the guard drop wakes A...
    assert!(holder.abort());
    assert!(ex.poll_one()); // holder dropped → Free #1 → A woken
                            // ...and A is aborted before it can re-poll: the race window.
    assert!(waiter_a.abort());
    let mut budget = 0;
    while !done_b.load(Ordering::SeqCst) {
        assert!(ex.poll_one(), "baton lost: B never woken");
        budget += 1;
        assert!(budget < 16, "executor spinning");
    }
    while ex.poll_one() {}
    ex.shutdown();

    let after = probe.counts();
    // Holder: get+free. A: slow_by only — dropped while waiting, no get,
    // so no free. B: slow_by, then get+free through its guard.
    assert_eq!(after.gets, 2, "holder and B acquired");
    assert_eq!(after.frees, 2, "exactly one Free per Get — no double-free");
    assert_eq!(after.slows, 2);
    assert!(!lock.is_locked());
}

/// Satellite regression (mirror of the core ticker test): the async
/// harness hands `Ticker::spawn_fn` a closure that owns a port clone and
/// ticks through the middleware stack while the executor runs. `stop()`
/// must join the supervisor before the harness tears the executor down —
/// the closure's port clone must be released by the join, no tick may be
/// observed after stop, and a late abort-driven guard drop on the
/// executor must still reach the runtime safely after the ticker is gone.
#[test]
fn executor_owned_ticker_stop_joins_before_teardown() {
    let rt = Arc::new(AtroposRuntime::new(
        AtroposConfig::default(),
        Arc::new(SystemClock::new()),
    ));
    let port: Arc<dyn RuntimePort> = rt.clone();
    let ex = Executor::new(1);
    let lock = Arc::new(AsyncTracedLock::new(port.clone(), "table_lock"));
    let task = port.create_cancel(Some(1));
    let l = lock.clone();
    let handle = ex.spawn(async move {
        let _g = l.lock(task).await;
        std::future::pending::<()>().await;
    });
    let deadline = Instant::now() + Duration::from_secs(5);
    while !lock.is_locked() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(lock.is_locked());

    let before = Arc::strong_count(&rt);
    let tick_port = port.clone();
    let mut ticker = Ticker::spawn_fn(move || tick_port.tick(), Duration::from_millis(1), |_| {});
    while ticker.ticks() < 3 {
        std::thread::sleep(Duration::from_millis(1));
    }
    ticker.stop();
    // A joined stop released the closure (and its port clone): the
    // strong count is back to what it was before the ticker existed.
    assert_eq!(
        Arc::strong_count(&rt),
        before,
        "ticker thread still holds the port after stop()"
    );
    let after = rt.stats().ticks;
    std::thread::sleep(Duration::from_millis(10));
    assert_eq!(rt.stats().ticks, after, "tick observed after stop()");
    ticker.stop(); // idempotent

    // The executor outlives the ticker: a late abort still unwinds the
    // hold through the port with no supervisor running.
    assert!(handle.abort());
    let deadline = Instant::now() + Duration::from_secs(5);
    while lock.is_locked() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(!lock.is_locked(), "late guard drop reached the runtime");
    ex.shutdown();
    drop(ticker);
    drop(port);
    drop(lock); // the lock held the last port clone
    assert_eq!(Arc::strong_count(&rt), 1);
}
