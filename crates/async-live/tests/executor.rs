//! Executor-contract tests: wake-after-drop is a no-op, the FIFO injector
//! never starves a ready task, and a property test drives random
//! poll/wake/abort interleavings against a reference state machine.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

use atropos_async::{yield_now, Executor};
use proptest::prelude::*;

/// A future that parks until `ready` turns true, stashing its waker and
/// counting polls/drops — the external observer of executor behaviour.
struct Probe {
    ready: Arc<AtomicBool>,
    polls: Arc<AtomicUsize>,
    drops: Arc<AtomicUsize>,
    completed: Arc<AtomicBool>,
    waker_out: Arc<Mutex<Option<Waker>>>,
}

impl Future for Probe {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        self.polls.fetch_add(1, Ordering::SeqCst);
        *self.waker_out.lock().unwrap() = Some(cx.waker().clone());
        if self.ready.load(Ordering::SeqCst) {
            self.completed.store(true, Ordering::SeqCst);
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

impl Drop for Probe {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

struct ProbeHandles {
    ready: Arc<AtomicBool>,
    polls: Arc<AtomicUsize>,
    drops: Arc<AtomicUsize>,
    completed: Arc<AtomicBool>,
    waker: Arc<Mutex<Option<Waker>>>,
}

fn probe() -> (Probe, ProbeHandles) {
    let h = ProbeHandles {
        ready: Arc::new(AtomicBool::new(false)),
        polls: Arc::new(AtomicUsize::new(0)),
        drops: Arc::new(AtomicUsize::new(0)),
        completed: Arc::new(AtomicBool::new(false)),
        waker: Arc::new(Mutex::new(None)),
    };
    let p = Probe {
        ready: h.ready.clone(),
        polls: h.polls.clone(),
        drops: h.drops.clone(),
        completed: h.completed.clone(),
        waker_out: h.waker.clone(),
    };
    (p, h)
}

fn wake(h: &ProbeHandles) -> bool {
    match h.waker.lock().unwrap().as_ref() {
        Some(w) => {
            w.wake_by_ref();
            true
        }
        None => false,
    }
}

/// A waker held past its task's completion must do nothing: no panic, no
/// stale execution, no injector entry.
#[test]
fn wake_after_completion_is_noop() {
    let ex = Executor::inline();
    let (p, h) = probe();
    h.ready.store(true, Ordering::SeqCst);
    ex.spawn(p);
    assert!(ex.poll_one());
    assert!(h.completed.load(Ordering::SeqCst));
    assert_eq!(ex.live_tasks(), 0);
    // The stashed waker outlives the task; waking through it is inert.
    assert!(wake(&h));
    assert_eq!(ex.queued(), 0, "wake-after-drop queued nothing");
    assert!(!ex.poll_one());
    assert_eq!(h.polls.load(Ordering::SeqCst), 1, "no zombie poll");
    assert_eq!(h.drops.load(Ordering::SeqCst), 1, "no double drop");
}

/// Same contract for a task removed by abort rather than completion.
#[test]
fn wake_after_abort_drop_is_noop() {
    let ex = Executor::inline();
    let (p, h) = probe();
    let handle = ex.spawn(p);
    assert!(ex.poll_one()); // parks, stashes waker
    assert!(handle.abort());
    assert!(ex.poll_one()); // worker drops the future
    assert_eq!(h.drops.load(Ordering::SeqCst), 1);
    assert!(wake(&h));
    assert_eq!(ex.queued(), 0);
    assert!(!ex.poll_one());
    assert_eq!(h.drops.load(Ordering::SeqCst), 1);
    assert!(!h.completed.load(Ordering::SeqCst));
}

/// FIFO injector fairness: K perpetually-ready tasks (each re-queuing via
/// `yield_now`) are served strict round-robin — at every point the
/// most-served and least-served live tasks differ by at most one poll, so
/// no ready task starves across any window of K ticks.
#[test]
fn injector_round_robin_fairness() {
    const K: usize = 5;
    const ROUNDS: usize = 40;
    let ex = Executor::inline();
    let served: Vec<Arc<AtomicUsize>> = (0..K).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    for counter in &served {
        let counter = counter.clone();
        ex.spawn(async move {
            for _ in 0..ROUNDS {
                counter.fetch_add(1, Ordering::SeqCst);
                yield_now().await;
            }
        });
    }
    let mut polled = 0usize;
    while ex.live_tasks() > 0 {
        assert!(ex.poll_one(), "ready tasks pending but injector empty");
        polled += 1;
        assert!(polled <= K * (ROUNDS + 1), "injector loops");
        let counts: Vec<usize> = served.iter().map(|c| c.load(Ordering::SeqCst)).collect();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        // Finished tasks cap at ROUNDS; only compare while all live.
        if max < ROUNDS {
            assert!(
                max - min <= 1,
                "starvation: serve counts diverged: {counts:?}"
            );
        }
    }
    for c in &served {
        assert_eq!(c.load(Ordering::SeqCst), ROUNDS);
    }
}

// --------------------------- property test ---------------------------

/// Reference model of one task on an inline executor.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ModelState {
    Queued,
    Idle,
    Gone,
}

#[derive(Debug)]
struct Model {
    state: ModelState,
    abort: bool,
    ready: bool,
    completed: bool,
    drops: usize,
    polled_once: bool,
}

impl Model {
    fn new() -> Self {
        Self {
            state: ModelState::Queued,
            abort: false,
            ready: false,
            completed: false,
            drops: 0,
            polled_once: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Drive `Executor::poll_one`.
    Poll,
    /// Make the future ready, then wake it through the stashed waker.
    SetReadyAndWake,
    /// Wake without making the future ready.
    SpuriousWake,
    /// `AbortHandle::abort`.
    Abort,
}

fn apply_model(m: &mut Model, op: Op) -> bool {
    match op {
        Op::Poll => match m.state {
            ModelState::Queued => {
                if m.abort {
                    m.state = ModelState::Gone;
                    m.drops += 1;
                } else {
                    m.polled_once = true;
                    if m.ready {
                        m.state = ModelState::Gone;
                        m.drops += 1;
                        m.completed = true;
                    } else {
                        m.state = ModelState::Idle;
                    }
                }
                true
            }
            ModelState::Idle | ModelState::Gone => false,
        },
        Op::SetReadyAndWake | Op::SpuriousWake => {
            if matches!(op, Op::SetReadyAndWake) {
                m.ready = true;
            }
            if m.polled_once && m.state == ModelState::Idle {
                m.state = ModelState::Queued;
            }
            // Waking Queued/Gone (or before any waker exists) changes
            // nothing; return value mirrors "a waker was available".
            m.polled_once
        }
        Op::Abort => {
            let delivered = m.state != ModelState::Gone && !m.abort;
            if delivered {
                m.abort = true;
                if m.state == ModelState::Idle {
                    m.state = ModelState::Queued;
                }
            }
            delivered
        }
    }
}

proptest! {
    /// Random poll/wake/abort interleavings: the real executor agrees
    /// with the reference model on every observable after every step —
    /// poll productivity, abort delivery, liveness, completion, and
    /// exactly-once future drop.
    #[test]
    fn executor_matches_reference_model(
        ops in prop::collection::vec(
            prop_oneof![
                Just(Op::Poll),
                Just(Op::Poll), // weight polls up so sequences make progress
                Just(Op::SetReadyAndWake),
                Just(Op::SpuriousWake),
                Just(Op::Abort),
            ],
            1..40,
        ),
    ) {
        let ex = Executor::inline();
        let (p, h) = probe();
        let handle = ex.spawn(p);
        let mut model = Model::new();
        for op in ops {
            let expect = apply_model(&mut model, op);
            let got = match op {
                Op::Poll => ex.poll_one(),
                Op::SetReadyAndWake => {
                    h.ready.store(true, Ordering::SeqCst);
                    wake(&h)
                }
                Op::SpuriousWake => wake(&h),
                Op::Abort => handle.abort(),
            };
            prop_assert_eq!(got, expect, "op {:?} diverged (model {:?})", op, model);
            let live = model.state != ModelState::Gone;
            prop_assert_eq!(ex.live_tasks(), live as usize, "liveness after {:?}", op);
            prop_assert_eq!(handle.is_live(), live);
            prop_assert_eq!(h.drops.load(Ordering::SeqCst), model.drops, "drops after {:?}", op);
            prop_assert_eq!(
                h.completed.load(Ordering::SeqCst),
                model.completed,
                "completion after {:?}",
                op
            );
        }
        // Drain: abort whatever is left and drive to quiescence; the
        // future must be dropped exactly once no matter the prefix.
        handle.abort();
        while ex.poll_one() {}
        ex.shutdown();
        prop_assert_eq!(ex.live_tasks(), 0);
        prop_assert_eq!(h.drops.load(Ordering::SeqCst), 1, "exactly one drop at the end");
    }
}
