//! The end-to-end async harness: wire the executor, timer, server, load
//! generator and supervisor together for one wall-clock run.
//!
//! Deliberately the same surface as `atropos-live`'s harness — same
//! [`LiveConfig`], same [`ControlMode`], same [`LiveReport`] — so the
//! cross-substrate differential can pin one configuration and compare the
//! runtime's *decisions* with the substrate as the only variable. What
//! differs underneath: requests are futures on the hand-rolled executor,
//! and in [`ControlMode::Atropos`] the installed initiator is the
//! [`AbortRegistry`] — cancellation is future drop, not a token.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use atropos::ticker::Ticker;
use atropos::AtroposRuntime;
use atropos_live::{
    assemble_report, live_atropos_config, ControlMode, LiveConfig, LiveReport, ReportInputs,
    Request, RequestClass, CULPRIT_KEY_BASE,
};
use atropos_sim::SystemClock;
use atropos_substrate::{RuntimePort, ScenarioDescriptor};

use crate::abort::AbortRegistry;
use crate::executor::Executor;
use crate::server::{AsyncServerCtx, TaskPool};
use crate::timer::Timer;

/// Open-loop load generation against the task pool: request `n` is due at
/// `start + n * interarrival` whether or not the server keeps up; backlog
/// queues in the pool as visible latency. Culprits inject once at
/// `culprit_after`, then every `culprit_every` if configured — the same
/// schedule and key discipline as the thread substrate's generator.
pub fn generate(pool: &Arc<TaskPool>) -> u64 {
    let ctx = pool.ctx().clone();
    let cfg = ctx.cfg.clone();
    let start = Instant::now();
    let mut offered = 0u64;
    let mut seq = 0u64;
    let mut culprit_seq = 0u64;
    let mut next_culprit = Some(cfg.culprit_after);
    while !ctx.stopping() {
        let due = cfg.interarrival * seq as u32;
        let elapsed = start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
            if ctx.stopping() {
                break;
            }
        }
        if let Some(at) = next_culprit {
            if start.elapsed() >= at {
                let accepted = pool.submit(Request {
                    class: RequestClass::Culprit(cfg.culprit_kind),
                    key: CULPRIT_KEY_BASE + culprit_seq,
                    enqueued_ns: ctx.clock.now_ns(),
                });
                if accepted {
                    offered += 1;
                }
                culprit_seq += 1;
                next_culprit = cfg.culprit_every.map(|every| at + every);
            }
        }
        let accepted = pool.submit(Request {
            class: RequestClass::Normal,
            key: seq,
            enqueued_ns: ctx.clock.now_ns(),
        });
        if accepted {
            offered += 1;
        }
        seq += 1;
    }
    ctx.metrics.offered.fetch_add(offered, Ordering::Relaxed);
    offered
}

/// Runs one complete wall-clock async serving session and reports it.
pub fn run(cfg: LiveConfig, mode: ControlMode) -> LiveReport {
    run_with(cfg, mode, |port| port)
}

/// Like [`run`], but the server emits through `wrap(runtime)` — the hook
/// where chaos middleware is stacked over an async run, unchanged from
/// the thread substrate. The initiator installs and the supervisor ticks
/// *through* the wrapped port.
///
/// Shutdown ordering (each step depends on the previous): offered load
/// stops, the stop flag ends culprit holds at their next chunk, the pool
/// closes and drains the backlog (every accepted request is measured),
/// the supervisor stops ticking, and only then do the executor and timer
/// shut down — a tick must never race a dead executor, and executor
/// shutdown drops any straggler future whose scope re-enters the port.
pub fn run_with(
    cfg: LiveConfig,
    mode: ControlMode,
    wrap: impl FnOnce(Arc<dyn RuntimePort>) -> Arc<dyn RuntimePort>,
) -> LiveReport {
    run_instrumented(cfg, mode, wrap).0
}

/// Like [`run_with`], but also hands back the underlying runtime so a
/// checker can take a [`DebugSnapshot`](atropos::DebugSnapshot) of the
/// quiesced state — the chaos fault leg validates its invariants against
/// this after the report is in.
pub fn run_instrumented(
    cfg: LiveConfig,
    mode: ControlMode,
    wrap: impl FnOnce(Arc<dyn RuntimePort>) -> Arc<dyn RuntimePort>,
) -> (LiveReport, Arc<AtroposRuntime>) {
    let clock = Arc::new(SystemClock::new());
    let atropos_cfg = match &mode {
        ControlMode::Atropos(c) => c.clone(),
        ControlMode::NoControl => live_atropos_config(),
    };
    let rt = Arc::new(AtroposRuntime::new(atropos_cfg, clock));
    let port = wrap(rt.clone());
    let registry = Arc::new(AbortRegistry::new());
    let obs = atropos_obs::Observer::install(&rt, atropos_obs::DEFAULT_RING_CAPACITY);
    let controlled = matches!(mode, ControlMode::Atropos(_));
    if controlled {
        registry.install_port(&port);
    }
    let timer = Timer::spawn();
    let executor = Arc::new(Executor::new(cfg.workers.max(1)));
    let ctx = Arc::new(AsyncServerCtx::with_port(
        rt.clone(),
        port.clone(),
        registry.clone(),
        timer.clone(),
        cfg.clone(),
    ));
    let pool = TaskPool::new(ctx.clone(), executor.clone());
    let mut ticker = controlled.then(|| {
        let tick_port = port.clone();
        Ticker::spawn_fn(move || tick_port.tick(), cfg.tick_period, |_| {})
    });

    let gen_pool = pool.clone();
    let generator = std::thread::Builder::new()
        .name("async-loadgen".into())
        .spawn(move || generate(&gen_pool))
        .expect("spawn loadgen");

    std::thread::sleep(cfg.run_for);
    ctx.stop.store(true, Ordering::Release);
    generator.join().expect("loadgen panicked");
    pool.close();
    // Generous drain bound: backlog service plus one full culprit hold.
    let drained = pool.wait_drained(cfg.run_for + cfg.culprit_hold + Duration::from_secs(10));
    debug_assert!(drained, "async pool failed to drain");

    let ticks = match ticker.as_mut() {
        Some(t) => {
            t.stop();
            t.ticks()
        }
        None => 0,
    };
    executor.shutdown();
    timer.shutdown();

    let inputs = ReportInputs {
        first_delivery_ns: registry.first_delivery_ns(),
        delivered: registry.delivered(),
        first_culprit_start_ns: ctx.metrics.first_culprit_start_ns.load(Ordering::Acquire),
        offered: ctx.metrics.offered.load(Ordering::Relaxed),
        culprits_started: ctx.metrics.culprits_started.load(Ordering::Relaxed),
        culprits_canceled: ctx.metrics.culprits_canceled.load(Ordering::Relaxed),
        ticks,
    };
    let report = assemble_report(
        &rt,
        &obs,
        &ctx.metrics.victim.lock(),
        &ctx.metrics.culprit.lock(),
        inputs,
    );
    (report, rt)
}

/// Runs one async session at a [`ScenarioDescriptor`]'s pinned geometry —
/// the descriptor-file entry point the differential and capacity
/// harnesses share.
pub fn run_descriptor(d: &ScenarioDescriptor, mode: ControlMode) -> LiveReport {
    run(LiveConfig::from_scenario(d), mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short no-culprit, no-control smoke run: the async harness serves
    /// load, drains cleanly, and measures sane latencies.
    #[test]
    fn smoke_run_without_culprit() {
        let cfg = LiveConfig {
            run_for: Duration::from_millis(300),
            culprit_after: Duration::from_secs(3600), // never
            ..LiveConfig::default()
        };
        let report = run(cfg, ControlMode::NoControl);
        assert!(report.victim.count >= 50, "served {}", report.victim.count);
        assert_eq!(report.culprits_started, 0);
        assert_eq!(report.culprits_canceled, 0);
        assert_eq!(report.ticks, 0);
        assert_eq!(report.runtime.cancel.issued, 0);
        assert!(report.victim.p99_ns > 0);
        // Backlog fully drained: offered == completed.
        assert_eq!(report.offered, report.victim.count);
    }
}
