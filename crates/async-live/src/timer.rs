//! A wall-clock timer for the hand-rolled executor: one thread, a
//! deadline heap, and [`Sleep`] futures.
//!
//! The executor knows nothing about time; parked futures are woken by
//! whoever holds their waker. For time-based parking that is the
//! [`Timer`]: `sleep` registers a `(deadline, waker)` entry, the timer
//! thread waits until the earliest deadline and fires the wakers that
//! came due. A dropped [`Sleep`] (an aborted task sleeping across an
//! `await`) deregisters its waker but leaves the heap entry behind — the
//! entry fires into nothing, which is safe precisely because
//! wake-after-drop is a no-op in this substrate. Entries are small and
//! runs are short; stale entries are a non-issue.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

struct TimerState {
    /// Min-heap of (deadline, entry id).
    deadlines: BinaryHeap<Reverse<(Instant, u64)>>,
    /// Live entries; absent id = the sleeper completed or was dropped.
    wakers: HashMap<u64, Waker>,
    next_id: u64,
    shutdown: bool,
}

struct TimerInner {
    st: Mutex<TimerState>,
    cv: Condvar,
}

/// The timer service. Create with [`Timer::spawn`], share via `Arc`,
/// stop with [`Timer::shutdown`] (also run on drop).
pub struct Timer {
    inner: Arc<TimerInner>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Timer {
    /// Starts the timer thread.
    pub fn spawn() -> Arc<Self> {
        let inner = Arc::new(TimerInner {
            st: Mutex::new(TimerState {
                deadlines: BinaryHeap::new(),
                wakers: HashMap::new(),
                next_id: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let thread_inner = inner.clone();
        let thread = std::thread::Builder::new()
            .name("async-timer".into())
            .spawn(move || timer_loop(&thread_inner))
            .expect("spawn async timer");
        Arc::new(Self {
            inner,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// A future that completes `dur` from now.
    pub fn sleep(self: &Arc<Self>, dur: Duration) -> Sleep {
        Sleep {
            inner: self.inner.clone(),
            deadline: Instant::now() + dur,
            id: None,
        }
    }

    /// Pending sleep entries (live wakers).
    pub fn pending(&self) -> usize {
        self.inner.st.lock().wakers.len()
    }

    /// Stops and joins the timer thread. Idempotent.
    pub fn shutdown(&self) {
        self.inner.st.lock().shutdown = true;
        self.inner.cv.notify_all();
        if let Some(h) = self.thread.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn timer_loop(inner: &TimerInner) {
    loop {
        let mut fired: Vec<Waker> = Vec::new();
        {
            let mut st = inner.st.lock();
            if st.shutdown {
                return;
            }
            let now = Instant::now();
            while let Some(&Reverse((deadline, id))) = st.deadlines.peek() {
                if deadline > now {
                    break;
                }
                st.deadlines.pop();
                if let Some(w) = st.wakers.remove(&id) {
                    fired.push(w);
                }
            }
            if fired.is_empty() {
                match st.deadlines.peek().copied() {
                    None => inner.cv.wait(&mut st),
                    Some(Reverse((deadline, _))) => {
                        let _ = inner
                            .cv
                            .wait_for(&mut st, deadline.saturating_duration_since(now));
                    }
                }
            }
        }
        // Wake outside the timer lock: wakers take the executor lock.
        for w in fired {
            w.wake();
        }
    }
}

/// Future returned by [`Timer::sleep`].
pub struct Sleep {
    inner: Arc<TimerInner>,
    deadline: Instant,
    id: Option<u64>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            if let Some(id) = self.id.take() {
                self.inner.st.lock().wakers.remove(&id);
            }
            return Poll::Ready(());
        }
        let deadline = self.deadline;
        let registered = {
            let mut st = self.inner.st.lock();
            match self.id {
                Some(id) => {
                    // Re-polled before the deadline: refresh the waker.
                    st.wakers.insert(id, cx.waker().clone());
                    None
                }
                None => {
                    let id = st.next_id;
                    st.next_id += 1;
                    st.wakers.insert(id, cx.waker().clone());
                    st.deadlines.push(Reverse((deadline, id)));
                    Some(id)
                }
            }
        };
        if let Some(id) = registered {
            self.id = Some(id);
            // A new earliest deadline may need the thread to re-arm.
            self.inner.cv.notify_all();
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            self.inner.st.lock().wakers.remove(&id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn sleep_completes_after_deadline() {
        let timer = Timer::spawn();
        let ex = Executor::new(1);
        let done = Arc::new(AtomicBool::new(false));
        let d = done.clone();
        let t = timer.clone();
        let start = Instant::now();
        ex.spawn(async move {
            t.sleep(Duration::from_millis(20)).await;
            d.store(true, Ordering::SeqCst);
        });
        assert!(ex.wait_idle(Duration::from_secs(5)));
        assert!(done.load(Ordering::SeqCst));
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(timer.pending(), 0);
        ex.shutdown();
        timer.shutdown();
    }

    #[test]
    fn dropped_sleep_deregisters_its_waker() {
        let timer = Timer::spawn();
        let ex = Executor::new(1);
        let t = timer.clone();
        let handle = ex.spawn(async move {
            t.sleep(Duration::from_secs(3600)).await;
        });
        // Let the task park in the sleep.
        let deadline = Instant::now() + Duration::from_secs(5);
        while timer.pending() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(timer.pending(), 1);
        assert!(handle.abort());
        assert!(ex.wait_idle(Duration::from_secs(5)));
        assert_eq!(timer.pending(), 0, "aborted sleeper removed its waker");
        ex.shutdown();
        timer.shutdown();
    }
}
