//! Async resource primitives wired to the substrate port.
//!
//! The async counterparts of `atropos-live`'s traced primitives: same
//! Figure 6b protocol (`slow_by` once when a wait begins, `get` at the
//! wait→hold transition, `free` on guard drop), but acquisition is a
//! future and the waiter queue holds wakers instead of parked threads.
//!
//! ## The RAII hold-release argument
//!
//! Cancellation in this substrate is future drop: nothing ever resumes a
//! canceled task to let it unwind. Release therefore cannot live in
//! request code — it lives **entirely in guard destructors**, which run
//! when the dropped future's locals are destroyed:
//!
//! - a held [`AsyncLockGuard`] / [`AsyncTicketPermit`] emits exactly one
//!   `free` and wakes the next waiter, whether the task completed or was
//!   dropped mid-`await`;
//! - a *pending* acquire future that is dropped deregisters its waiter
//!   entry and emits nothing (it acquired nothing) — and, if the resource
//!   is currently free, re-wakes the next waiter so a wake "swallowed" by
//!   the dropped task is never lost.
//!
//! That last clause is the abort-during-wake race: a release may wake
//! waiter A just before A's task is aborted. A's acquire future is
//! dropped without re-polling, so A passes the baton on. Exactly-once
//! `free` emission holds because only a constructed guard emits `free`,
//! and a guard is constructed at most once per `get`.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use atropos::{ResourceId, ResourceType, TaskId};
use atropos_live::{AccessStats, LruBuffer};
use atropos_substrate::RuntimePort;
use parking_lot::Mutex;

use crate::timer::{Sleep, Timer};

/// One entry in a waiter queue: a stable id (so a dropped future can
/// remove exactly its own entry) plus the most recent waker.
struct Waiter {
    id: u64,
    waker: Waker,
}

fn remove_waiter(waiters: &mut VecDeque<Waiter>, id: u64) {
    if let Some(pos) = waiters.iter().position(|w| w.id == id) {
        waiters.remove(pos);
    }
}

fn front_waker(waiters: &VecDeque<Waiter>) -> Option<Waker> {
    waiters.front().map(|w| w.waker.clone())
}

// ---------------------------------------------------------------- lock --

struct LockState {
    locked: bool,
    next_wait: u64,
    waiters: VecDeque<Waiter>,
}

/// An async mutual-exclusion lock that reports waits, holds and releases
/// to Atropos as a LOCK resource. Unlike `TracedLock<T>` it protects a
/// critical *section*, not data: async guards handing out references
/// across `await` points would need unsafe code this crate has no reason
/// to carry.
pub struct AsyncTracedLock {
    port: Arc<dyn RuntimePort>,
    rid: ResourceId,
    st: Mutex<LockState>,
}

impl AsyncTracedLock {
    /// Registers a LOCK resource named `name`.
    pub fn new(port: Arc<dyn RuntimePort>, name: &str) -> Self {
        let rid = port.register_resource(name, ResourceType::Lock);
        Self {
            port,
            rid,
            st: Mutex::new(LockState {
                locked: false,
                next_wait: 0,
                waiters: VecDeque::new(),
            }),
        }
    }

    /// The Atropos resource this lock reports to.
    pub fn resource_id(&self) -> ResourceId {
        self.rid
    }

    /// Acquires the lock on behalf of `task`. An uncontended acquire
    /// emits only `get`; a contended one emits `slow_by` once when the
    /// wait begins (the §3.2 wait→hold protocol).
    pub fn lock(&self, task: TaskId) -> LockAcquire<'_> {
        LockAcquire {
            lock: self,
            task,
            wait_id: None,
            done: false,
        }
    }

    /// True while some task holds the lock.
    pub fn is_locked(&self) -> bool {
        self.st.lock().locked
    }

    /// Waiters currently queued.
    pub fn waiters(&self) -> usize {
        self.st.lock().waiters.len()
    }
}

/// Future returned by [`AsyncTracedLock::lock`].
pub struct LockAcquire<'a> {
    lock: &'a AsyncTracedLock,
    task: TaskId,
    wait_id: Option<u64>,
    done: bool,
}

impl<'a> Future for LockAcquire<'a> {
    type Output = AsyncLockGuard<'a>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.lock.st.lock();
        if !st.locked {
            st.locked = true;
            if let Some(id) = self.wait_id.take() {
                remove_waiter(&mut st.waiters, id);
            }
            drop(st);
            self.done = true;
            self.lock.port.get(self.task, self.lock.rid, 1);
            return Poll::Ready(AsyncLockGuard {
                lock: self.lock,
                task: self.task,
            });
        }
        match self.wait_id {
            Some(id) => {
                // Woken but lost the race (or spurious): refresh the waker.
                if let Some(w) = st.waiters.iter_mut().find(|w| w.id == id) {
                    w.waker = cx.waker().clone();
                }
            }
            None => {
                let id = st.next_wait;
                st.next_wait += 1;
                st.waiters.push_back(Waiter {
                    id,
                    waker: cx.waker().clone(),
                });
                self.wait_id = Some(id);
                drop(st);
                self.lock.port.slow_by(self.task, self.lock.rid, 1);
            }
        }
        Poll::Pending
    }
}

impl Drop for LockAcquire<'_> {
    fn drop(&mut self) {
        if self.done {
            return; // a guard exists; release is its job
        }
        let Some(id) = self.wait_id else {
            return; // never polled while contended: acquired nothing
        };
        let mut st = self.lock.st.lock();
        remove_waiter(&mut st.waiters, id);
        // Pass the baton: a release may have woken *us* just before the
        // drop; if the lock is free the next waiter must hear about it.
        let next = if !st.locked {
            front_waker(&st.waiters)
        } else {
            None
        };
        drop(st);
        if let Some(w) = next {
            w.wake();
        }
    }
}

/// RAII guard for [`AsyncTracedLock`]; emits `free` and wakes the next
/// waiter on drop — including the drop performed by an abort.
pub struct AsyncLockGuard<'a> {
    lock: &'a AsyncTracedLock,
    task: TaskId,
}

impl Drop for AsyncLockGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.lock.st.lock();
        st.locked = false;
        let next = front_waker(&st.waiters);
        drop(st);
        self.lock.port.free(self.task, self.lock.rid, 1);
        if let Some(w) = next {
            w.wake();
        }
    }
}

// ----------------------------------------------------------- semaphore --

struct SemState {
    available: usize,
    next_wait: u64,
    waiters: VecDeque<Waiter>,
}

/// An async counting semaphore of concurrency tickets, reported as a
/// QUEUE resource (the bounded worker/connection-pool analog).
pub struct AsyncTicketSemaphore {
    port: Arc<dyn RuntimePort>,
    rid: ResourceId,
    st: Mutex<SemState>,
}

impl AsyncTicketSemaphore {
    /// Registers a QUEUE resource named `name` with `capacity` tickets.
    pub fn new(port: Arc<dyn RuntimePort>, name: &str, capacity: usize) -> Self {
        let rid = port.register_resource(name, ResourceType::Queue);
        Self {
            port,
            rid,
            st: Mutex::new(SemState {
                available: capacity,
                next_wait: 0,
                waiters: VecDeque::new(),
            }),
        }
    }

    /// The Atropos resource this semaphore reports to.
    pub fn resource_id(&self) -> ResourceId {
        self.rid
    }

    /// Acquires one ticket on behalf of `task`.
    pub fn acquire(&self, task: TaskId) -> TicketAcquire<'_> {
        TicketAcquire {
            sem: self,
            task,
            wait_id: None,
            done: false,
        }
    }

    /// Tickets currently available.
    pub fn available(&self) -> usize {
        self.st.lock().available
    }
}

/// Future returned by [`AsyncTicketSemaphore::acquire`].
pub struct TicketAcquire<'a> {
    sem: &'a AsyncTicketSemaphore,
    task: TaskId,
    wait_id: Option<u64>,
    done: bool,
}

impl<'a> Future for TicketAcquire<'a> {
    type Output = AsyncTicketPermit<'a>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.sem.st.lock();
        if st.available > 0 {
            st.available -= 1;
            if let Some(id) = self.wait_id.take() {
                remove_waiter(&mut st.waiters, id);
            }
            drop(st);
            self.done = true;
            self.sem.port.get(self.task, self.sem.rid, 1);
            return Poll::Ready(AsyncTicketPermit {
                sem: self.sem,
                task: self.task,
            });
        }
        match self.wait_id {
            Some(id) => {
                if let Some(w) = st.waiters.iter_mut().find(|w| w.id == id) {
                    w.waker = cx.waker().clone();
                }
            }
            None => {
                let id = st.next_wait;
                st.next_wait += 1;
                st.waiters.push_back(Waiter {
                    id,
                    waker: cx.waker().clone(),
                });
                self.wait_id = Some(id);
                drop(st);
                self.sem.port.slow_by(self.task, self.sem.rid, 1);
            }
        }
        Poll::Pending
    }
}

impl Drop for TicketAcquire<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        let Some(id) = self.wait_id else {
            return;
        };
        let mut st = self.sem.st.lock();
        remove_waiter(&mut st.waiters, id);
        let next = if st.available > 0 {
            front_waker(&st.waiters)
        } else {
            None
        };
        drop(st);
        if let Some(w) = next {
            w.wake();
        }
    }
}

/// RAII permit for [`AsyncTicketSemaphore`]; emits `free` and wakes the
/// next waiter on drop.
pub struct AsyncTicketPermit<'a> {
    sem: &'a AsyncTicketSemaphore,
    task: TaskId,
}

impl Drop for AsyncTicketPermit<'_> {
    fn drop(&mut self) {
        let mut st = self.sem.st.lock();
        st.available += 1;
        let next = front_waker(&st.waiters);
        drop(st);
        self.sem.port.free(self.task, self.sem.rid, 1);
        if let Some(w) = next {
            w.wake();
        }
    }
}

// ---------------------------------------------------------------- lru --

/// An async LRU page buffer reported as a MEMORY resource.
///
/// Bookkeeping (residency, owner attribution, the `get`/`free`/`slow_by`
/// emission) is the live crate's [`LruBuffer`] — it never blocks, so the
/// sync implementation is reused verbatim. What *is* async is the miss
/// cost: where a live worker thread sleeps off the penalty, an async
/// request parks on the [`Timer`], and an abort mid-penalty simply stops
/// paying it (the eviction events were already attributed at access
/// time, so dropping here loses nothing).
pub struct AsyncLruBuffer {
    inner: LruBuffer,
    timer: Arc<Timer>,
    miss_penalty: Duration,
}

impl AsyncLruBuffer {
    /// Registers a MEMORY resource named `name` holding up to `capacity`
    /// pages, charging `miss_penalty` of virtual load per missed page.
    pub fn new(
        port: Arc<dyn RuntimePort>,
        name: &str,
        capacity: usize,
        timer: Arc<Timer>,
        miss_penalty: Duration,
    ) -> Self {
        Self {
            inner: LruBuffer::new(port, name, capacity),
            timer,
            miss_penalty,
        }
    }

    /// The Atropos resource this buffer reports to.
    pub fn resource_id(&self) -> ResourceId {
        self.inner.resource_id()
    }

    /// Touches `pages` on behalf of `task` (emitting the protocol events
    /// synchronously), then awaits the miss penalty.
    pub fn access<'a>(&'a self, task: TaskId, pages: &[u64]) -> BufferAccess<'a> {
        let stats = self.inner.access(task, pages);
        let penalty = (stats.misses > 0).then(|| {
            self.timer
                .sleep(self.miss_penalty * u32::try_from(stats.misses).unwrap_or(u32::MAX))
        });
        BufferAccess {
            stats,
            penalty,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

/// Future returned by [`AsyncLruBuffer::access`]: the stats are final at
/// creation; awaiting pays the miss penalty.
pub struct BufferAccess<'a> {
    stats: AccessStats,
    penalty: Option<Sleep>,
    // Tie the lifetime to the buffer so the API reads like the sync one.
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BufferAccess<'_> {
    /// What the access did (available without awaiting).
    pub fn stats(&self) -> AccessStats {
        self.stats
    }
}

impl Future for BufferAccess<'_> {
    type Output = AccessStats;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<AccessStats> {
        let this = self.get_mut();
        match this.penalty.as_mut() {
            Some(sleep) => match Pin::new(sleep).poll(cx) {
                Poll::Ready(()) => Poll::Ready(this.stats),
                Poll::Pending => Poll::Pending,
            },
            None => Poll::Ready(this.stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use atropos::{AtroposConfig, AtroposRuntime};
    use atropos_sim::SystemClock;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn runtime() -> Arc<AtroposRuntime> {
        Arc::new(AtroposRuntime::new(
            AtroposConfig::default(),
            Arc::new(SystemClock::new()),
        ))
    }

    #[test]
    fn uncontended_lock_emits_get_and_free() {
        let rt = runtime();
        let lock = Arc::new(AsyncTracedLock::new(rt.clone(), "l"));
        let t = rt.create_cancel(None);
        let ex = Executor::inline();
        let l = lock.clone();
        ex.spawn(async move {
            let _g = l.lock(t).await;
        });
        assert!(ex.poll_one());
        assert_eq!(ex.live_tasks(), 0);
        assert!(!lock.is_locked());
        // get + free, no slow_by.
        assert_eq!(rt.stats().trace_events, 2);
    }

    #[test]
    fn contended_lock_emits_slow_by_once_and_hands_over() {
        let rt = runtime();
        let lock = Arc::new(AsyncTracedLock::new(rt.clone(), "l"));
        let a = rt.create_cancel(None);
        let b = rt.create_cancel(None);
        let ex = Executor::inline();
        let order = Arc::new(AtomicU64::new(0));

        let (l, o) = (lock.clone(), order.clone());
        ex.spawn(async move {
            let _g = l.lock(a).await;
            // Hold until the other task has queued, then yield and release.
            while o.load(Ordering::SeqCst) == 0 {
                crate::executor::yield_now().await;
            }
        });
        let (l, o) = (lock.clone(), order.clone());
        ex.spawn(async move {
            let _g = l.lock(b).await;
            o.store(2, Ordering::SeqCst);
        });
        // Task A acquires, task B queues (slow_by), then A spins yielding.
        assert!(ex.poll_one()); // A: acquire + park on yield loop
        assert!(ex.poll_one()); // B: contended, registers waiter
        assert_eq!(lock.waiters(), 1);
        order.store(1, Ordering::SeqCst);
        while ex.live_tasks() > 0 {
            assert!(ex.poll_one(), "deadlock: tasks parked with no wake");
        }
        assert_eq!(order.load(Ordering::SeqCst), 2, "B ran after A released");
        // A: get+free; B: slow_by+get+free.
        assert_eq!(rt.stats().trace_events, 5);
        assert!(!lock.is_locked());
    }

    #[test]
    fn dropped_waiter_passes_the_baton() {
        let rt = runtime();
        let lock = Arc::new(AsyncTracedLock::new(rt.clone(), "l"));
        let ex = Executor::inline();
        let holder = rt.create_cancel(None);
        let w1 = rt.create_cancel(None);
        let w2 = rt.create_cancel(None);
        let got2 = Arc::new(AtomicU64::new(0));

        let l = lock.clone();
        let h_holder = ex.spawn(async move {
            let _g = l.lock(holder).await;
            std::future::pending::<()>().await;
        });
        let l = lock.clone();
        let h_w1 = ex.spawn(async move {
            let _g = l.lock(w1).await;
            std::future::pending::<()>().await;
        });
        let l = lock.clone();
        let g2 = got2.clone();
        ex.spawn(async move {
            let _g = l.lock(w2).await;
            g2.store(1, Ordering::SeqCst);
        });
        assert!(ex.poll_one()); // holder acquires
        assert!(ex.poll_one()); // w1 waits
        assert!(ex.poll_one()); // w2 waits
        assert_eq!(lock.waiters(), 2);
        // Release the lock (abort the holder): wakes w1.
        assert!(h_holder.abort());
        assert!(ex.poll_one()); // drop holder future → guard frees → wakes w1
                                // Abort w1 before it re-polls: its acquire future must hand the
                                // wake to w2 instead of swallowing it.
        assert!(h_w1.abort());
        // Only w2 remains after the drops; drive until it completes.
        while ex.live_tasks() > 0 {
            assert!(ex.poll_one(), "baton lost: w2 never woken");
        }
        assert_eq!(got2.load(Ordering::SeqCst), 1, "w2 acquired after handoff");
    }

    #[test]
    fn semaphore_counts_and_wakes() {
        let rt = runtime();
        let sem = Arc::new(AsyncTicketSemaphore::new(rt.clone(), "tickets", 1));
        let a = rt.create_cancel(None);
        let b = rt.create_cancel(None);
        let ex = Executor::inline();
        let done = Arc::new(AtomicU64::new(0));

        let (s, d) = (sem.clone(), done.clone());
        ex.spawn(async move {
            let _p = s.acquire(a).await;
            crate::executor::yield_now().await;
            d.fetch_add(1, Ordering::SeqCst);
        });
        let (s, d) = (sem.clone(), done.clone());
        ex.spawn(async move {
            let _p = s.acquire(b).await;
            d.fetch_add(1, Ordering::SeqCst);
        });
        while ex.live_tasks() > 0 {
            assert!(ex.poll_one());
        }
        assert_eq!(done.load(Ordering::SeqCst), 2);
        assert_eq!(sem.available(), 1);
        // a: get+free; b: slow_by+get+free.
        assert_eq!(rt.stats().trace_events, 5);
    }

    #[test]
    fn buffer_access_resolves_stats_and_pays_penalty_async() {
        let rt = runtime();
        let timer = Timer::spawn();
        let buf = AsyncLruBuffer::new(
            rt.clone(),
            "pool",
            2,
            timer.clone(),
            Duration::from_millis(5),
        );
        let t = rt.create_cancel(None);
        let ex = Executor::new(1);
        let buf = Arc::new(buf);
        let b = buf.clone();
        let start = std::time::Instant::now();
        ex.spawn(async move {
            let stats = b.access(t, &[1, 2]).await;
            assert_eq!(stats.misses, 2);
            let stats = b.access(t, &[1, 2]).await;
            assert_eq!(stats.hits, 2);
        });
        assert!(ex.wait_idle(Duration::from_secs(5)));
        // Two misses at 5 ms each were actually awaited.
        assert!(start.elapsed() >= Duration::from_millis(10));
        ex.shutdown();
        timer.shutdown();
    }
}
