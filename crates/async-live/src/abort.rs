//! The future-drop cancel initiator: task keys → [`AbortHandle`]s.
//!
//! This is the third initiator category from the paper's survey. The sim
//! substrate unwinds requests in virtual time, the thread substrate raises
//! a cooperative `CancelToken` that the task must poll — here cancellation
//! is **detachment**: the initiator aborts the executor task and the
//! framework never hears from it again. No handler code checks any flag;
//! holds unwind purely through RAII guard drops when the future is
//! destroyed.
//!
//! ## Initiators only signal
//!
//! `AtroposRuntime::tick` invokes cancel initiators while holding its
//! internal decision lock. [`AbortHandle::abort`] is safe to call there
//! because it only flags the slot and requeues — the future drop (whose
//! guard destructors re-enter the port via `free`/`free_cancel`) always
//! happens on an executor worker. See the executor module docs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use atropos::TaskKey;
use atropos_sim::Clock;
use atropos_substrate::{CancelInitiator, RuntimePort};
use parking_lot::Mutex;

use crate::executor::AbortHandle;

/// Maps application task keys to the [`AbortHandle`] of the executor task
/// serving them — the async analog of the thread substrate's
/// `CancelRegistry`, with the same delivery accounting.
#[derive(Default)]
pub struct AbortRegistry {
    handles: Mutex<HashMap<u64, AbortHandle>>,
    /// Cancellations that aborted a live task.
    delivered: AtomicU64,
    /// Cancellations whose key had no live handle (request already
    /// finished, or aborted twice): counted, not an error — the same race
    /// the thread registry tolerates between KILL and session end.
    misses: AtomicU64,
    /// Runtime-clock stamp (ns) of the first delivered abort; 0 = none.
    first_delivery_ns: AtomicU64,
}

impl AbortRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the handle serving `key`. Call *before* launching the
    /// future (the executor's reserve/launch split exists so this cannot
    /// race with a fast completion).
    pub fn register(&self, key: u64, handle: AbortHandle) {
        self.handles.lock().insert(key, handle);
    }

    /// Forgets the handle for `key` (the task's scope ended on its own).
    pub fn unregister(&self, key: u64) {
        self.handles.lock().remove(&key);
    }

    /// Aborts the task registered under `key`, if any. Returns whether a
    /// live task was detached. The handle is cloned out of the registry
    /// lock first: `abort` takes the executor lock and lock nesting here
    /// would order registry → executor against unrelated callers.
    pub fn cancel(&self, key: u64, now_ns: u64) -> bool {
        let handle = self.handles.lock().remove(&key);
        let detached = handle.map(|h| h.abort()).unwrap_or(false);
        if detached {
            self.delivered.fetch_add(1, Ordering::Relaxed);
            let _ = self.first_delivery_ns.compare_exchange(
                0,
                now_ns.max(1),
                Ordering::AcqRel,
                Ordering::Acquire,
            );
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        detached
    }

    /// Installs this registry as the cancel initiator through `port`, so
    /// chaos middleware stacked over the runtime interposes on abort
    /// deliveries exactly as it does on token deliveries.
    pub fn install_port(self: &Arc<Self>, port: &Arc<dyn RuntimePort>) {
        port.install_initiator(Arc::new(AbortInitiator {
            registry: self.clone(),
            clock: port.clock(),
        }));
    }

    /// Aborts that detached a live task.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Cancellations that found no live handle.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Runtime-clock stamp of the first delivered abort, if any.
    pub fn first_delivery_ns(&self) -> Option<u64> {
        match self.first_delivery_ns.load(Ordering::Acquire) {
            0 => None,
            ns => Some(ns),
        }
    }

    /// Number of currently registered handles.
    pub fn len(&self) -> usize {
        self.handles.lock().len()
    }

    /// True if no handles are registered.
    pub fn is_empty(&self) -> bool {
        self.handles.lock().is_empty()
    }
}

/// The registry wearing the [`CancelInitiator`] hat. Reexec and parked
/// drops stay no-ops: a detached future is gone, and the open-loop
/// generator offers fresh load instead of replaying.
struct AbortInitiator {
    registry: Arc<AbortRegistry>,
    clock: Arc<dyn Clock>,
}

impl CancelInitiator for AbortInitiator {
    fn cancel(&self, key: TaskKey) {
        self.registry.cancel(key.0, self.clock.now_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;

    #[test]
    fn cancel_aborts_registered_task() {
        let ex = Executor::inline();
        let reg = Arc::new(AbortRegistry::new());
        let handle = ex.reserve();
        reg.register(7, handle.clone());
        ex.launch(&handle, std::future::pending());
        assert!(ex.poll_one()); // park the task
        assert!(reg.cancel(7, 123));
        assert!(ex.poll_one()); // worker performs the drop
        assert_eq!(ex.live_tasks(), 0);
        assert_eq!(reg.delivered(), 1);
        assert_eq!(reg.first_delivery_ns(), Some(123));
        assert!(reg.is_empty(), "delivery consumes the handle");
    }

    #[test]
    fn cancel_without_handle_is_a_miss() {
        let reg = AbortRegistry::new();
        assert!(!reg.cancel(9, 5));
        assert_eq!(reg.misses(), 1);
        assert_eq!(reg.first_delivery_ns(), None);
    }

    #[test]
    fn cancel_after_completion_is_a_miss() {
        let ex = Executor::inline();
        let reg = Arc::new(AbortRegistry::new());
        let handle = ex.reserve();
        reg.register(1, handle.clone());
        ex.launch(&handle, async {});
        assert!(ex.poll_one()); // completes
        reg.unregister(1);
        assert!(!reg.cancel(1, 10));
        assert_eq!(reg.delivered(), 0);
        assert_eq!(reg.misses(), 1);
    }

    #[test]
    fn initiator_routes_runtime_cancellations_to_abort() {
        use atropos::{AtroposConfig, AtroposRuntime};
        use atropos_sim::SystemClock;

        let rt = Arc::new(AtroposRuntime::new(
            AtroposConfig::default(),
            Arc::new(SystemClock::new()),
        ));
        let port: Arc<dyn RuntimePort> = rt.clone();
        let reg = Arc::new(AbortRegistry::new());
        reg.install_port(&port);

        let ex = Executor::inline();
        let handle = ex.reserve();
        reg.register(42, handle.clone());
        ex.launch(&handle, std::future::pending());
        assert!(ex.poll_one());
        let _task = port.create_cancel(Some(42));
        rt.cancel_key(TaskKey(42));
        assert_eq!(reg.delivered(), 1);
        assert!(ex.poll_one(), "abort requeued the task for dropping");
        assert_eq!(ex.live_tasks(), 0);
    }
}
