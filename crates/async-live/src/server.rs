//! The async mini-server: a bounded task pool serving classed requests
//! over the async traced resources.
//!
//! Structurally the mirror of `atropos-live`'s worker pool — same
//! [`Request`]/[`RequestClass`] vocabulary, same culprit families, same
//! open-loop admission — but requests are *futures* on the hand-rolled
//! [`Executor`], bounded by an admission gate of `cfg.workers` concurrent
//! tasks instead of `cfg.workers` threads. The cap matters for the
//! cross-substrate differential: it keeps the runtime-visible task
//! footprint (created/parked/running units) identical to the thread
//! substrate, so blame and policy see the same shape of system.
//!
//! The behavioral difference is cancellation. There is **no cancel token
//! anywhere in this crate**: culprit handlers never check a flag to
//! unwind. Every request's [`AbortHandle`] is registered with the
//! [`AbortRegistry`](crate::abort::AbortRegistry) before launch, and a
//! runtime cancellation detaches the future mid-`await`. Cleanup is
//! carried entirely by destructors — the async lock guards and ticket
//! permits release their holds, and [`TaskScope`] settles the unit with
//! the port (`record_drop` + `free_cancel` for an abort, `unit_finished` +
//! `free_cancel` for a completion) and re-admits backlog.
//!
//! The `ctx.stopping()` checks inside culprit hold loops are *shutdown*
//! plumbing, not cancellation: they bound the run when the harness ends
//! and are deliberately identical to the thread substrate's stop flag.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use atropos::{AtroposRuntime, TaskId};
use atropos_live::{CulpritKind, LiveConfig, Request, RequestClass, ServerMetrics};
use atropos_sim::Clock;
use atropos_substrate::RuntimePort;
use parking_lot::{Condvar, Mutex};

use crate::abort::AbortRegistry;
use crate::executor::Executor;
use crate::resources::{AsyncLruBuffer, AsyncTicketSemaphore, AsyncTracedLock};
use crate::timer::Timer;

/// Everything a request future needs, bundled for `Arc` sharing — the
/// async twin of `atropos-live`'s `ServerCtx`.
pub struct AsyncServerCtx {
    /// The concrete runtime, kept for introspection (stats, snapshots).
    pub rt: Arc<AtroposRuntime>,
    /// The port every component emits through; under fault injection it
    /// is a middleware stack ending at `rt`.
    pub port: Arc<dyn RuntimePort>,
    /// The runtime's clock (latency stamps comparable to cancel stamps).
    pub clock: Arc<dyn Clock>,
    /// Abort registry; installed as the cancel initiator in Atropos mode.
    pub registry: Arc<AbortRegistry>,
    /// The shared table lock (LOCK resource).
    pub table: AsyncTracedLock,
    /// Concurrency tickets (QUEUE resource).
    pub tickets: AsyncTicketSemaphore,
    /// The LRU page buffer (MEMORY resource).
    pub buffer: AsyncLruBuffer,
    /// Wall-clock sleeps for service times and miss penalties.
    pub timer: Arc<Timer>,
    /// Global shutdown flag: culprit hold loops end at their next chunk.
    pub stop: AtomicBool,
    /// Service-time and workload parameters (shared with the thread
    /// substrate so differentials pin both identically).
    pub cfg: LiveConfig,
    /// Completion metrics (the live crate's, reused verbatim;
    /// `culprits_canceled` counts aborted-and-dropped culprits here).
    pub metrics: ServerMetrics,
}

impl AsyncServerCtx {
    /// Builds the server state over `rt` with emission through `port`,
    /// registering the three traced resources.
    pub fn with_port(
        rt: Arc<AtroposRuntime>,
        port: Arc<dyn RuntimePort>,
        registry: Arc<AbortRegistry>,
        timer: Arc<Timer>,
        cfg: LiveConfig,
    ) -> Self {
        let clock = rt.clock();
        let table = AsyncTracedLock::new(port.clone(), "table_lock");
        let tickets = AsyncTicketSemaphore::new(port.clone(), "tickets", cfg.tickets);
        let buffer = AsyncLruBuffer::new(
            port.clone(),
            "buffer_pool",
            cfg.lru_capacity,
            timer.clone(),
            cfg.miss_penalty,
        );
        Self {
            rt,
            port,
            clock,
            registry,
            table,
            tickets,
            buffer,
            timer,
            stop: AtomicBool::new(false),
            cfg,
            metrics: ServerMetrics::default(),
        }
    }

    /// True once shutdown has been signaled.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

#[derive(Default)]
struct PoolState {
    backlog: VecDeque<Request>,
    in_flight: usize,
    closed: bool,
}

/// The bounded admission gate: at most `cfg.workers` request futures run
/// concurrently; excess arrivals queue (open-loop load — backlog is
/// visible latency, never thinner load). The async analog of the thread
/// substrate's `WorkQueue` + worker pool.
pub struct TaskPool {
    ctx: Arc<AsyncServerCtx>,
    executor: Arc<Executor>,
    st: Mutex<PoolState>,
    /// Signaled on every task settlement (for [`TaskPool::wait_drained`]).
    drained: Condvar,
    cap: usize,
}

impl TaskPool {
    /// Builds a pool admitting `ctx.cfg.workers` concurrent requests onto
    /// `executor`.
    pub fn new(ctx: Arc<AsyncServerCtx>, executor: Arc<Executor>) -> Arc<Self> {
        let cap = ctx.cfg.workers.max(1);
        Arc::new(Self {
            ctx,
            executor,
            st: Mutex::new(PoolState::default()),
            drained: Condvar::new(),
            cap,
        })
    }

    /// The served context.
    pub fn ctx(&self) -> &Arc<AsyncServerCtx> {
        &self.ctx
    }

    /// Offers one request; returns false (dropping it) once closed.
    pub fn submit(self: &Arc<Self>, req: Request) -> bool {
        let mut st = self.st.lock();
        if st.closed {
            return false;
        }
        if st.in_flight < self.cap {
            st.in_flight += 1;
            drop(st);
            self.launch(req);
        } else {
            st.backlog.push_back(req);
        }
        true
    }

    /// Stops admission of new requests; the backlog keeps draining so
    /// every accepted request is measured.
    pub fn close(&self) {
        self.st.lock().closed = true;
    }

    /// Requests accepted but not yet settled (backlog + in flight).
    pub fn outstanding(&self) -> usize {
        let st = self.st.lock();
        st.backlog.len() + st.in_flight
    }

    /// Blocks until every accepted request has settled (completed or been
    /// dropped), or until `timeout`. Returns whether the pool drained.
    pub fn wait_drained(&self, timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.st.lock();
        while !st.backlog.is_empty() || st.in_flight > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let _ = self.drained.wait_for(&mut st, deadline - now);
        }
        true
    }

    /// Reserve → register → scope → launch: the handle is in the abort
    /// registry before the future can run (no cancellation races past an
    /// unregistered fast task), and the [`TaskScope`] is constructed
    /// *outside* the future and moved into it — so even a future dropped
    /// unpolled (aborted between launch and first poll, or launched into
    /// a shut-down executor) settles its unit and pool slot.
    fn launch(self: &Arc<Self>, req: Request) {
        let handle = self.executor.reserve();
        self.ctx.registry.register(req.key, handle.clone());
        let scope = TaskScope::begin(self.clone(), req);
        let ctx = self.ctx.clone();
        self.executor.launch(&handle, serve(ctx, scope));
    }

    /// One settlement: re-admit from the backlog or report drained.
    fn task_done(self: &Arc<Self>) {
        let next = {
            let mut st = self.st.lock();
            st.in_flight -= 1;
            match st.backlog.pop_front() {
                Some(req) => {
                    st.in_flight += 1;
                    Some(req)
                }
                None => None,
            }
        };
        match next {
            Some(req) => self.launch(req),
            None => self.drained.notify_all(),
        }
    }
}

/// RAII settlement for one request. Constructed at launch and owned by
/// the request future, dropped when the future ends — **by any means**. A
/// completed request marks itself finished first; an aborted one is
/// dropped mid-`await` with `finished` still false, and the destructor
/// settles it as a drop: `record_drop` keeps the detector's completion
/// series whole for a unit that will never finish, `free_cancel` retires
/// the cancel handle, and the pool slot is re-admitted either way.
struct TaskScope {
    pool: Arc<TaskPool>,
    task: TaskId,
    req: Request,
    finished: bool,
}

impl TaskScope {
    fn begin(pool: Arc<TaskPool>, req: Request) -> Self {
        let ctx = pool.ctx();
        let task = ctx.port.create_cancel(Some(req.key));
        ctx.port.unit_started(task);
        Self {
            pool,
            task,
            req,
            finished: false,
        }
    }
}

impl Drop for TaskScope {
    fn drop(&mut self) {
        let ctx = self.pool.ctx();
        let latency = ctx.clock.now_ns().saturating_sub(self.req.enqueued_ns);
        if self.finished {
            ctx.port.unit_finished(self.task);
        } else {
            ctx.port.record_drop();
        }
        ctx.port.free_cancel(self.task);
        ctx.registry.unregister(self.req.key);
        match self.req.class {
            RequestClass::Normal => {
                if self.finished {
                    ctx.metrics.victim.lock().record(latency);
                    ctx.metrics
                        .victims_completed
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            RequestClass::Culprit(_) => {
                ctx.metrics.culprit.lock().record(latency);
                ctx.metrics
                    .culprits_completed
                    .fetch_add(1, Ordering::Relaxed);
                if !self.finished {
                    ctx.metrics
                        .culprits_canceled
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.pool.task_done();
    }
}

/// The request future body.
async fn serve(ctx: Arc<AsyncServerCtx>, mut scope: TaskScope) {
    let task = scope.task;
    let (class, key) = (scope.req.class, scope.req.key);
    match class {
        RequestClass::Normal => serve_normal(&ctx, task, key).await,
        RequestClass::Culprit(kind) => serve_culprit(&ctx, task, kind).await,
    }
    scope.finished = true;
}

async fn serve_normal(ctx: &AsyncServerCtx, task: TaskId, key: u64) {
    let _permit = ctx.tickets.acquire(task).await;
    {
        let _g = ctx.table.lock(task).await;
        ctx.timer.sleep(ctx.cfg.normal_hold).await;
    }
    // The same strided window over the hot range as the thread substrate.
    let n = ctx.cfg.pages_per_request as u64;
    let base = (key * n) % ctx.cfg.hot_pages.max(1);
    let pages: Vec<u64> = (0..n)
        .map(|i| (base + i) % ctx.cfg.hot_pages.max(1))
        .collect();
    // Awaiting pays the miss penalty through the timer.
    let _ = ctx.buffer.access(task, &pages).await;
}

/// Holds a resource until the harness stops or `culprit_hold` elapses,
/// sleeping in `checkpoint`-sized chunks. The chunking exists so shutdown
/// is prompt — it is **not** a cancellation checkpoint; an abort detaches
/// this future at whichever `await` it is parked on.
async fn hold_until_done(ctx: &AsyncServerCtx, started: Instant) {
    while !ctx.stopping() && started.elapsed() < ctx.cfg.culprit_hold {
        ctx.timer.sleep(ctx.cfg.checkpoint).await;
    }
}

async fn serve_culprit(ctx: &AsyncServerCtx, task: TaskId, kind: CulpritKind) {
    ctx.metrics.culprits_started.fetch_add(1, Ordering::Relaxed);
    let _ = ctx.metrics.first_culprit_start_ns.compare_exchange(
        0,
        ctx.clock.now_ns().max(1),
        Ordering::AcqRel,
        Ordering::Acquire,
    );
    // Barely-started progress: the GetNext signal that makes the policy
    // prefer canceling this task over nearly-done victims.
    ctx.port.progress(task, 1, 100);
    let started = Instant::now();
    match kind {
        CulpritKind::LockHog => {
            let _guard = ctx.table.lock(task).await;
            hold_until_done(ctx, started).await;
        }
        CulpritKind::TicketHog => {
            // Take every ticket, one awaited acquire at a time, then camp
            // on the full set: admission starves until this future is
            // dropped (permits release in the guard destructors).
            let mut permits = Vec::with_capacity(ctx.cfg.tickets);
            for _ in 0..ctx.cfg.tickets {
                permits.push(ctx.tickets.acquire(task).await);
            }
            hold_until_done(ctx, started).await;
        }
        CulpritKind::Scan => {
            let _permit = ctx.tickets.acquire(task).await;
            let mut page = ctx.cfg.hot_pages; // cold range: never hits
            let mut scanned = 0u64;
            while !ctx.stopping()
                && scanned < ctx.cfg.scan_pages
                && started.elapsed() < ctx.cfg.culprit_hold
            {
                let _ = ctx.buffer.access(task, &[page]).await;
                page += 1;
                scanned += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos::AtroposConfig;
    use atropos_sim::SystemClock;
    use std::time::Duration;

    fn ctx_with(cfg: LiveConfig) -> (Arc<AsyncServerCtx>, Arc<Executor>) {
        let rt = Arc::new(AtroposRuntime::new(
            AtroposConfig::default(),
            Arc::new(SystemClock::new()),
        ));
        let port: Arc<dyn RuntimePort> = rt.clone();
        let ctx = Arc::new(AsyncServerCtx::with_port(
            rt,
            port,
            Arc::new(AbortRegistry::new()),
            Timer::spawn(),
            cfg,
        ));
        let ex = Arc::new(Executor::new(2));
        (ctx, ex)
    }

    #[test]
    fn pool_bounds_concurrency_and_drains_backlog() {
        let cfg = LiveConfig {
            workers: 2,
            normal_hold: Duration::from_millis(5),
            ..LiveConfig::default()
        };
        let (ctx, ex) = ctx_with(cfg);
        let pool = TaskPool::new(ctx.clone(), ex.clone());
        for key in 0..8 {
            assert!(pool.submit(Request {
                class: RequestClass::Normal,
                key,
                enqueued_ns: ctx.clock.now_ns(),
            }));
        }
        // Cap respected at the executor: at most `workers` live tasks.
        assert!(ex.live_tasks() <= 2, "live: {}", ex.live_tasks());
        pool.close();
        assert!(!pool.submit(Request {
            class: RequestClass::Normal,
            key: 99,
            enqueued_ns: 0,
        }));
        assert!(pool.wait_drained(Duration::from_secs(10)));
        assert_eq!(ctx.metrics.victims_completed.load(Ordering::Relaxed), 8);
        ex.shutdown();
        ctx.timer.shutdown();
    }

    #[test]
    fn aborted_culprit_settles_as_drop_and_readmits() {
        let cfg = LiveConfig {
            workers: 1,
            culprit_hold: Duration::from_secs(5),
            ..LiveConfig::default()
        };
        let (ctx, ex) = ctx_with(cfg);
        let pool = TaskPool::new(ctx.clone(), ex.clone());
        pool.submit(Request {
            class: RequestClass::Culprit(CulpritKind::LockHog),
            key: atropos_live::CULPRIT_KEY_BASE,
            enqueued_ns: ctx.clock.now_ns(),
        });
        // A victim queued behind the culprit (cap 1): only admitted after
        // the culprit settles.
        pool.submit(Request {
            class: RequestClass::Normal,
            key: 1,
            enqueued_ns: ctx.clock.now_ns(),
        });
        // Wait until the culprit is live and registered, then abort it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while ctx.registry.is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            ctx.registry.cancel(atropos_live::CULPRIT_KEY_BASE, 1),
            "culprit registered and aborted"
        );
        pool.close();
        assert!(pool.wait_drained(Duration::from_secs(10)));
        assert_eq!(ctx.metrics.culprits_canceled.load(Ordering::Relaxed), 1);
        assert_eq!(ctx.metrics.victims_completed.load(Ordering::Relaxed), 1);
        assert!(!ctx.table.is_locked(), "guard drop released the lock");
        ex.shutdown();
        ctx.timer.shutdown();
    }
}
