//! A hand-rolled async executor with detach-on-abort task slots.
//!
//! The workspace vendors no tokio shim, so this is a small, dependency-free
//! executor built directly on `std::task`: an [`Executor`] owns per-task
//! slots (the DataTracks `RuntimeManager` shape — one owner, many boxed
//! tasks) plus a FIFO *injector* queue of ready task ids. Worker threads
//! (or a test harness calling [`Executor::poll_one`] inline) pop ids and
//! poll the matching future. Wakers are `Arc`-backed
//! ([`std::task::Wake`]) and hold only a weak executor reference plus the
//! task id, so **wake-after-drop is a structural no-op**: a waker whose
//! task has completed or been aborted finds no slot and returns.
//!
//! ## Cancellation by future drop
//!
//! The point of this crate is the paper's third initiator category:
//! cancellation that *detaches* the task rather than signaling it.
//! [`AbortHandle::abort`] never touches the future on the caller's
//! thread. It marks the slot aborted and, if the task is parked, requeues
//! it; the next worker to pop the id **drops the future instead of
//! polling it**. Dropping the future runs the RAII guards it holds across
//! `await` points — async lock guards, ticket permits, the task scope —
//! which release real holds and emit the matching `Free` events through
//! the port. That deferral is not an optimization, it is a correctness
//! requirement: the Atropos runtime invokes cancel initiators while
//! holding its internal decision lock, so an initiator that dropped the
//! future inline would re-enter the port (`free`, `free_cancel`) on the
//! same thread and deadlock. Initiators only signal; workers unwind.
//!
//! The state machine per slot:
//!
//! ```text
//!            spawn                    wake
//!   Reserved ─────► Queued ◄──────────────────── Idle
//!                     │ poll_one takes future      ▲
//!                     ▼                            │ Pending, no wake
//!                  Running ────────────────────────┘
//!                     │  Ready, or Pending+abort: slot removed,
//!                     ▼  future dropped outside the executor lock
//!                   (gone)
//! ```
//!
//! A wake that lands while `Running` sets `wake_pending` and the worker
//! requeues after the poll; an abort that lands while `Running` wins over
//! any wake — the slot is removed when the poll returns. All future drops
//! happen with the executor lock released, because guard destructors call
//! back into the port and into other tasks' wakers.

use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Where a task currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    /// Id allocated by [`Executor::reserve`]; no future installed yet.
    Reserved,
    /// In the injector, waiting for a worker.
    Queued,
    /// A worker took the future out and is polling it.
    Running,
    /// Parked: waiting for a waker.
    Idle,
}

struct TaskSlot {
    /// `None` while a worker polls the future (it is on that worker's
    /// stack) and before [`Executor::launch`] installs it.
    future: Option<BoxFuture>,
    state: RunState,
    /// Abort requested; the future is dropped at the next worker visit.
    abort: bool,
    /// A wake arrived while `Running`; requeue after the poll returns.
    wake_pending: bool,
}

struct ExecState {
    tasks: HashMap<u64, TaskSlot>,
    injector: VecDeque<u64>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<ExecState>,
    /// Signaled when the injector gains work or shutdown is raised.
    work: Condvar,
    /// Signaled whenever a task is removed (for [`Executor::wait_idle`]).
    idle: Condvar,
    next_id: AtomicU64,
}

impl Shared {
    /// Pops one ready task and either polls it or (if aborted) drops it.
    /// Returns false when the injector held nothing actionable.
    fn poll_one(self: &Arc<Self>) -> bool {
        let mut st = self.state.lock();
        let (id, mut fut) = loop {
            let Some(id) = st.injector.pop_front() else {
                return false;
            };
            match st.tasks.get_mut(&id) {
                // Stale entry: the task completed or was detached after
                // this id was queued. Skip it.
                None => continue,
                Some(slot) if slot.abort => {
                    // Detach: this is the single drop site for aborted
                    // futures. Remove first, then drop outside the lock —
                    // RAII guards re-enter the port and wake other tasks.
                    let slot = st.tasks.remove(&id).expect("slot present");
                    drop(st);
                    drop(slot);
                    self.idle.notify_all();
                    return true;
                }
                Some(slot) => {
                    debug_assert_eq!(slot.state, RunState::Queued);
                    let fut = slot.future.take().expect("queued task owns a future");
                    slot.state = RunState::Running;
                    slot.wake_pending = false;
                    break (id, fut);
                }
            }
        };
        drop(st);

        let waker = Waker::from(Arc::new(TaskWaker {
            shared: Arc::downgrade(self),
            id,
        }));
        let mut cx = Context::from_waker(&waker);
        let poll = fut.as_mut().poll(&mut cx);

        let mut st = self.state.lock();
        match poll {
            Poll::Ready(()) => {
                st.tasks.remove(&id);
                drop(st);
                drop(fut);
                self.idle.notify_all();
            }
            Poll::Pending => {
                let slot = st
                    .tasks
                    .get_mut(&id)
                    .expect("running slot survives until its poll returns");
                if slot.abort {
                    st.tasks.remove(&id);
                    drop(st);
                    drop(fut);
                    self.idle.notify_all();
                } else {
                    slot.future = Some(fut);
                    if slot.wake_pending {
                        slot.state = RunState::Queued;
                        st.injector.push_back(id);
                        drop(st);
                        self.work.notify_one();
                    } else {
                        slot.state = RunState::Idle;
                    }
                }
            }
        }
        true
    }

    fn wake_task(&self, id: u64) {
        let mut st = self.state.lock();
        let Some(slot) = st.tasks.get_mut(&id) else {
            // Wake-after-drop: the task is gone; nothing to do.
            return;
        };
        match slot.state {
            RunState::Idle => {
                slot.state = RunState::Queued;
                st.injector.push_back(id);
                drop(st);
                self.work.notify_one();
            }
            // Already queued (or not yet launched): one injector entry is
            // enough.
            RunState::Queued | RunState::Reserved => {}
            RunState::Running => slot.wake_pending = true,
        }
    }
}

struct TaskWaker {
    shared: Weak<Shared>,
    id: u64,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if let Some(shared) = self.shared.upgrade() {
            shared.wake_task(self.id);
        }
    }
}

/// Detaches a spawned task from the executor: the future-drop cancel
/// initiator (the live analog of tokio's handle of the same name).
///
/// Cloneable; holds only a weak executor reference, so handles never keep
/// an executor (or its tasks) alive.
#[derive(Clone)]
pub struct AbortHandle {
    shared: Weak<Shared>,
    id: u64,
}

impl std::fmt::Debug for AbortHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AbortHandle")
            .field("id", &self.id)
            .field("live", &self.is_live())
            .finish()
    }
}

impl AbortHandle {
    /// Requests the task be detached and its future dropped. Returns true
    /// if the task was still live (exactly one abort per task can return
    /// true). The drop itself happens on a worker thread — never on the
    /// caller's — because the caller may be a cancel initiator invoked
    /// under runtime-internal locks (see the module docs).
    pub fn abort(&self) -> bool {
        let Some(shared) = self.shared.upgrade() else {
            return false;
        };
        let mut st = shared.state.lock();
        let Some(slot) = st.tasks.get_mut(&self.id) else {
            return false;
        };
        if slot.abort {
            return false; // idempotent: only the first abort is a delivery
        }
        slot.abort = true;
        match slot.state {
            // Parked (or never launched): requeue so a worker visits the
            // slot and performs the drop.
            RunState::Idle | RunState::Reserved => {
                slot.state = RunState::Queued;
                st.injector.push_back(self.id);
                drop(st);
                shared.work.notify_one();
            }
            // A worker will see the flag when it pops the id / finishes
            // the in-flight poll.
            RunState::Queued | RunState::Running => {}
        }
        true
    }

    /// True while the task still has a slot (not completed, not aborted).
    pub fn is_live(&self) -> bool {
        match self.shared.upgrade() {
            Some(shared) => shared.state.lock().tasks.contains_key(&self.id),
            None => false,
        }
    }
}

/// The executor: per-task slots, a FIFO injector, and zero or more worker
/// threads. With zero workers ([`Executor::inline`]) nothing runs until
/// the caller drives [`Executor::poll_one`] — the deterministic mode the
/// unit and property tests use.
pub struct Executor {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Executor {
    /// Spawns `workers` polling threads.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(ExecState {
                tasks: HashMap::new(),
                injector: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            next_id: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("async-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn async worker")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// An executor with no worker threads; drive it with
    /// [`Executor::poll_one`].
    pub fn inline() -> Self {
        Self::new(0)
    }

    /// Allocates a task id and returns its [`AbortHandle`] *before* the
    /// future exists. Registering the handle (e.g. in an abort registry)
    /// before [`Executor::launch`] closes the race where a fast task
    /// completes before its handle is registered.
    pub fn reserve(&self) -> AbortHandle {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared.state.lock().tasks.insert(
            id,
            TaskSlot {
                future: None,
                state: RunState::Reserved,
                abort: false,
                wake_pending: false,
            },
        );
        AbortHandle {
            shared: Arc::downgrade(&self.shared),
            id,
        }
    }

    /// Installs the future for a reserved slot and queues it. If the slot
    /// was aborted (or the executor shut down) between reserve and
    /// launch, the never-polled future is dropped immediately — it has
    /// acquired nothing, so the drop is inert.
    pub fn launch(&self, handle: &AbortHandle, fut: impl Future<Output = ()> + Send + 'static) {
        let mut st = self.shared.state.lock();
        if st.shutdown {
            st.tasks.remove(&handle.id);
            return; // fut dropped here, unpolled
        }
        match st.tasks.get_mut(&handle.id) {
            Some(slot) if !slot.abort => {
                debug_assert_eq!(slot.state, RunState::Reserved);
                slot.future = Some(Box::pin(fut));
                slot.state = RunState::Queued;
                st.injector.push_back(handle.id);
                drop(st);
                self.shared.work.notify_one();
            }
            // Aborted while reserved (slot present, abort flagged and
            // queued): remove the slot; the injector entry goes stale.
            Some(_) => {
                st.tasks.remove(&handle.id);
                drop(st);
                self.shared.idle.notify_all();
            }
            None => {}
        }
    }

    /// Reserve + launch in one call.
    pub fn spawn(&self, fut: impl Future<Output = ()> + Send + 'static) -> AbortHandle {
        let handle = self.reserve();
        self.launch(&handle, fut);
        handle
    }

    /// Pops and services one injector entry on the calling thread (the
    /// same code path the workers run). Returns false if nothing was
    /// ready.
    pub fn poll_one(&self) -> bool {
        self.shared.poll_one()
    }

    /// Tasks currently owned (reserved, queued, running or parked).
    pub fn live_tasks(&self) -> usize {
        self.shared.state.lock().tasks.len()
    }

    /// Injector entries currently queued (includes stale ids).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().injector.len()
    }

    /// Blocks until no task is live, or until `timeout`. Returns whether
    /// the executor drained.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        while !st.tasks.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let _ = self.shared.idle.wait_for(&mut st, deadline - now);
        }
        true
    }

    /// Stops the workers, joins them, and drops any remaining futures
    /// (outside the executor lock: their guards may call back in).
    /// Idempotent; also invoked on drop.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // Abandoned tasks: take them out under the lock, drop them after.
        let remains: Vec<TaskSlot> = {
            let mut st = self.shared.state.lock();
            st.injector.clear();
            st.tasks.drain().map(|(_, slot)| slot).collect()
        };
        drop(remains);
        self.shared.idle.notify_all();
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        {
            let mut st = shared.state.lock();
            while st.injector.is_empty() && !st.shutdown {
                shared.work.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
        }
        // Between the unlock and here another worker may have taken the
        // entry; poll_one simply finds nothing and we wait again.
        shared.poll_one();
    }
}

/// A future that returns `Pending` once (waking itself immediately), then
/// `Ready` — the cooperative yield point, and the injector-fairness test
/// workload.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug, Default)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A future that parks until `ready` turns true, tracking drops.
    struct Probe {
        ready: Arc<std::sync::atomic::AtomicBool>,
        polls: Arc<AtomicUsize>,
        drops: Arc<AtomicUsize>,
        completed: Arc<std::sync::atomic::AtomicBool>,
        waker_out: Arc<Mutex<Option<Waker>>>,
    }

    impl Future for Probe {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            self.polls.fetch_add(1, Ordering::SeqCst);
            *self.waker_out.lock() = Some(cx.waker().clone());
            if self.ready.load(Ordering::SeqCst) {
                self.completed.store(true, Ordering::SeqCst);
                Poll::Ready(())
            } else {
                Poll::Pending
            }
        }
    }

    impl Drop for Probe {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    struct ProbeHandles {
        ready: Arc<std::sync::atomic::AtomicBool>,
        polls: Arc<AtomicUsize>,
        drops: Arc<AtomicUsize>,
        completed: Arc<std::sync::atomic::AtomicBool>,
        waker: Arc<Mutex<Option<Waker>>>,
    }

    fn probe() -> (Probe, ProbeHandles) {
        let h = ProbeHandles {
            ready: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            polls: Arc::new(AtomicUsize::new(0)),
            drops: Arc::new(AtomicUsize::new(0)),
            completed: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            waker: Arc::new(Mutex::new(None)),
        };
        let p = Probe {
            ready: h.ready.clone(),
            polls: h.polls.clone(),
            drops: h.drops.clone(),
            completed: h.completed.clone(),
            waker_out: h.waker.clone(),
        };
        (p, h)
    }

    #[test]
    fn completes_when_woken_ready() {
        let ex = Executor::inline();
        let (p, h) = probe();
        ex.spawn(p);
        assert!(ex.poll_one(), "first poll parks the task");
        assert_eq!(ex.live_tasks(), 1);
        h.ready.store(true, Ordering::SeqCst);
        h.waker.lock().as_ref().unwrap().wake_by_ref();
        assert!(ex.poll_one());
        assert!(h.completed.load(Ordering::SeqCst));
        assert_eq!(h.drops.load(Ordering::SeqCst), 1);
        assert_eq!(ex.live_tasks(), 0);
    }

    #[test]
    fn abort_while_parked_drops_on_next_poll() {
        let ex = Executor::inline();
        let (p, h) = probe();
        let handle = ex.spawn(p);
        assert!(ex.poll_one());
        assert!(handle.abort(), "first abort detaches");
        assert!(!handle.abort(), "second abort is a no-op");
        // Dropped by the (inline) worker, not by abort itself.
        assert_eq!(h.drops.load(Ordering::SeqCst), 0);
        assert!(ex.poll_one());
        assert_eq!(h.drops.load(Ordering::SeqCst), 1);
        assert!(!h.completed.load(Ordering::SeqCst));
        assert!(!handle.is_live());
    }

    #[test]
    fn abort_between_reserve_and_launch_discards_unpolled() {
        let ex = Executor::inline();
        let (p, h) = probe();
        let handle = ex.reserve();
        assert!(handle.abort());
        ex.launch(&handle, p);
        assert_eq!(h.drops.load(Ordering::SeqCst), 1, "dropped unpolled");
        assert_eq!(h.polls.load(Ordering::SeqCst), 0);
        assert_eq!(ex.live_tasks(), 0);
    }

    #[test]
    fn threaded_smoke_run() {
        let ex = Executor::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let done = done.clone();
            ex.spawn(async move {
                yield_now().await;
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert!(ex.wait_idle(Duration::from_secs(5)));
        assert_eq!(done.load(Ordering::SeqCst), 16);
        ex.shutdown();
    }
}
