//! # atropos-async — an async serving substrate with future-drop cancellation
//!
//! The workspace's third substrate behind `RuntimePort`, and the one that
//! completes the paper's portability argument. The simulator cancels
//! requests in virtual time; the thread substrate raises a cooperative
//! `CancelToken` that culprits must poll; this crate cancels by
//! **dropping the future**. The paper's initiator survey spans exactly
//! these categories — cooperative flags, KILL-style operators, abort
//! handles — and the framework is supposed to be indifferent to which one
//! the application wires in. Here the entire serving stack is rebuilt as
//! queued continuations (DAGOR-style) instead of parked threads, and the
//! runtime never notices: same port, same protocol, same decisions.
//!
//! The pieces, bottom-up:
//!
//! - [`executor`]: a hand-rolled, dependency-free executor on
//!   `std::task` — per-task slots, a FIFO injector, worker threads, and
//!   [`AbortHandle`]s whose abort *detaches* the task (the future is
//!   dropped by a worker, never by the initiator: the runtime invokes
//!   initiators under its own locks),
//! - [`timer`]: a deadline-heap timer thread providing `Sleep` futures,
//! - [`resources`]: [`AsyncTracedLock`], [`AsyncTicketSemaphore`],
//!   [`AsyncLruBuffer`] — waker-queue primitives speaking the Figure 6b
//!   protocol, whose RAII guards release holds when a dropped future
//!   unwinds (including the abort-during-wake baton handoff),
//! - [`abort`]: [`AbortRegistry`] — key → handle map installed as the
//!   runtime's cancel initiator,
//! - [`server`]: a bounded task pool serving the same classed requests
//!   and culprit families as the thread substrate,
//! - [`harness`]: [`run`] / [`run_with`], surface-compatible with
//!   `atropos_live::run` so differentials pin one [`LiveConfig`] across
//!   substrates.
//!
//! [`LiveConfig`]: atropos_live::LiveConfig

#![warn(missing_docs)]

pub mod abort;
pub mod executor;
pub mod harness;
pub mod resources;
pub mod server;
pub mod timer;

pub use abort::AbortRegistry;
pub use executor::{yield_now, AbortHandle, Executor, YieldNow};
pub use harness::{generate, run, run_descriptor, run_instrumented, run_with};
pub use resources::{
    AsyncLockGuard, AsyncLruBuffer, AsyncTicketPermit, AsyncTicketSemaphore, AsyncTracedLock,
    BufferAccess, LockAcquire, TicketAcquire,
};
pub use server::{AsyncServerCtx, TaskPool};
pub use timer::{Sleep, Timer};
