//! End-to-end wall-clock test: Atropos detects a live lock-hog convoy,
//! cancels the culprit through the token registry, and victim tail
//! latency recovers relative to an uncontrolled run of the identical
//! workload.
//!
//! This is the live analog of the simulator's overload scenarios and the
//! paper's MySQL blocked-writes experiments. Margins are deliberately
//! generous so the test stays deterministic on a loaded 1-core CI
//! machine: the structural contrast (a 1.2 s convoy vs a convoy cut
//! short within a few 50 ms detector windows) is far larger than
//! scheduling noise.

use std::time::Duration;

use atropos_live::{live_atropos_config, run, ControlMode, CulpritKind, LiveConfig};

fn overload_config() -> LiveConfig {
    LiveConfig {
        workers: 4,
        run_for: Duration::from_millis(1800),
        interarrival: Duration::from_millis(2),
        culprit_after: Duration::from_millis(400),
        culprit_every: None,
        culprit_kind: CulpritKind::LockHog,
        culprit_hold: Duration::from_millis(1200),
        checkpoint: Duration::from_millis(1),
        tick_period: Duration::from_millis(50),
        ..LiveConfig::default()
    }
}

#[test]
fn atropos_cancels_live_culprit_and_victim_p99_recovers() {
    // Baseline first: the convoy runs to completion.
    let baseline = run(overload_config(), ControlMode::NoControl);
    assert_eq!(baseline.culprits_started, 1, "exactly one culprit injected");
    assert_eq!(
        baseline.culprits_canceled, 0,
        "nothing cancels without a supervisor"
    );
    assert_eq!(baseline.cancellations_delivered, 0);
    assert!(baseline.time_to_cancel.is_none());
    assert_eq!(baseline.ticks, 0);
    // The uncontrolled convoy must actually hurt, or the comparison below
    // is vacuous: a 1.2 s lock hold puts victim p99 near the hold time.
    assert!(
        baseline.victim.p99_ns >= 400_000_000,
        "baseline convoy too mild: victim p99 {} ns",
        baseline.victim.p99_ns
    );

    // Same workload under Atropos.
    let controlled = run(
        overload_config(),
        ControlMode::Atropos(live_atropos_config()),
    );
    assert_eq!(controlled.culprits_started, 1);
    assert!(
        controlled.ticks >= 10,
        "supervisor ticked {}",
        controlled.ticks
    );
    assert!(
        controlled.culprits_canceled >= 1,
        "culprit not canceled: {:?}",
        controlled.runtime.cancel
    );
    assert!(controlled.cancellations_delivered >= 1);
    assert!(controlled.runtime.cancel.issued >= 1);

    // The decision trace explains the run: at least one folded episode,
    // and some episode actually issued the cancel we observed land.
    assert!(
        !controlled.episodes.is_empty(),
        "controlled run produced no decision episodes"
    );
    assert!(
        controlled
            .episodes
            .iter()
            .any(|e| e.outcome == "issued" && e.canceled_key.is_some()),
        "no episode explains the issued cancellation:\n{}",
        atropos_obs::render_episodes(&controlled.episodes)
    );
    // The observer's counters agree with the runtime's own ledger.
    assert_eq!(
        controlled.metrics.cancels_issued_policy + controlled.metrics.cancels_issued_operator,
        controlled.runtime.cancel.issued,
        "observer missed issued cancels"
    );
    assert!(controlled.metrics.consistency_errors().is_empty());

    // The baseline never decided anything.
    assert!(baseline.episodes.iter().all(|e| e.outcome != "issued"));

    // Detection + delivery within a handful of detector windows. The
    // budget (1 s) is ~20 windows — far beyond what a healthy run needs
    // (2-4), but safely past any CI scheduling hiccup.
    let ttc = controlled
        .time_to_cancel
        .expect("a delivered cancellation records time-to-cancel");
    assert!(ttc <= Duration::from_secs(1), "slow cancel: {ttc:?}");

    // The headline: tail latency recovers. Structurally ~5x here; assert
    // a conservative 2x so the test never flakes on margin.
    assert!(
        baseline.victim.p99_ns >= 2 * controlled.victim.p99_ns,
        "victim p99 did not recover: baseline {} ns vs atropos {} ns",
        baseline.victim.p99_ns,
        controlled.victim.p99_ns
    );

    // Both runs drained their full backlog: every offered request was
    // measured.
    assert_eq!(
        baseline.offered,
        baseline.victim.count + baseline.culprits_started
    );
    assert_eq!(
        controlled.offered,
        controlled.victim.count + controlled.culprits_started
    );
}
