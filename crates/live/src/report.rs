//! Shared report assembly for the wall-clock substrates.
//!
//! The thread harness ([`crate::harness`]) and the async harness
//! (`atropos-async`) end a run the same way: compute time-to-cancel from
//! the first registry delivery, summarize the victim/culprit latency
//! histograms, reconcile registry deliveries into the observer so
//! `cancels_failed` only counts cancellations that never reached a live
//! token/handle, drain the flight-recorder episodes, and fold it all into
//! a [`LiveReport`]. That block used to be duplicated in both harnesses
//! and had already drifted once (a private `summarize` clone); it lives
//! here now so the two substrates provably report identically.

use std::time::Duration;

use atropos::AtroposRuntime;
use atropos_metrics::LatencyHistogram;

use crate::harness::{LatencySummary, LiveReport};

/// The substrate-specific observations [`assemble_report`] folds into a
/// [`LiveReport`]. Everything here is a plain value so the thread
/// substrate's `CancelRegistry`/`ServerMetrics` and the async
/// substrate's `AbortRegistry` can both fill it.
#[derive(Debug, Clone, Copy)]
pub struct ReportInputs {
    /// Clock timestamp of the registry's first delivery, if any.
    pub first_delivery_ns: Option<u64>,
    /// Cancellations the registry delivered to a live token/handle.
    pub delivered: u64,
    /// When the first culprit began executing (clock ns; 0 = never).
    pub first_culprit_start_ns: u64,
    /// Requests the generator offered.
    pub offered: u64,
    /// Culprit requests that began executing.
    pub culprits_started: u64,
    /// Culprit requests that observed their cancellation and unwound.
    pub culprits_canceled: u64,
    /// Supervisor ticks executed.
    pub ticks: u64,
}

/// Folds a quiesced run into its [`LiveReport`]. Call only after workers
/// and the supervisor have stopped: the runtime snapshot and the observer
/// ring are read as final state.
pub fn assemble_report(
    rt: &AtroposRuntime,
    obs: &atropos_obs::Observer,
    victim: &LatencyHistogram,
    culprit: &LatencyHistogram,
    inputs: ReportInputs,
) -> LiveReport {
    let time_to_cancel = inputs.first_delivery_ns.and_then(|cancel_ns| {
        let start_ns = inputs.first_culprit_start_ns;
        (start_ns != 0 && cancel_ns >= start_ns).then(|| Duration::from_nanos(cancel_ns - start_ns))
    });
    // Reconcile registry deliveries into the observer so `cancels_failed`
    // reflects only cancellations that never reached a live target.
    for _ in 0..inputs.delivered {
        obs.registry().observe_cancel_delivered();
    }
    let snapshot = rt.debug_snapshot();
    let names = atropos_obs::ResourceNames::from_snapshot(&snapshot);
    let episodes = obs.drain_episodes(&names);
    let metrics = obs.metrics();
    LiveReport {
        victim: LatencySummary::from_histogram(victim),
        culprit: LatencySummary::from_histogram(culprit),
        offered: inputs.offered,
        culprits_started: inputs.culprits_started,
        culprits_canceled: inputs.culprits_canceled,
        time_to_cancel,
        cancellations_delivered: inputs.delivered,
        canceled_keys: snapshot
            .cancel
            .canceled_keys
            .iter()
            .map(|(k, _)| k.0)
            .collect(),
        ticks: inputs.ticks,
        runtime: rt.stats(),
        episodes,
        metrics,
    }
}
