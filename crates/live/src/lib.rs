//! # atropos-live — a wall-clock serving harness for Atropos
//!
//! Everything else in this workspace exercises Atropos under the
//! deterministic simulator (`atropos-appsim` on a `VirtualClock`). This
//! crate closes the loop the paper closes with its MySQL/Postgres
//! integrations: it runs the *same* runtime against **real threads, real
//! locks, and real cancellation** on the [`SystemClock`].
//!
//! The pieces, bottom-up:
//!
//! - [`token`]: [`CancelToken`]/[`CancelRegistry`] — cooperative
//!   cancellation signals plus the key→token map that serves as the
//!   runtime's cancel initiator (the `sql_kill` analog),
//! - [`resources`]: [`TracedLock`], [`TicketSemaphore`], [`LruBuffer`] —
//!   real primitives that speak the Figure 6b tracing protocol,
//! - [`server`]: a bounded worker pool serving classed requests, with a
//!   rare long-running "culprit" class that monopolizes one resource and
//!   checkpoints its own cancel token,
//! - [`workload`]: an open-loop load generator (fixed arrival schedule;
//!   backlog shows up as latency, not as thinner load),
//! - [`harness`]: [`run`] wires it all together under a supervisor
//!   [`Ticker`](atropos::Ticker) and reports wall-clock victim/culprit
//!   latency distributions, cancellation delivery, and time-to-cancel.
//!
//! The headline comparison — [`ControlMode::Atropos`] vs
//! [`ControlMode::NoControl`] on an identical workload — is what
//! `examples/live_overload.rs` prints and what the end-to-end test
//! asserts: with Atropos the culprit is canceled within a couple of
//! detector windows and victim p99 stays near baseline; without it the
//! convoy runs to completion.
//!
//! [`SystemClock`]: atropos_sim::SystemClock

#![warn(missing_docs)]

pub mod harness;
pub mod report;
pub mod resources;
pub mod server;
pub mod token;
pub mod workload;

pub use harness::{
    live_atropos_config, run, run_descriptor, run_with, ControlMode, LatencySummary, LiveConfig,
    LiveReport,
};
pub use report::{assemble_report, ReportInputs};
pub use resources::{AccessStats, LruBuffer, TicketPermit, TicketSemaphore, TracedLock};
pub use server::{CulpritKind, Request, RequestClass, ServerCtx, ServerMetrics, WorkQueue};
pub use token::{CancelRegistry, CancelToken};
pub use workload::CULPRIT_KEY_BASE;
