//! The mini-server: a bounded worker pool serving classed requests over
//! the traced resources.
//!
//! Workers pull [`Request`]s from a shared [`WorkQueue`] and execute them
//! with real blocking on the shared [`TracedLock`], [`TicketSemaphore`]
//! and [`LruBuffer`]. The `Culprit` classes are the live analogs of the
//! paper's culprit studies: a lock hog (MySQL's blocked-writes case
//! family), a buffer-sweeping scan (the Figure 2 dump), and a
//! ticket-queue hog (the connection-pool-exhaustion family) — all
//! cancellable only at their own checkpoints via [`CancelToken`].
//!
//! All runtime interaction flows through the [`ServerCtx::port`]
//! (`Arc<dyn RuntimePort>`), so chaos middleware wrapped over the runtime
//! sees the complete protocol.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use atropos::{AtroposRuntime, TaskId};
use atropos_metrics::LatencyHistogram;
use atropos_sim::Clock;
use atropos_substrate::RuntimePort;
use parking_lot::{Condvar, Mutex};

use crate::harness::LiveConfig;
use crate::resources::{LruBuffer, TicketSemaphore, TracedLock};
use crate::token::CancelRegistry;

/// Which long-running culprit behaviour a culprit request exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CulpritKind {
    /// Takes the table lock and sits on it (checkpointing for
    /// cancellation): the backup/DDL convoy family.
    LockHog,
    /// Sweeps the LRU buffer with cold pages, evicting the hot set: the
    /// full-table-dump family.
    Scan,
    /// Drains the ticket queue dry — acquires every concurrency ticket and
    /// sits on them, starving admission: the connection-pool-exhaustion
    /// (c2/c9) family.
    TicketHog,
}

/// Request classes the load generator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// A short victim-class request: ticket → brief lock hold → a few hot
    /// pages.
    Normal,
    /// A rare long-running request that monopolizes a resource.
    Culprit(CulpritKind),
}

/// One unit of offered load.
#[derive(Debug, Clone)]
pub struct Request {
    /// Class determining the handler.
    pub class: RequestClass,
    /// Application task key (unique per request).
    pub key: u64,
    /// Runtime-clock stamp at enqueue, for end-to-end latency.
    pub enqueued_ns: u64,
}

/// An unbounded MPMC queue feeding the worker pool (open-loop load:
/// arrivals never block, backlog is visible latency).
#[derive(Default)]
pub struct WorkQueue {
    state: Mutex<QueueState>,
    nonempty: Condvar,
}

#[derive(Default)]
struct QueueState {
    q: VecDeque<Request>,
    closed: bool,
}

impl WorkQueue {
    /// Enqueues a request; returns false (dropping it) once closed.
    pub fn push(&self, req: Request) -> bool {
        let mut st = self.state.lock();
        if st.closed {
            return false;
        }
        st.q.push_back(req);
        drop(st);
        self.nonempty.notify_one();
        true
    }

    /// Blocks for the next request. Returns `None` once the queue is
    /// closed *and* drained — workers run the backlog down before exiting
    /// so every accepted request is measured.
    pub fn pop(&self) -> Option<Request> {
        let mut st = self.state.lock();
        loop {
            if let Some(req) = st.q.pop_front() {
                return Some(req);
            }
            if st.closed {
                return None;
            }
            self.nonempty.wait(&mut st);
        }
    }

    /// Closes the queue and wakes every blocked worker.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.nonempty.notify_all();
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().q.len()
    }

    /// True if no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-class completion metrics, shared across workers.
#[derive(Default)]
pub struct ServerMetrics {
    /// End-to-end (enqueue → completion) latency of Normal requests.
    pub victim: Mutex<LatencyHistogram>,
    /// End-to-end latency of culprit requests.
    pub culprit: Mutex<LatencyHistogram>,
    /// Requests accepted into the queue by the generator.
    pub offered: AtomicU64,
    /// Normal requests completed.
    pub victims_completed: AtomicU64,
    /// Culprit requests whose handler started executing.
    pub culprits_started: AtomicU64,
    /// Culprit requests completed (canceled or not).
    pub culprits_completed: AtomicU64,
    /// Culprit requests that observed their cancel token and unwound.
    pub culprits_canceled: AtomicU64,
    /// Runtime-clock stamp when the first culprit began executing
    /// (0 = none yet).
    pub first_culprit_start_ns: AtomicU64,
}

/// Everything a worker thread needs, bundled for `Arc` sharing.
pub struct ServerCtx {
    /// The concrete runtime, kept for introspection (stats, snapshots).
    pub rt: Arc<AtroposRuntime>,
    /// The port every component emits through. Usually the runtime
    /// itself; under fault injection or probing it is a middleware stack
    /// ending at `rt`.
    pub port: Arc<dyn RuntimePort>,
    /// The runtime's clock (shared so latency stamps and cancellation
    /// stamps are comparable).
    pub clock: Arc<dyn Clock>,
    /// Token registry; installed as the cancel initiator in Atropos mode.
    pub registry: Arc<CancelRegistry>,
    /// The shared table lock (LOCK resource).
    pub table: TracedLock<()>,
    /// Concurrency tickets (QUEUE resource).
    pub tickets: TicketSemaphore,
    /// The LRU page buffer (MEMORY resource).
    pub buffer: LruBuffer,
    /// The offered-load queue.
    pub queue: WorkQueue,
    /// Global shutdown flag: culprits release at their next checkpoint.
    pub stop: AtomicBool,
    /// Service-time and workload parameters.
    pub cfg: LiveConfig,
    /// Completion metrics.
    pub metrics: ServerMetrics,
}

impl ServerCtx {
    /// Builds the server state over `rt`, registering the three traced
    /// resources. Emission goes straight to the runtime.
    pub fn new(rt: Arc<AtroposRuntime>, registry: Arc<CancelRegistry>, cfg: LiveConfig) -> Self {
        let port = rt.clone();
        Self::with_port(rt, port, registry, cfg)
    }

    /// Like [`ServerCtx::new`], but emits through `port` — a middleware
    /// stack whose innermost layer is `rt`. The concrete handle is kept
    /// only for end-of-run introspection.
    pub fn with_port(
        rt: Arc<AtroposRuntime>,
        port: Arc<dyn RuntimePort>,
        registry: Arc<CancelRegistry>,
        cfg: LiveConfig,
    ) -> Self {
        let clock = rt.clock();
        let table = TracedLock::new(port.clone(), "table_lock", ());
        let tickets = TicketSemaphore::new(port.clone(), "tickets", cfg.tickets);
        let buffer = LruBuffer::new(port.clone(), "buffer_pool", cfg.lru_capacity);
        Self {
            rt,
            port,
            clock,
            registry,
            table,
            tickets,
            buffer,
            queue: WorkQueue::default(),
            stop: AtomicBool::new(false),
            cfg,
            metrics: ServerMetrics::default(),
        }
    }

    /// True once shutdown has been signaled.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// The worker-thread body: serve until the queue closes and drains.
pub fn worker_loop(ctx: &ServerCtx) {
    while let Some(req) = ctx.queue.pop() {
        handle(ctx, req);
    }
}

fn handle(ctx: &ServerCtx, req: Request) {
    let task = ctx.port.create_cancel(Some(req.key));
    ctx.port.unit_started(task);
    match req.class {
        RequestClass::Normal => handle_normal(ctx, task, req.key),
        RequestClass::Culprit(kind) => handle_culprit(ctx, task, req.key, kind),
    }
    ctx.port.unit_finished(task);
    ctx.port.free_cancel(task);
    let latency = ctx.clock.now_ns().saturating_sub(req.enqueued_ns);
    match req.class {
        RequestClass::Normal => {
            ctx.metrics.victim.lock().record(latency);
            ctx.metrics
                .victims_completed
                .fetch_add(1, Ordering::Relaxed);
        }
        RequestClass::Culprit(_) => {
            ctx.metrics.culprit.lock().record(latency);
            ctx.metrics
                .culprits_completed
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn handle_normal(ctx: &ServerCtx, task: TaskId, key: u64) {
    let _permit = ctx.tickets.acquire(task);
    {
        let _g = ctx.table.lock(task);
        std::thread::sleep(ctx.cfg.normal_hold);
    }
    // A small strided window over the hot page range.
    let n = ctx.cfg.pages_per_request as u64;
    let base = (key * n) % ctx.cfg.hot_pages.max(1);
    let pages: Vec<u64> = (0..n)
        .map(|i| (base + i) % ctx.cfg.hot_pages.max(1))
        .collect();
    let stats = ctx.buffer.access(task, &pages);
    if stats.misses > 0 {
        // Model the load cost of a miss (the disk read the simulator
        // charges as virtual time).
        std::thread::sleep(ctx.cfg.miss_penalty * stats.misses as u32);
    }
}

fn handle_culprit(ctx: &ServerCtx, task: TaskId, key: u64, kind: CulpritKind) {
    ctx.metrics.culprits_started.fetch_add(1, Ordering::Relaxed);
    let _ = ctx.metrics.first_culprit_start_ns.compare_exchange(
        0,
        ctx.clock.now_ns().max(1),
        Ordering::AcqRel,
        Ordering::Acquire,
    );
    let token = ctx.registry.register(key);
    // Barely-started progress: the GetNext signal that makes the policy
    // prefer canceling this task over nearly-done victims.
    ctx.port.progress(task, 1, 100);
    let started = Instant::now();
    match kind {
        CulpritKind::LockHog => {
            let guard = ctx.table.lock(task);
            while !token.is_canceled()
                && !ctx.stopping()
                && started.elapsed() < ctx.cfg.culprit_hold
            {
                std::thread::sleep(ctx.cfg.checkpoint);
            }
            drop(guard);
        }
        CulpritKind::TicketHog => {
            // Take every ticket, one blocking acquire at a time, then camp
            // on the full set. Normal requests need a ticket first, so
            // admission starves until this task is canceled or done.
            let mut permits = Vec::with_capacity(ctx.cfg.tickets);
            for _ in 0..ctx.cfg.tickets {
                permits.push(ctx.tickets.acquire(task));
            }
            while !token.is_canceled()
                && !ctx.stopping()
                && started.elapsed() < ctx.cfg.culprit_hold
            {
                std::thread::sleep(ctx.cfg.checkpoint);
            }
            drop(permits);
        }
        CulpritKind::Scan => {
            let _permit = ctx.tickets.acquire(task);
            let mut page = ctx.cfg.hot_pages; // cold range: never hits
            let mut scanned = 0u64;
            while !token.is_canceled()
                && !ctx.stopping()
                && scanned < ctx.cfg.scan_pages
                && started.elapsed() < ctx.cfg.culprit_hold
            {
                let stats = ctx.buffer.access(task, &[page]);
                if stats.misses > 0 {
                    std::thread::sleep(ctx.cfg.miss_penalty);
                }
                page += 1;
                scanned += 1;
            }
        }
    }
    if token.is_canceled() {
        ctx.metrics
            .culprits_canceled
            .fetch_add(1, Ordering::Relaxed);
    }
    ctx.registry.unregister(key);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn queue_fifo_and_close_semantics() {
        let q = WorkQueue::default();
        let req = |key| Request {
            class: RequestClass::Normal,
            key,
            enqueued_ns: 0,
        };
        assert!(q.push(req(1)));
        assert!(q.push(req(2)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().key, 1);
        q.close();
        assert!(!q.push(req(3)), "closed queue rejects new work");
        // Backlog still drains after close.
        assert_eq!(q.pop().unwrap().key, 2);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(WorkQueue::default());
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap().is_none());
    }
}
