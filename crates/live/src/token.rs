//! Cooperative cancellation tokens: the live analog of the simulator's
//! cancel initiator.
//!
//! In `appsim` the glue controller cancels a request by scheduling a
//! virtual-time event that unwinds it at its next checkpoint. In a real
//! process nothing can unwind a thread safely from the outside (the whole
//! point of §2.4/§3.6): the application registers an initiator that only
//! *signals*, and the task observes the signal at its own safe
//! checkpoints. [`CancelToken`] is that signal, and [`CancelRegistry`]
//! maps Atropos task keys to tokens so the registry itself can serve as
//! the initiator passed to `AtroposRuntime::set_cancel_action` — the
//! MySQL `sql_kill` pattern with a `KILL`-flag per session.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use atropos::{AtroposRuntime, TaskKey};
use atropos_sim::Clock;
use atropos_substrate::{CancelInitiator, RuntimePort};
use parking_lot::Mutex;

/// A shared cancellation flag, checked by the owning task at checkpoints.
///
/// Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates an un-canceled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the cancellation signal. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called. This is the
    /// checkpoint test: long-running operations call it between units of
    /// work and unwind cleanly when it turns true.
    pub fn is_canceled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Maps application task keys to their [`CancelToken`]s.
///
/// One registry per served application. Request handlers register a token
/// under their task key for the duration of the request; the registry's
/// [`CancelRegistry::install`] hook makes Atropos cancellations reach the
/// right token.
#[derive(Debug, Default)]
pub struct CancelRegistry {
    tokens: Mutex<HashMap<u64, CancelToken>>,
    /// Cancellations delivered to a registered token.
    delivered: AtomicU64,
    /// Cancellations whose key had no registered token (task already
    /// finished, or never registered): counted, not an error — the same
    /// race exists in MySQL between `KILL` and the session ending.
    misses: AtomicU64,
    /// Wall-clock stamp (ns, runtime clock) of the first delivered
    /// cancellation; 0 = none yet.
    first_delivery_ns: AtomicU64,
}

impl CancelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates (or returns the existing) token for `key`.
    pub fn register(&self, key: u64) -> CancelToken {
        self.tokens.lock().entry(key).or_default().clone()
    }

    /// Forgets the token for `key` (call when the task's scope ends).
    pub fn unregister(&self, key: u64) {
        self.tokens.lock().remove(&key);
    }

    /// Signals the token registered under `key`, if any. Returns whether
    /// a token was found.
    pub fn cancel(&self, key: u64, now_ns: u64) -> bool {
        let token = self.tokens.lock().get(&key).cloned();
        match token {
            Some(t) => {
                t.cancel();
                self.delivered.fetch_add(1, Ordering::Relaxed);
                let _ = self.first_delivery_ns.compare_exchange(
                    0,
                    now_ns.max(1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                true
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Installs this registry as the runtime's cancellation initiator
    /// (`set_cancel_action`): an issued cancellation for key `k` raises
    /// the token registered under `k`.
    pub fn install(self: &Arc<Self>, rt: &AtroposRuntime) {
        let registry = self.clone();
        let clock = rt.clock();
        rt.set_cancel_action(move |key: TaskKey| {
            registry.cancel(key.0, clock.now_ns());
        });
    }

    /// Installs this registry as the cancel initiator *through a port*,
    /// so middleware stacked over the runtime can interpose on deliveries
    /// (the chaos `FailCancel`/`DelayCancel` faults). Deliveries are
    /// stamped with the port's clock.
    pub fn install_port(self: &Arc<Self>, port: &Arc<dyn RuntimePort>) {
        port.install_initiator(Arc::new(RegistryInitiator {
            registry: self.clone(),
            clock: port.clock(),
        }));
    }

    /// Cancellations that reached a registered token.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Cancellations that found no token.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Runtime-clock stamp of the first delivered cancellation, if any.
    pub fn first_delivery_ns(&self) -> Option<u64> {
        match self.first_delivery_ns.load(Ordering::Acquire) {
            0 => None,
            ns => Some(ns),
        }
    }

    /// Number of currently registered tokens.
    pub fn len(&self) -> usize {
        self.tokens.lock().len()
    }

    /// True if no tokens are registered.
    pub fn is_empty(&self) -> bool {
        self.tokens.lock().is_empty()
    }
}

/// The registry wearing the [`CancelInitiator`] hat: the cancel leg
/// raises the matching token; the re-execution and drop legs are no-ops
/// (a live request that was unwound is simply gone — the generator offers
/// fresh load instead of replaying).
struct RegistryInitiator {
    registry: Arc<CancelRegistry>,
    clock: Arc<dyn Clock>,
}

impl CancelInitiator for RegistryInitiator {
    fn cancel(&self, key: TaskKey) {
        self.registry.cancel(key.0, self.clock.now_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrip() {
        let t = CancelToken::new();
        assert!(!t.is_canceled());
        let t2 = t.clone();
        t.cancel();
        assert!(t2.is_canceled(), "clones share the flag");
    }

    #[test]
    fn registry_delivers_to_registered_key() {
        let r = CancelRegistry::new();
        let t = r.register(7);
        assert!(r.cancel(7, 123));
        assert!(t.is_canceled());
        assert_eq!(r.delivered(), 1);
        assert_eq!(r.first_delivery_ns(), Some(123));
    }

    #[test]
    fn registry_counts_misses() {
        let r = CancelRegistry::new();
        assert!(!r.cancel(9, 5));
        assert_eq!(r.misses(), 1);
        assert_eq!(r.first_delivery_ns(), None);
    }

    #[test]
    fn unregister_forgets_token() {
        let r = CancelRegistry::new();
        r.register(1);
        assert_eq!(r.len(), 1);
        r.unregister(1);
        assert!(r.is_empty());
        assert!(!r.cancel(1, 10));
    }

    #[test]
    fn install_routes_runtime_cancellations() {
        use atropos::AtroposConfig;
        use atropos_sim::SystemClock;

        let rt = AtroposRuntime::new(AtroposConfig::default(), Arc::new(SystemClock::new()));
        let registry = Arc::new(CancelRegistry::new());
        registry.install(&rt);
        let token = registry.register(42);
        let _task = rt.create_cancel(Some(42));
        // Drive a cancellation through the runtime's manager (the manual
        // KILL path); the detector-driven path is covered by the harness
        // end-to-end test.
        rt.cancel_key(TaskKey(42));
        assert!(token.is_canceled());
        assert_eq!(registry.delivered(), 1);
    }

    #[test]
    fn install_port_routes_runtime_cancellations() {
        use atropos::AtroposConfig;
        use atropos_sim::SystemClock;

        let rt = Arc::new(AtroposRuntime::new(
            AtroposConfig::default(),
            Arc::new(SystemClock::new()),
        ));
        let port: Arc<dyn RuntimePort> = rt.clone();
        let registry = Arc::new(CancelRegistry::new());
        registry.install_port(&port);
        let token = registry.register(7);
        let _task = port.create_cancel(Some(7));
        rt.cancel_key(TaskKey(7));
        assert!(token.is_canceled());
        assert_eq!(registry.delivered(), 1);
    }
}
