//! The end-to-end live harness: wire the server, workload, supervisor and
//! report together for one wall-clock run.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use atropos::ticker::Ticker;
use atropos::{AtroposConfig, AtroposRuntime, RuntimeStats};
use atropos_metrics::LatencyHistogram;
use atropos_sim::SystemClock;
use atropos_substrate::{RuntimePort, ScenarioDescriptor, ScenarioFamily};

use crate::report::{assemble_report, ReportInputs};
use crate::server::{worker_loop, CulpritKind, ServerCtx};
use crate::token::CancelRegistry;
use crate::workload::generate;

/// Workload and service-time parameters for one run.
///
/// The defaults describe a small, CI-friendly serving scenario: four
/// workers at ~500 req/s with sub-millisecond services, one lock-hog
/// culprit injected mid-run that would otherwise convoy the server for
/// over a second.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Wall-clock duration load is offered for (drain time comes on top).
    pub run_for: Duration,
    /// Open-loop spacing between normal arrivals.
    pub interarrival: Duration,
    /// Lock hold time of a normal request.
    pub normal_hold: Duration,
    /// Hot pages a normal request touches.
    pub pages_per_request: usize,
    /// Size of the hot page range normal requests cycle over.
    pub hot_pages: u64,
    /// LRU buffer capacity in pages (≥ `hot_pages` keeps steady state
    /// all-hit).
    pub lru_capacity: usize,
    /// Simulated load cost per page miss.
    pub miss_penalty: Duration,
    /// Concurrency tickets (QUEUE resource capacity).
    pub tickets: usize,
    /// When the first culprit is injected.
    pub culprit_after: Duration,
    /// Spacing of further culprits (`None` = a single culprit).
    pub culprit_every: Option<Duration>,
    /// Which culprit behaviour to inject.
    pub culprit_kind: CulpritKind,
    /// Maximum time a culprit runs if never canceled.
    pub culprit_hold: Duration,
    /// Pages a Scan culprit sweeps (bounded by `culprit_hold`).
    pub scan_pages: u64,
    /// Interval between a culprit's cancellation checkpoints.
    pub checkpoint: Duration,
    /// Supervisor tick period (Atropos mode only).
    pub tick_period: Duration,
}

impl LiveConfig {
    /// The live configuration a [`ScenarioDescriptor`] pins.
    ///
    /// Every geometry field comes straight off the descriptor, so the
    /// live side of a differential run cannot drift from what the sim
    /// side was keyed to. The buffer-scan geometry is deliberate: the hot
    /// set (128 pages, re-touched every ~30 ms at the offered rate) is
    /// much larger than the LRU slack (4 frames), so the pages the sweep
    /// pushes out are *stale victim pages*, not the sweep's own — victims
    /// thrash and re-load while the scan also pins one of two concurrency
    /// tickets, so the backlog behind the remaining ticket blows the
    /// 10 ms SLO. The miss penalty (1 ms) is sized so cache warmup alone
    /// (≤ 8 misses ≈ 8 ms) stays under SLO and cannot trigger a
    /// pre-disturbance misblame.
    pub fn from_scenario(d: &ScenarioDescriptor) -> Self {
        Self {
            culprit_kind: match d.family {
                ScenarioFamily::LockHog => CulpritKind::LockHog,
                ScenarioFamily::BufferScan => CulpritKind::Scan,
                ScenarioFamily::TicketQueue => CulpritKind::TicketHog,
            },
            workers: d.workers,
            interarrival: Duration::from_micros(d.interarrival_us),
            culprit_after: Duration::from_millis(d.culprit_after_ms),
            culprit_hold: Duration::from_millis(d.culprit_hold_ms),
            hot_pages: d.hot_pages,
            pages_per_request: d.pages_per_request as usize,
            lru_capacity: d.lru_capacity,
            miss_penalty: Duration::from_micros(d.miss_penalty_us),
            scan_pages: d.scan_pages,
            tickets: d.tickets,
            ..LiveConfig::default()
        }
    }
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            run_for: Duration::from_millis(1800),
            interarrival: Duration::from_millis(2),
            normal_hold: Duration::from_micros(100),
            pages_per_request: 4,
            hot_pages: 128,
            lru_capacity: 256,
            miss_penalty: Duration::from_micros(50),
            tickets: 4,
            culprit_after: Duration::from_millis(500),
            culprit_every: None,
            culprit_kind: CulpritKind::LockHog,
            culprit_hold: Duration::from_millis(1200),
            scan_pages: 1 << 16,
            checkpoint: Duration::from_millis(1),
            tick_period: Duration::from_millis(50),
        }
    }
}

/// Whether the run is overload-controlled.
#[derive(Debug, Clone)]
pub enum ControlMode {
    /// Atropos runs: the supervisor ticks the runtime and the token
    /// registry is installed as the cancellation initiator.
    Atropos(AtroposConfig),
    /// Tracing still flows (so overheads are comparable) but nothing ever
    /// ticks the runtime and no initiator is registered: the baseline.
    NoControl,
}

/// An [`AtroposConfig`] tuned for the live harness' time scales: 50 ms
/// detector windows, a 10 ms victim SLO, and a 50 ms floor between
/// cancellations.
pub fn live_atropos_config() -> AtroposConfig {
    let mut cfg = AtroposConfig::default();
    cfg.detector.window_ns = 50_000_000;
    cfg.detector.slo_latency_ns = 10_000_000;
    cfg.detector.history = 8;
    cfg.cancel_min_interval_ns = 50_000_000;
    cfg
}

/// Latency digest of one request class.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Completions recorded.
    pub count: u64,
    /// Mean latency (ns).
    pub mean_ns: f64,
    /// Median latency (ns).
    pub p50_ns: u64,
    /// 99th-percentile latency (ns).
    pub p99_ns: u64,
    /// Maximum latency (ns).
    pub max_ns: u64,
}

impl LatencySummary {
    /// Digests a recorded histogram.
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        Self {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: h.p50(),
            p99_ns: h.p99(),
            max_ns: h.max(),
        }
    }
}

/// Everything one harness run observed.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Latencies of normal (victim-class) requests, enqueue → completion.
    pub victim: LatencySummary,
    /// Latencies of culprit requests.
    pub culprit: LatencySummary,
    /// Requests the generator offered.
    pub offered: u64,
    /// Culprit requests that began executing.
    pub culprits_started: u64,
    /// Culprit requests that observed their cancel token and unwound.
    pub culprits_canceled: u64,
    /// Wall-clock delay from the first culprit starting to the initiator
    /// reaching its token, if a cancellation was delivered.
    pub time_to_cancel: Option<Duration>,
    /// Cancellations the registry delivered to a live token.
    pub cancellations_delivered: u64,
    /// Task keys the runtime issued cancellations for, in issue order —
    /// the run's decision trace (culprit keys are `>= CULPRIT_KEY_BASE`).
    pub canceled_keys: Vec<u64>,
    /// Supervisor ticks executed (0 in [`ControlMode::NoControl`]).
    pub ticks: u64,
    /// Final runtime counters.
    pub runtime: RuntimeStats,
    /// Human-readable decision episodes folded from the flight recorder
    /// (empty in [`ControlMode::NoControl`]: nothing ticks, so nothing
    /// decides).
    pub episodes: Vec<atropos_obs::DecisionEpisode>,
    /// Runtime metrics snapshot from the decision-trace observer.
    pub metrics: atropos_obs::MetricsSnapshot,
}

/// Runs one complete wall-clock serving session and reports it.
///
/// The sequencing matters and is the reason this lives in one place:
/// offered load stops first, then the stop flag makes culprits release at
/// their next checkpoint, then the queue closes and workers drain the
/// backlog (so every accepted request's latency is measured — in a
/// convoy, the backlog *is* the damage), and only then does the
/// supervisor stop ticking.
pub fn run(cfg: LiveConfig, mode: ControlMode) -> LiveReport {
    run_with(cfg, mode, |port| port)
}

/// Like [`run`], but the server emits through `wrap(runtime)` instead of
/// the bare runtime — the hook where middleware (fault injection, probes)
/// is stacked over a live run. The initiator is installed and the
/// supervisor ticks *through* the wrapped port, so middleware observes
/// the complete protocol: traffic, deliveries, and the periodic driver.
pub fn run_with(
    cfg: LiveConfig,
    mode: ControlMode,
    wrap: impl FnOnce(Arc<dyn RuntimePort>) -> Arc<dyn RuntimePort>,
) -> LiveReport {
    let clock = Arc::new(SystemClock::new());
    let atropos_cfg = match &mode {
        ControlMode::Atropos(c) => c.clone(),
        ControlMode::NoControl => live_atropos_config(),
    };
    let rt = Arc::new(AtroposRuntime::new(atropos_cfg, clock));
    let port = wrap(rt.clone());
    let registry = Arc::new(CancelRegistry::new());
    let obs = atropos_obs::Observer::install(&rt, atropos_obs::DEFAULT_RING_CAPACITY);
    let controlled = matches!(mode, ControlMode::Atropos(_));
    if controlled {
        registry.install_port(&port);
    }
    let ctx = Arc::new(ServerCtx::with_port(
        rt.clone(),
        port.clone(),
        registry.clone(),
        cfg.clone(),
    ));
    let mut ticker = controlled.then(|| {
        let tick_port = port.clone();
        Ticker::spawn_fn(move || tick_port.tick(), cfg.tick_period, |_| {})
    });

    std::thread::scope(|s| {
        let mut workers = Vec::new();
        for i in 0..cfg.workers {
            let ctx = ctx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("live-worker-{i}"))
                    .spawn_scoped(s, move || worker_loop(&ctx))
                    .expect("spawn worker"),
            );
        }
        let gen_ctx = ctx.clone();
        let generator = std::thread::Builder::new()
            .name("live-loadgen".into())
            .spawn_scoped(s, move || generate(&gen_ctx))
            .expect("spawn loadgen");

        std::thread::sleep(cfg.run_for);
        ctx.stop.store(true, Ordering::Release);
        generator.join().expect("loadgen panicked");
        ctx.queue.close();
        for w in workers {
            w.join().expect("worker panicked");
        }
    });

    let ticks = match ticker.as_mut() {
        Some(t) => {
            t.stop();
            t.ticks()
        }
        None => 0,
    };

    let inputs = ReportInputs {
        first_delivery_ns: registry.first_delivery_ns(),
        delivered: registry.delivered(),
        first_culprit_start_ns: ctx.metrics.first_culprit_start_ns.load(Ordering::Acquire),
        offered: ctx.metrics.offered.load(Ordering::Relaxed),
        culprits_started: ctx.metrics.culprits_started.load(Ordering::Relaxed),
        culprits_canceled: ctx.metrics.culprits_canceled.load(Ordering::Relaxed),
        ticks,
    };
    let victim = ctx.metrics.victim.lock();
    let culprit = ctx.metrics.culprit.lock();
    assemble_report(&rt, &obs, &victim, &culprit, inputs)
}

/// Runs one wall-clock session at a [`ScenarioDescriptor`]'s pinned
/// geometry — the descriptor-file entry point the differential and
/// capacity harnesses share.
pub fn run_descriptor(d: &ScenarioDescriptor, mode: ControlMode) -> LiveReport {
    run(LiveConfig::from_scenario(d), mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short no-culprit, no-control smoke run: the harness serves load,
    /// drains cleanly, and measures sane latencies.
    #[test]
    fn smoke_run_without_culprit() {
        let cfg = LiveConfig {
            run_for: Duration::from_millis(300),
            culprit_after: Duration::from_secs(3600), // never
            ..LiveConfig::default()
        };
        let report = run(cfg, ControlMode::NoControl);
        assert!(report.victim.count >= 50, "served {}", report.victim.count);
        assert_eq!(report.culprits_started, 0);
        assert_eq!(report.culprits_canceled, 0);
        assert_eq!(report.ticks, 0);
        assert_eq!(report.runtime.cancel.issued, 0);
        assert!(report.victim.p99_ns > 0);
        // Backlog fully drained: offered == completed.
        assert_eq!(report.offered, report.victim.count);
    }
}
