//! Real synchronization primitives wired to the substrate port.
//!
//! Each wrapper owns one resource registered through an
//! `Arc<dyn RuntimePort>` and emits the Figure 6b events at the natural
//! points of its own operation. Because emission goes through the port
//! rather than a concrete runtime handle, any middleware stacked over the
//! runtime (fault injection, probes) observes this traffic too:
//!
//! - [`TracedLock`] (LOCK): `slow_by` when a thread begins waiting, `get`
//!   at the wait→hold transition, `free` on guard drop,
//! - [`TicketSemaphore`] (QUEUE): the same protocol over a counting
//!   semaphore of worker/concurrency tickets,
//! - [`LruBuffer`] (MEMORY): `get` per page loaded, `free` charged to the
//!   evicted page's *owner*, `slow_by` (evictions caused) charged to the
//!   evictor — the attribution that lets the estimator see who is sweeping
//!   the pool.
//!
//! These are the live counterparts of `appsim`'s virtual `lock.rs`,
//! `ticket.rs` and `bufferpool.rs`: same protocol, real blocking.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use atropos::{ResourceId, ResourceType, TaskId};
use atropos_substrate::RuntimePort;
use parking_lot::{Condvar, Mutex};

/// A mutex that reports waits, holds and releases to Atropos.
pub struct TracedLock<T> {
    port: Arc<dyn RuntimePort>,
    rid: ResourceId,
    inner: Mutex<T>,
}

/// RAII guard for [`TracedLock`]; releases the lock and emits `free` on
/// drop.
pub struct TracedLockGuard<'a, T> {
    lock: &'a TracedLock<T>,
    task: TaskId,
    guard: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T> TracedLock<T> {
    /// Registers a LOCK resource named `name` and wraps `value` with it.
    pub fn new(port: Arc<dyn RuntimePort>, name: &str, value: T) -> Self {
        let rid = port.register_resource(name, ResourceType::Lock);
        Self {
            port,
            rid,
            inner: Mutex::new(value),
        }
    }

    /// The Atropos resource this lock reports to.
    pub fn resource_id(&self) -> ResourceId {
        self.rid
    }

    /// Acquires the lock on behalf of `task`, blocking if held.
    ///
    /// An uncontended acquire emits only `get`; a contended one emits
    /// `slow_by` first (the task began waiting), matching the wait→hold
    /// interval protocol of §3.2.
    pub fn lock(&self, task: TaskId) -> TracedLockGuard<'_, T> {
        let guard = match self.inner.try_lock() {
            Some(g) => g,
            None => {
                self.port.slow_by(task, self.rid, 1);
                self.inner.lock()
            }
        };
        self.port.get(task, self.rid, 1);
        TracedLockGuard {
            lock: self,
            task,
            guard: Some(guard),
        }
    }
}

impl<T> std::ops::Deref for TracedLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard live until drop")
    }
}

impl<T> std::ops::DerefMut for TracedLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard live until drop")
    }
}

impl<T> Drop for TracedLockGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.guard.take());
        self.lock.port.free(self.task, self.lock.rid, 1);
    }
}

/// A counting semaphore of concurrency tickets (the live analog of a
/// bounded worker/connection pool slot), reported as a QUEUE resource.
pub struct TicketSemaphore {
    port: Arc<dyn RuntimePort>,
    rid: ResourceId,
    available: Mutex<usize>,
    freed: Condvar,
}

/// RAII permit returned by [`TicketSemaphore::acquire`].
pub struct TicketPermit<'a> {
    sem: &'a TicketSemaphore,
    task: TaskId,
}

impl TicketSemaphore {
    /// Registers a QUEUE resource named `name` with `capacity` tickets.
    pub fn new(port: Arc<dyn RuntimePort>, name: &str, capacity: usize) -> Self {
        let rid = port.register_resource(name, ResourceType::Queue);
        Self {
            port,
            rid,
            available: Mutex::new(capacity),
            freed: Condvar::new(),
        }
    }

    /// The Atropos resource this semaphore reports to.
    pub fn resource_id(&self) -> ResourceId {
        self.rid
    }

    /// Acquires one ticket on behalf of `task`, blocking until available.
    pub fn acquire(&self, task: TaskId) -> TicketPermit<'_> {
        let mut available = self.available.lock();
        if *available == 0 {
            self.port.slow_by(task, self.rid, 1);
            while *available == 0 {
                self.freed.wait(&mut available);
            }
        }
        *available -= 1;
        drop(available);
        self.port.get(task, self.rid, 1);
        TicketPermit { sem: self, task }
    }

    /// Tickets currently available.
    pub fn available(&self) -> usize {
        *self.available.lock()
    }
}

impl Drop for TicketPermit<'_> {
    fn drop(&mut self) {
        {
            let mut available = self.sem.available.lock();
            *available += 1;
        }
        self.sem.freed.notify_one();
        self.sem.port.free(self.task, self.sem.rid, 1);
    }
}

/// What one [`LruBuffer::access`] batch did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessStats {
    /// Pages found resident.
    pub hits: u64,
    /// Pages loaded (and attributed to the accessing task).
    pub misses: u64,
    /// Resident pages evicted to make room.
    pub evictions: u64,
}

struct LruState {
    /// page -> (owner task, last-touch tick)
    pages: HashMap<u64, (TaskId, u64)>,
    /// (last-touch tick, page), oldest first.
    order: BTreeSet<(u64, u64)>,
    tick: u64,
}

/// A bounded LRU page cache with per-page owner attribution, reported as
/// a MEMORY resource.
pub struct LruBuffer {
    port: Arc<dyn RuntimePort>,
    rid: ResourceId,
    capacity: usize,
    state: Mutex<LruState>,
}

impl LruBuffer {
    /// Registers a MEMORY resource named `name` holding up to `capacity`
    /// pages.
    pub fn new(port: Arc<dyn RuntimePort>, name: &str, capacity: usize) -> Self {
        let rid = port.register_resource(name, ResourceType::Memory);
        Self {
            port,
            rid,
            capacity: capacity.max(1),
            state: Mutex::new(LruState {
                pages: HashMap::new(),
                order: BTreeSet::new(),
                tick: 0,
            }),
        }
    }

    /// The Atropos resource this buffer reports to.
    pub fn resource_id(&self) -> ResourceId {
        self.rid
    }

    /// Touches `pages` on behalf of `task`: hits are re-ranked, misses
    /// load the page (attributed to `task`), evicting LRU pages when full.
    ///
    /// Emits `get(task, misses)` for the loads, `free(owner, n)` for each
    /// former owner's evicted pages, and `slow_by(task, evictions)` for
    /// the eviction pressure the access caused.
    pub fn access(&self, task: TaskId, pages: &[u64]) -> AccessStats {
        let mut stats = AccessStats::default();
        let mut freed_by_owner: HashMap<TaskId, u64> = HashMap::new();
        {
            let mut st = self.state.lock();
            for &page in pages {
                st.tick += 1;
                let tick = st.tick;
                if let Some((owner, old_tick)) = st.pages.get(&page).copied() {
                    st.order.remove(&(old_tick, page));
                    st.order.insert((tick, page));
                    st.pages.insert(page, (owner, tick));
                    stats.hits += 1;
                    continue;
                }
                if st.pages.len() >= self.capacity {
                    if let Some(&(victim_tick, victim_page)) = st.order.iter().next() {
                        st.order.remove(&(victim_tick, victim_page));
                        if let Some((owner, _)) = st.pages.remove(&victim_page) {
                            *freed_by_owner.entry(owner).or_default() += 1;
                        }
                        stats.evictions += 1;
                    }
                }
                st.order.insert((tick, page));
                st.pages.insert(page, (task, tick));
                stats.misses += 1;
            }
        }
        if stats.misses > 0 {
            self.port.get(task, self.rid, stats.misses);
        }
        for (owner, n) in freed_by_owner {
            self.port.free(owner, self.rid, n);
        }
        if stats.evictions > 0 {
            self.port.slow_by(task, self.rid, stats.evictions);
        }
        stats
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.state.lock().pages.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.state.lock().pages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos::{AtroposConfig, AtroposRuntime};
    use atropos_sim::SystemClock;
    use std::time::Duration;

    fn runtime() -> Arc<AtroposRuntime> {
        Arc::new(AtroposRuntime::new(
            AtroposConfig::default(),
            Arc::new(SystemClock::new()),
        ))
    }

    #[test]
    fn traced_lock_emits_get_and_free() {
        let rt = runtime();
        let lock = TracedLock::new(rt.clone(), "l", 5u32);
        let t = rt.create_cancel(None);
        {
            let mut g = lock.lock(t);
            *g += 1;
        }
        assert_eq!(*lock.lock(t), 6);
        let s = rt.stats();
        // Two uncontended acquires: get+free each, no slow_by.
        assert_eq!(s.trace_events, 4);
    }

    #[test]
    fn traced_lock_contended_emits_slow_by() {
        let rt = runtime();
        let lock = Arc::new(TracedLock::new(rt.clone(), "l", ()));
        let holder = rt.create_cancel(None);
        let waiter = rt.create_cancel(None);
        let g = lock.lock(holder);
        let lock2 = lock.clone();
        let h = std::thread::spawn(move || {
            let _g = lock2.lock(waiter); // blocks until the holder releases
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        h.join().unwrap();
        // holder: get+free; waiter: slow_by+get+free.
        assert_eq!(rt.stats().trace_events, 5);
    }

    #[test]
    fn semaphore_blocks_at_capacity_and_wakes() {
        let rt = runtime();
        let sem = Arc::new(TicketSemaphore::new(rt.clone(), "tickets", 1));
        let a = rt.create_cancel(None);
        let b = rt.create_cancel(None);
        let permit = sem.acquire(a);
        assert_eq!(sem.available(), 0);
        let sem2 = sem.clone();
        let h = std::thread::spawn(move || {
            let _p = sem2.acquire(b); // must wait for the release
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(permit);
        h.join().unwrap();
        assert_eq!(sem.available(), 1);
        // a: get+free; b: slow_by+get+free.
        assert_eq!(rt.stats().trace_events, 5);
    }

    #[test]
    fn lru_attributes_evictions_to_owners() {
        let rt = runtime();
        let buf = LruBuffer::new(rt.clone(), "pool", 4);
        let resident = rt.create_cancel(None);
        let scanner = rt.create_cancel(None);
        let warm = buf.access(resident, &[1, 2, 3, 4]);
        assert_eq!(warm.misses, 4);
        assert_eq!(warm.evictions, 0);
        // A scan over 4 cold pages sweeps the resident set.
        let scan = buf.access(scanner, &[10, 11, 12, 13]);
        assert_eq!(scan.misses, 4);
        assert_eq!(scan.evictions, 4);
        assert_eq!(buf.len(), 4);
        // Re-touching the original pages now misses (they were evicted).
        let again = buf.access(resident, &[1, 2]);
        assert_eq!(again.hits, 0);
        assert_eq!(again.misses, 2);
    }

    #[test]
    fn lru_hits_refresh_recency() {
        let rt = runtime();
        let buf = LruBuffer::new(rt.clone(), "pool", 2);
        let t = rt.create_cancel(None);
        buf.access(t, &[1, 2]);
        buf.access(t, &[1]); // 1 is now most recent
        let s = buf.access(t, &[3]); // must evict 2, not 1
        assert_eq!(s.evictions, 1);
        assert_eq!(buf.access(t, &[1]).hits, 1);
    }
}
