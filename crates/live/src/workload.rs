//! Open-loop load generation.
//!
//! Arrivals are paced against the wall clock on a fixed schedule: request
//! `n` is *due* at `start + n * interarrival` whether or not the server
//! keeps up (the open-loop discipline the paper's clients use — backlog
//! shows up as queueing latency rather than silently thinning the load).
//! A rare culprit request is injected on its own schedule: once at
//! `culprit_after`, then every `culprit_every` if configured.

use std::sync::atomic::Ordering;
use std::time::Instant;

use crate::server::{Request, RequestClass, ServerCtx};

/// Key range reserved for culprit requests, so reports and logs can tell
/// the classes apart at a glance. Stays far below the runtime's
/// auto-generated key region (`1 << 63`).
pub const CULPRIT_KEY_BASE: u64 = 1 << 40;

/// Runs the generator until the harness raises the stop flag. Returns the
/// number of requests offered (accepted into the queue).
pub fn generate(ctx: &ServerCtx) -> u64 {
    let cfg = &ctx.cfg;
    let start = Instant::now();
    let mut offered = 0u64;
    let mut seq = 0u64;
    let mut culprit_seq = 0u64;
    let mut next_culprit = Some(cfg.culprit_after);
    while !ctx.stopping() {
        let due = cfg.interarrival * seq as u32;
        let elapsed = start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
            if ctx.stopping() {
                break;
            }
        }
        if let Some(at) = next_culprit {
            if start.elapsed() >= at {
                let accepted = ctx.queue.push(Request {
                    class: RequestClass::Culprit(cfg.culprit_kind),
                    key: CULPRIT_KEY_BASE + culprit_seq,
                    enqueued_ns: ctx.clock.now_ns(),
                });
                if accepted {
                    offered += 1;
                }
                culprit_seq += 1;
                next_culprit = cfg.culprit_every.map(|every| at + every);
            }
        }
        let accepted = ctx.queue.push(Request {
            class: RequestClass::Normal,
            key: seq,
            enqueued_ns: ctx.clock.now_ns(),
        });
        if accepted {
            offered += 1;
        }
        seq += 1;
    }
    ctx.metrics.offered.fetch_add(offered, Ordering::Relaxed);
    offered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::LiveConfig;
    use crate::token::CancelRegistry;
    use atropos::{AtroposConfig, AtroposRuntime};
    use atropos_sim::SystemClock;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn generator_paces_and_injects_culprits() {
        let rt = Arc::new(AtroposRuntime::new(
            AtroposConfig::default(),
            Arc::new(SystemClock::new()),
        ));
        let cfg = LiveConfig {
            interarrival: Duration::from_millis(2),
            culprit_after: Duration::from_millis(10),
            culprit_every: Some(Duration::from_millis(30)),
            ..LiveConfig::default()
        };
        let ctx = Arc::new(ServerCtx::new(rt, Arc::new(CancelRegistry::new()), cfg));
        let ctx2 = ctx.clone();
        let gen = std::thread::spawn(move || generate(&ctx2));
        std::thread::sleep(Duration::from_millis(80));
        ctx.stop.store(true, std::sync::atomic::Ordering::Release);
        let offered = gen.join().unwrap();
        // ~40 normals over 80 ms at 2 ms spacing, plus 2-3 culprits.
        assert!(offered >= 20, "offered only {offered}");
        let mut culprits = 0;
        let mut normals = 0;
        while let Some(req) = {
            ctx.queue.close();
            ctx.queue.pop()
        } {
            match req.class {
                RequestClass::Normal => normals += 1,
                RequestClass::Culprit(_) => {
                    assert!(req.key >= CULPRIT_KEY_BASE);
                    culprits += 1;
                }
            }
        }
        assert!(normals >= 20);
        assert!((2..=4).contains(&culprits), "culprits: {culprits}");
    }
}
