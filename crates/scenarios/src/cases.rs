//! The 16 real-world overload cases (paper Table 2), built from the
//! declarative descriptor corpus.
//!
//! Each case builds a `(ServerConfig, WorkloadSpec)` pair twice — once
//! with the noisy/culprit classes ("overload") and once without
//! ("baseline") — so every run can be normalized against the same
//! application's unperturbed performance, exactly as the paper normalizes
//! its figures. The timing compresses the paper's multi-minute
//! reproductions into ~12 s of virtual time: noisy requests are injected
//! after warmup and recur for the rest of the run.
//!
//! The cases themselves are no longer hard-coded here: every mix weight,
//! plan parameter, client pin and injection schedule lives in a
//! checked-in descriptor file (`crates/workload/descriptors/cases/`),
//! and this module is the sim-substrate *interpreter* for those files —
//! [`build_case`] maps a validated [`CaseDescriptor`] onto the simulated
//! application it names. The goldens pin the interpretation: descriptors
//! must reproduce the legacy hard-coded suite byte-identically.

use atropos_app::apps::kvstore::{KvStore, KvStoreConfig};
use atropos_app::apps::minidb::{MiniDb, MiniDbConfig};
use atropos_app::apps::search::{SearchApp, SearchConfig};
use atropos_app::apps::webserver::{WebServer, WebServerConfig};
use atropos_app::ids::{ClassId, ClientId, PoolId};
use atropos_app::server::ServerConfig;
use atropos_app::workload::{ClassSpec, WorkloadSpec};
use atropos_sim::SimTime;
use atropos_workload::{AppKind, CaseDescriptor, ClassDecl, WorkloadDescriptor};

/// Parameters shared by all case builders.
#[derive(Debug, Clone)]
pub struct CaseParams {
    /// RNG seed.
    pub seed: u64,
    /// Scales the open-loop arrival rate (1.0 = the case's default load).
    pub load_scale: f64,
    /// Virtual time at which noisy classes start appearing.
    pub disturb_at: SimTime,
    /// Run length (injections repeat until here).
    pub duration: SimTime,
}

impl Default for CaseParams {
    fn default() -> Self {
        Self {
            seed: 42,
            load_scale: 1.0,
            disturb_at: SimTime::from_millis(2_500),
            duration: SimTime::from_secs(12),
        }
    }
}

/// Hints controllers need about a built case.
#[derive(Debug, Clone, Default)]
pub struct CaseHints {
    /// Noisy classes without a latency SLO (exempt from Protego's shed
    /// set; see `baselines::protego`).
    pub slo_exempt: Vec<ClassId>,
    /// Quota-capable pools (for pBox and PARTIES).
    pub pools: Vec<PoolId>,
    /// Worker count (for DARC's reservation sizing).
    pub workers: usize,
}

/// A built case: server + workload + controller hints.
pub struct BuiltCase {
    /// Server configuration (resources + traced groups).
    pub server: ServerConfig,
    /// The workload (with or without the noisy classes).
    pub workload: WorkloadSpec,
    /// Controller hints.
    pub hints: CaseHints,
}

/// Static description + descriptor for one case.
#[derive(Clone)]
pub struct CaseDef {
    /// Case id, `c1`..`c16`.
    pub id: &'static str,
    /// Application (Table 2 column 2).
    pub app: &'static str,
    /// Resource type (Table 2 column 3).
    pub resource_type: &'static str,
    /// Resource detail (Table 2 column 4).
    pub resource: &'static str,
    /// Overload triggering condition (Table 2 column 5).
    pub trigger: &'static str,
    /// Default open-loop load in qps.
    pub base_qps: f64,
    descriptor: &'static CaseDescriptor,
}

impl std::fmt::Debug for CaseDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaseDef").field("id", &self.id).finish()
    }
}

impl CaseDef {
    /// Builds the case; `overload = false` omits the noisy classes.
    pub fn build(&self, params: &CaseParams, overload: bool) -> BuiltCase {
        build_case(self.descriptor, params, overload)
    }

    /// The descriptor this case interprets.
    pub fn descriptor(&self) -> &'static CaseDescriptor {
        self.descriptor
    }

    /// Wraps a corpus descriptor. The corpus is `'static`, so the Table 2
    /// columns borrow straight out of the parsed file.
    fn from_corpus(d: &'static WorkloadDescriptor) -> Self {
        let case = d
            .case
            .as_ref()
            .unwrap_or_else(|| panic!("descriptor `{}` has no [case] stanza", d.name));
        CaseDef {
            id: &case.id,
            app: &case.display_app,
            resource_type: &case.resource_type,
            resource: &case.resource,
            trigger: &case.trigger,
            base_qps: case.base_qps,
            descriptor: case,
        }
    }
}

/// The mix weight a class runs at in the given variant: overload runs
/// `overload_weight` when declared (the sampling-driven culprits of c2,
/// c9, c12, c15), the baseline always runs the declared `weight`.
fn variant_weight(decl: &ClassDecl, overload: bool) -> f64 {
    if overload {
        decl.overload_weight.unwrap_or(decl.weight)
    } else {
        decl.weight
    }
}

fn minidb_class(db: &MiniDb, decl: &ClassDecl, weight: f64) -> ClassSpec {
    let p = &decl.params;
    match decl.kind.as_str() {
        "point_select" => db.point_select(weight),
        "row_update" => db.row_update(weight),
        "table_scan" => db.table_scan(weight, p.expect("duration_ns")),
        "slow_query" => db.slow_query(weight, p.expect("ns")),
        "dump" => db.dump(weight, p.expect("pages")),
        "backup" => db.backup(p.expect("copy_ns_per_table")),
        "select_for_update" => db.select_for_update(p.expect("hold_ns")),
        "bulk_write" => db.bulk_write(p.expect("hold_ns")),
        "purge" => db.purge(p.expect("hold_ns")),
        "wal_writer" => db.wal_writer(p.expect("flush_ns")),
        "vacuum" => db.vacuum(p.expect("io_chunks") as usize, p.expect("chunk_ns")),
        "select_with_io" => db.select_with_io(weight, p.expect("io_ns")),
        other => unreachable!("validated minidb class kind `{other}`"),
    }
}

fn webserver_class(ws: &WebServer, decl: &ClassDecl, weight: f64) -> ClassSpec {
    let p = &decl.params;
    match decl.kind.as_str() {
        "http_request" => ws.http_request(weight),
        "slow_script" => ws.slow_script(weight, p.expect("script_ns")),
        other => unreachable!("validated webserver class kind `{other}`"),
    }
}

fn search_class(app: &SearchApp, decl: &ClassDecl, weight: f64) -> ClassSpec {
    let p = &decl.params;
    match decl.kind.as_str() {
        "search" => app.search(weight),
        "big_search" => app.big_search(weight, p.expect("entries")),
        "nested_agg" => app.nested_agg(weight, p.expect("total_bytes"), p.expect("steps") as usize),
        "long_query" => app.long_query(weight, p.expect("ns")),
        "big_update" => app.big_update(weight, p.expect("hold_ns")),
        "index_doc" => app.index_doc(weight),
        "complex_boolean" => app.complex_boolean(weight, p.expect("hold_ns")),
        "nested_range" => app.nested_range(weight, p.expect("ns")),
        other => unreachable!("validated search class kind `{other}`"),
    }
}

fn kvstore_class(kv: &KvStore, decl: &ClassDecl, weight: f64) -> ClassSpec {
    let p = &decl.params;
    match decl.kind.as_str() {
        "kv_get" => kv.kv_get(weight),
        "kv_put" => kv.kv_put(weight),
        "range_read" => kv.range_read(weight, p.expect("hold_ns")),
        other => unreachable!("validated kvstore class kind `{other}`"),
    }
}

/// Interprets one validated case descriptor against the simulated app it
/// names. This is the single sim-substrate entry point: the Table 2
/// suite, the chaos ticket-queue variant and the `capacity` sweep all
/// build through here.
pub fn build_case(case: &CaseDescriptor, params: &CaseParams, overload: bool) -> BuiltCase {
    let (server, hints, classes): (ServerConfig, CaseHints, Vec<ClassSpec>) = match case.app {
        AppKind::MiniDb => {
            let db = MiniDb::new(MiniDbConfig {
                seed: params.seed,
                ..Default::default()
            });
            let classes = build_classes(case, overload, |decl, w| minidb_class(&db, decl, w));
            let hints = hints_for(case, vec![db.pool], db.cfg.workers);
            (db.server_config(), hints, classes)
        }
        AppKind::WebServer => {
            let ws = WebServer::new(WebServerConfig {
                seed: params.seed,
                ..Default::default()
            });
            let classes = build_classes(case, overload, |decl, w| webserver_class(&ws, decl, w));
            let hints = hints_for(case, vec![], ws.cfg.max_clients * 8);
            (ws.server_config(), hints, classes)
        }
        AppKind::Search => {
            let app = SearchApp::new(SearchConfig {
                seed: params.seed,
                ..Default::default()
            });
            let classes = build_classes(case, overload, |decl, w| search_class(&app, decl, w));
            let hints = hints_for(case, vec![app.cache], app.cfg.workers);
            (app.server_config(), hints, classes)
        }
        AppKind::KvStore => {
            let kv = KvStore::new(KvStoreConfig {
                seed: params.seed,
                ..Default::default()
            });
            let classes = build_classes(case, overload, |decl, w| kvstore_class(&kv, decl, w));
            let hints = hints_for(case, vec![], kv.cfg.workers);
            (kv.server_config(), hints, classes)
        }
    };

    let mut wl = WorkloadSpec::new(classes, case.base_qps * params.load_scale);
    if overload {
        // Expand injection schedules exactly as the legacy builders did:
        // one decl at a time, `disturb_at + offset` stepping by `every`
        // until the end of the run.
        for inj in &case.injections {
            let mut at = params.disturb_at + SimTime::from_millis(inj.offset_ms);
            let every = SimTime::from_millis(inj.every_ms);
            while at < params.duration {
                wl = wl.inject(at, ClassId(inj.class));
                at += every;
            }
        }
        for bg in &case.background {
            wl = wl.recurring(
                ClassId(bg.class),
                params.disturb_at,
                SimTime::from_millis(bg.interval_ms),
            );
        }
    }

    BuiltCase {
        server,
        workload: wl,
        hints,
    }
}

fn build_classes(
    case: &CaseDescriptor,
    overload: bool,
    make: impl Fn(&ClassDecl, f64) -> ClassSpec,
) -> Vec<ClassSpec> {
    case.classes
        .iter()
        .map(|decl| {
            let spec = make(decl, variant_weight(decl, overload));
            match decl.client {
                Some(c) => spec.with_client(ClientId(c)),
                None => spec,
            }
        })
        .collect()
}

fn hints_for(case: &CaseDescriptor, pools: Vec<PoolId>, workers: usize) -> CaseHints {
    CaseHints {
        slo_exempt: case.slo_exempt.iter().map(|&i| ClassId(i)).collect(),
        pools,
        workers,
    }
}

/// All 16 cases of Table 2, in order, resolved from the descriptor
/// corpus.
pub fn all_cases() -> Vec<CaseDef> {
    atropos_workload::all_case_descriptors()
        .into_iter()
        .map(CaseDef::from_corpus)
        .collect()
}

/// The [`CaseDef`] for the injection-driven ticket-queue chaos case
/// (`c2tq`): the c2 shape with scheduled slow queries, so a controller
/// that cancels them visibly interrupts the ticket convoy. Used by the
/// chaos differential, deliberately not in [`all_cases`] — the golden
/// 16-case suite is pinned.
pub fn chaos_ticket_queue_case() -> CaseDef {
    CaseDef::from_corpus(atropos_workload::chaos_ticket_queue())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_cases_in_order() {
        let cases = all_cases();
        assert_eq!(cases.len(), 16);
        for (i, c) in cases.iter().enumerate() {
            assert_eq!(c.id, format!("c{}", i + 1));
        }
    }

    #[test]
    fn resource_type_mix_matches_table_2() {
        let cases = all_cases();
        let count = |t: &str| cases.iter().filter(|c| c.resource_type == t).count();
        assert_eq!(count("Synchronization"), 8);
        assert_eq!(count("Thread pool"), 3);
        assert_eq!(count("Memory"), 3);
        assert_eq!(count("System"), 2);
    }

    #[test]
    fn every_case_builds_both_variants() {
        let params = CaseParams::default();
        for case in all_cases() {
            for overload in [false, true] {
                let built = case.build(&params, overload);
                assert!(
                    !built.workload.classes.is_empty(),
                    "{} has no classes",
                    case.id
                );
                assert!(built.hints.workers > 0, "{} workers", case.id);
                if !overload {
                    // Baselines have no injections/recurring noise.
                    assert!(
                        built.workload.injections.is_empty()
                            && built.workload.background.is_empty(),
                        "{} baseline is disturbed",
                        case.id
                    );
                }
            }
        }
    }

    #[test]
    fn overload_variants_add_noise() {
        let params = CaseParams::default();
        for case in all_cases() {
            let over = case.build(&params, true);
            let noisy = !over.workload.injections.is_empty()
                || !over.workload.background.is_empty()
                || over
                    .workload
                    .classes
                    .iter()
                    .zip(case.build(&params, false).workload.classes.iter())
                    .any(|(a, b)| a.weight != b.weight);
            assert!(noisy, "{} overload variant adds no noise", case.id);
        }
    }

    #[test]
    fn table_2_columns_come_from_the_descriptor() {
        let c1 = &all_cases()[0];
        assert_eq!(c1.app, "MySQL");
        assert_eq!(c1.resource, "Backup lock");
        assert_eq!(c1.base_qps, 8_000.0);
        assert_eq!(c1.descriptor().classes.len(), 4);
        let tq = chaos_ticket_queue_case();
        assert_eq!(tq.id, "c2tq");
        assert_eq!(tq.descriptor().injections.len(), 1);
    }

    #[test]
    fn injection_expansion_matches_the_legacy_shape() {
        // c1: ClassId(2) every 5 s from disturb_at, then ClassId(3) every
        // 5 s from disturb_at + 400 ms — all of class 2's schedule before
        // class 3's, exactly as the legacy builder appended them.
        let params = CaseParams::default();
        let built = all_cases()[0].build(&params, true);
        let inj = &built.workload.injections;
        assert_eq!(inj.len(), 4);
        assert_eq!(
            inj.iter().map(|i| i.class).collect::<Vec<_>>(),
            vec![ClassId(2), ClassId(2), ClassId(3), ClassId(3)]
        );
        assert_eq!(inj[0].at, SimTime::from_millis(2_500));
        assert_eq!(inj[1].at, SimTime::from_millis(7_500));
        assert_eq!(inj[2].at, SimTime::from_millis(2_900));
        assert_eq!(inj[3].at, SimTime::from_millis(7_900));
    }
}
